//! DDR vs HMC: the latency/bandwidth trade the paper states in
//! Section IV-B — "since HMC utilizes a packet-switched interface to vault
//! controllers in its logic layer, the observed average latency of the HMC
//! is higher than that of traditional DDRx".
//!
//! Compares a DDR4-2400 channel model against the simulated HMC stack at
//! increasing memory-level parallelism (closed-loop clients for DDR,
//! stream depth for the HMC).
//!
//! Run with: `cargo run --release --example ddr_vs_hmc`

use hmc_sim::ddr::DdrChannel;
use hmc_sim::prelude::*;
use hmc_sim::workloads::random_reads_in_vaults;

fn main() {
    let seed = 11;
    println!("random 64 B reads at increasing parallelism:\n");
    println!(
        "{:>12} {:>22} {:>22}",
        "in flight", "DDR4-2400 (ns)", "HMC stack (ns)"
    );
    let map = AddressMap::hmc_gen2_default();
    let all_vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
    for mlp in [1usize, 4, 16, 64] {
        let ddr = DdrChannel::ddr4_2400().run_closed_loop(mlp, 5_000, 64, seed);
        // HMC: one stream port whose tag pool bounds in-flight requests.
        let cfg = SystemConfig::ac510(seed);
        let trace = random_reads_in_vaults(&map, &all_vaults, PayloadSize::B64, 2_000, seed);
        let spec = PortSpec::stream(trace).with_tags(mlp as u16);
        let hmc = SystemSim::new(cfg, vec![spec]).run_streams();
        println!(
            "{:>12} {:>22.1} {:>22.1}",
            mlp,
            ddr.mean_latency_ns,
            hmc.mean_latency_ns()
        );
    }
    println!();
    // Peak random throughput comparison.
    let ddr_peak = DdrChannel::ddr4_2400().run_closed_loop(64, 50_000, 64, seed);
    let cfg = SystemConfig::ac510(seed);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
    let ports = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
    let hmc_peak = SystemSim::new(cfg, ports).run_gups(Delay::from_us(50), Delay::from_us(200));
    println!("peak random-read throughput:");
    println!(
        "  DDR4-2400 channel : {:5.1} GB/s of data",
        ddr_peak.data_gb_per_s
    );
    println!(
        "  HMC (two links)   : {:5.1} GB/s of data ({:5.1} GB/s counted with packet overheads)",
        hmc_peak.total_bandwidth_gbs() * 128.0 / 160.0,
        hmc_peak.total_bandwidth_gbs()
    );
    println!("\n→ DDR wins unloaded latency by ~10×; the HMC wins concurrent");
    println!("  random throughput — the paper's core trade-off.");
}
