//! Internal calibration probe (not part of the documented examples).
use hmc_sim::prelude::*;

fn run_seed(seed: u64, measure_us: u64) {
    let cfg = SystemConfig::ac510(seed);
    let map = cfg.device.map;
    let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
    let op = GupsOp::Mix {
        size: PayloadSize::B128,
        write_percent: 50,
    };
    let ports = vec![PortSpec::gups(filter, op); 9];
    let mut sim = SystemSim::new(cfg, ports);
    let report = sim.run_gups(Delay::from_us(30), Delay::from_us(measure_us));
    println!(
        "seed {seed:20} measure {measure_us:4}us: {:6.2} GB/s lat {:7.2}us reads {} writes {}",
        report.total_bandwidth_gbs(),
        report.mean_latency_us(),
        report.total_reads(),
        report.total_writes()
    );
    for (label, peak) in sim.device_peak_census() {
        if peak > 40 {
            println!("   {label:20} peak {peak}");
        }
    }
}

fn main() {
    // The exact seed the ext-rw experiment derives for write_percent=50.
    let ctx_seed: u64 = 2018 ^ 0x517C_C1B7_2722_0A95;
    let mut h = ctx_seed;
    for b in "ext-rw".bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    let exp_seed = h.wrapping_add(50u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    run_seed(exp_seed, 120);
    run_seed(1, 120);
    run_seed(2, 120);
    run_seed(3, 120);
}
