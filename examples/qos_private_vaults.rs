//! QoS via private vaults: the remedy the paper proposes in Section IV-C.
//!
//! "In a case that we have five traffic streams, four of which can be
//! served in long latency, and one has high priority and requires a fast
//! service; the system can assign a limited number of vaults to all four
//! low-priority traffic streams, and remaining vaults to the high-priority
//! traffic."
//!
//! This example runs that exact scenario twice: once with the
//! high-priority stream sharing a vault with the four background streams,
//! and once with the high-priority stream on a private vault. Latency
//! isolation follows.
//!
//! Run with: `cargo run --release --example qos_private_vaults`

use hmc_sim::prelude::*;
use hmc_sim::workloads::random_reads_in_vaults;

/// Runs 4 background ports + 1 priority port; returns (background mean µs,
/// priority mean µs, priority max µs).
fn run(priority_vault: u8, seed: u64) -> (f64, f64, f64) {
    let cfg = SystemConfig::ac510(seed);
    let map = cfg.device.map;
    let reads = 800;
    // Four background streams pounding vault 2.
    let mut specs: Vec<PortSpec> = (0..4)
        .map(|i| {
            PortSpec::stream(random_reads_in_vaults(
                &map,
                &[VaultId(2)],
                PayloadSize::B128,
                reads,
                seed + i,
            ))
        })
        .collect();
    // One latency-sensitive stream.
    specs.push(PortSpec::stream(random_reads_in_vaults(
        &map,
        &[VaultId(priority_vault)],
        PayloadSize::B32,
        reads,
        seed + 100,
    )));
    let report = SystemSim::new(cfg, specs).run_streams();
    let background = report.ports[..4]
        .iter()
        .map(|p| p.latency.mean_us())
        .sum::<f64>()
        / 4.0;
    let prio = &report.ports[4];
    (background, prio.latency.mean_us(), prio.latency.max_us())
}

fn main() {
    let (bg_shared, prio_shared, max_shared) = run(2, 7);
    let (bg_private, prio_private, max_private) = run(9, 7);

    println!("high-priority stream SHARING vault 2 with 4 background streams:");
    println!("  background mean {bg_shared:6.2} us | priority mean {prio_shared:6.2} us, max {max_shared:6.2} us");
    println!("high-priority stream on PRIVATE vault 9:");
    println!("  background mean {bg_private:6.2} us | priority mean {prio_private:6.2} us, max {max_private:6.2} us");
    println!(
        "  → private-vault mapping cuts priority mean latency {:.1}× and max {:.1}×",
        prio_shared / prio_private,
        max_shared / max_private
    );
}
