//! Page interleaving: why the HMC's low-order-interleaved address map
//! (Figure 3 of the paper) gives sequential accesses bank-level
//! parallelism for free.
//!
//! First prints where the 32 blocks of one 4 KB OS page land (two banks
//! across all sixteen vaults), then measures the same 32-read burst issued
//! sequentially (page walk) versus packed into a single bank — the
//! Section IV-F insight that "mapping accesses across vaults then banks is
//! key to achieve better bandwidth utilization and lower latency".
//!
//! Run with: `cargo run --release --example page_interleaving`

use hmc_sim::prelude::*;
use hmc_sim::workloads::{linear_reads, Trace, TraceOp};

fn main() {
    let map = AddressMap::hmc_gen2_default();

    // 1. Decode one page's footprint.
    let page = Address::new(0x40_0000);
    println!("4 KB page at {page} with 128 B blocks:");
    let footprint = map.page_footprint(page, 4096);
    for (i, loc) in footprint.iter().enumerate() {
        if i % 8 == 0 {
            print!("  blocks {i:2}..{:2}: ", i + 7);
        }
        print!("{}/{} ", loc.vault.0, loc.bank.0);
        if i % 8 == 7 {
            println!();
        }
    }
    let vaults: std::collections::BTreeSet<u8> = footprint.iter().map(|l| l.vault.0).collect();
    let banks: std::collections::BTreeSet<u8> = footprint.iter().map(|l| l.bank.0).collect();
    println!("  → {} vaults, {} banks\n", vaults.len(), banks.len());

    // 2. Four ports walk sixteen consecutive pages (interleaved by
    //    construction: the map spreads them across every vault).
    let seed = 1;
    let reads_per_port = 128usize;
    let cfg = SystemConfig::ac510(seed);
    let specs: Vec<PortSpec> = (0..4u64)
        .map(|p| {
            let base = Address::new(page.raw() + p * 4096 * 4);
            PortSpec::stream(linear_reads(base, PayloadSize::B128, reads_per_port))
        })
        .collect();
    let sequential = SystemSim::new(cfg, specs).run_streams();

    // 3. The same total demand packed into a single bank of one vault —
    //    what a pathological mapping would do.
    let cfg = SystemConfig::ac510(seed);
    let specs: Vec<PortSpec> = (0..4u64)
        .map(|p| {
            let packed: Trace = (0..reads_per_port as u64)
                .map(|i| {
                    TraceOp::read(
                        map.encode(VaultId(0), BankId(0), p * 1000 + i, 0),
                        PayloadSize::B128,
                    )
                })
                .collect();
            PortSpec::stream(packed)
        })
        .collect();
    let single_bank = SystemSim::new(cfg, specs).run_streams();

    println!("4 ports × {reads_per_port} × 128 B reads:");
    println!(
        "  page walk (16 vaults × banks): mean {:7.1} ns, max {:8.1} ns",
        sequential.mean_latency_ns(),
        sequential.max_latency_us() * 1e3,
    );
    println!(
        "  packed into a single bank    : mean {:7.1} ns, max {:8.1} ns",
        single_bank.mean_latency_ns(),
        single_bank.max_latency_us() * 1e3,
    );
    let speedup = single_bank.mean_latency_ns() / sequential.mean_latency_ns();
    println!("  → interleaving cuts mean latency {speedup:.1}×");
}
