//! Quickstart: measure the HMC's latency/bandwidth trade-off in a few
//! lines.
//!
//! Runs three configurations of the simulated AC-510 measurement stack:
//! a single low-load request stream (no-load latency), a saturating
//! nine-port GUPS run confined to one vault, and the same run spread over
//! all sixteen vaults — reproducing, in miniature, the paper's central
//! observation that access distribution and the internal NoC, not the
//! DRAM, set the performance envelope.
//!
//! Run with: `cargo run --release --example quickstart`

use hmc_sim::prelude::*;

fn main() {
    let seed = 2018;

    // 1. No-load latency: one stream port, one read at a time.
    let cfg = SystemConfig::ac510(seed);
    let map = cfg.device.map;
    let trace = random_reads_in_banks(&map, VaultId(0), 16, PayloadSize::B32, 1, seed);
    let report = SystemSim::new(cfg, vec![PortSpec::stream(trace)]).run_streams();
    println!(
        "no-load round trip    : {:8.1} ns",
        report.mean_latency_ns()
    );

    // 2. Nine GUPS ports hammering a single vault (bank-level parallelism
    //    only): the vault's ~10 GB/s internal bandwidth is the ceiling.
    let cfg = SystemConfig::ac510(seed);
    let filter = AccessPattern::Vaults { count: 1 }.filter(&map);
    let ports = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
    let report = SystemSim::new(cfg, ports).run_gups(Delay::from_us(50), Delay::from_us(200));
    println!(
        "1 vault, 128B reads   : {:8.2} GB/s at {:7.2} us mean latency",
        report.total_bandwidth_gbs(),
        report.mean_latency_us()
    );

    // 3. The same traffic spread over all sixteen vaults: the external
    //    links become the ceiling (~23 GB/s counted bidirectionally).
    let cfg = SystemConfig::ac510(seed);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
    let ports = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
    let report = SystemSim::new(cfg, ports).run_gups(Delay::from_us(50), Delay::from_us(200));
    println!(
        "16 vaults, 128B reads : {:8.2} GB/s at {:7.2} us mean latency",
        report.total_bandwidth_gbs(),
        report.mean_latency_us()
    );
}
