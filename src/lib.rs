//! Workspace root: re-exports the facade crate for integration tests and examples.
pub use hmc_sim::*;
