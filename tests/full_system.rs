//! Integration tests of the assembled measurement stack: conservation,
//! determinism, calibration anchors and the paper's qualitative orderings,
//! exercised through the public `hmc_sim` API exactly as the experiment
//! harness uses it.

use hmc_noc_repro::prelude::*;
use hmc_noc_repro::workloads::{random_reads_in_banks, random_reads_in_vaults};

fn gups(seed: u64, pattern: AccessPattern, size: PayloadSize, ports: usize) -> RunReport {
    let cfg = SystemConfig::ac510(seed);
    let filter = pattern.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(size)); ports];
    SystemSim::new(cfg, specs).run_gups(Delay::from_us(10), Delay::from_us(40))
}

#[test]
fn no_load_round_trip_matches_paper_calibration() {
    // Figure 7 at n=1: ~0.7 µs through FPGA + links + cube, for every
    // request size.
    for size in PayloadSize::PAPER_SWEEP {
        let cfg = SystemConfig::ac510(3);
        let map = cfg.device.map;
        let trace = random_reads_in_banks(&map, VaultId(2), 16, size, 1, 3);
        let report = SystemSim::new(cfg, vec![PortSpec::stream(trace)]).run_streams();
        let us = report.mean_latency_us();
        assert!(
            (0.55..=0.85).contains(&us),
            "{size} no-load round trip {us} µs outside the 0.7 µs band"
        );
    }
}

#[test]
fn stream_runs_conserve_requests() {
    let cfg = SystemConfig::ac510(5);
    let map = cfg.device.map;
    let all: Vec<VaultId> = (0..16).map(VaultId).collect();
    let specs: Vec<PortSpec> = (0..4u64)
        .map(|p| {
            PortSpec::stream(random_reads_in_vaults(
                &map,
                &all,
                PayloadSize::B32,
                300,
                5 + p,
            ))
        })
        .collect();
    let report = SystemSim::new(cfg, specs).run_streams();
    for port in &report.ports {
        assert_eq!(port.issued, 300, "every trace entry issued");
        assert_eq!(port.completed, 300, "every request answered");
        assert_eq!(port.latency.count(), 300, "every response recorded");
    }
    assert_eq!(report.device.requests_received, 1_200);
    assert_eq!(report.device.responses_sent, 1_200);
    let serviced: u64 = report.device.per_vault_serviced.iter().sum();
    assert_eq!(
        serviced, 1_200,
        "every request serviced by exactly one vault"
    );
}

#[test]
fn gups_runs_are_deterministic_in_seed() {
    let summary = |seed: u64| {
        let r = gups(
            seed,
            AccessPattern::Vaults { count: 8 },
            PayloadSize::B64,
            5,
        );
        (
            r.total_accesses(),
            r.aggregate_latency().total_ps(),
            r.device.requests_received,
            r.device.switch_conflicts,
        )
    };
    assert_eq!(summary(42), summary(42), "identical seeds, identical runs");
    assert_ne!(summary(42), summary(43), "different seeds actually differ");
}

#[test]
fn bandwidth_ceilings_are_ordered_like_figure_6() {
    let b1 = gups(
        7,
        AccessPattern::Banks {
            vault: VaultId(0),
            count: 1,
        },
        PayloadSize::B128,
        9,
    );
    let v1 = gups(7, AccessPattern::Vaults { count: 1 }, PayloadSize::B128, 9);
    let v16 = gups(7, AccessPattern::Vaults { count: 16 }, PayloadSize::B128, 9);
    // Strictly increasing bandwidth with distribution.
    assert!(b1.total_bandwidth_gbs() < v1.total_bandwidth_gbs());
    assert!(v1.total_bandwidth_gbs() < v16.total_bandwidth_gbs());
    // Strictly decreasing latency with distribution.
    assert!(b1.mean_latency_us() > v1.mean_latency_us());
    assert!(v1.mean_latency_us() > v16.mean_latency_us());
    // Absolute anchors (generous bands around the paper's 23 / ~12.5 / 2–4).
    assert!((18.0..=27.0).contains(&v16.total_bandwidth_gbs()));
    assert!((9.0..=15.0).contains(&v1.total_bandwidth_gbs()));
    assert!((1.0..=6.0).contains(&b1.total_bandwidth_gbs()));
}

#[test]
fn request_size_orders_bandwidth_and_latency() {
    // Section IV-A: "large packet sizes utilize available bandwidth more
    // effectively at the cost of added latency".
    let reports: Vec<RunReport> = PayloadSize::PAPER_SWEEP
        .iter()
        .map(|&size| gups(9, AccessPattern::Vaults { count: 16 }, size, 9))
        .collect();
    for pair in reports.windows(2) {
        assert!(
            pair[1].total_bandwidth_gbs() > pair[0].total_bandwidth_gbs(),
            "bandwidth must grow with request size"
        );
        assert!(
            pair[1].mean_latency_us() >= pair[0].mean_latency_us() * 0.98,
            "latency must not shrink with request size"
        );
    }
}

#[test]
fn monitors_only_record_the_measurement_window() {
    let report = gups(11, AccessPattern::Vaults { count: 16 }, PayloadSize::B64, 3);
    // Total traffic includes warmup and drain, so issued > recorded.
    let recorded = report.total_accesses();
    let issued: u64 = report.ports.iter().map(|p| p.issued).sum();
    assert!(
        issued > recorded,
        "warmup traffic must exist ({issued} vs {recorded})"
    );
    // The window is the configured 40 µs.
    assert_eq!(report.elapsed, Delay::from_us(40));
}

#[test]
fn little_law_estimate_is_self_consistent() {
    let report = gups(13, AccessPattern::Vaults { count: 4 }, PayloadSize::B64, 9);
    let n = report.estimated_outstanding();
    // Outstanding can never exceed the aggregate tag pool.
    assert!(n > 1.0, "saturating run keeps requests in flight");
    assert!(
        n < f64::from(GUPS_TAGS) * 9.0 * 1.02,
        "outstanding {n} above tag pool"
    );
}

#[test]
fn stream_and_gups_agree_at_low_load() {
    // One in-flight request at a time: a GUPS port with one tag and a
    // 1-request stream should see the same unloaded round trip.
    let cfg = SystemConfig::ac510(17);
    let map = cfg.device.map;
    let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B32)).with_tags(1)];
    let gups_report = SystemSim::new(cfg, specs).run_gups(Delay::from_us(5), Delay::from_us(20));
    let cfg = SystemConfig::ac510(17);
    let trace = random_reads_in_vaults(
        &map,
        &(0..16).map(VaultId).collect::<Vec<_>>(),
        PayloadSize::B32,
        1,
        17,
    );
    let stream_report = SystemSim::new(cfg, vec![PortSpec::stream(trace)]).run_streams();
    let g = gups_report.mean_latency_ns();
    let s = stream_report.mean_latency_ns();
    // Stream ports pay one extra address flit on the RX path (~5 ns).
    assert!(
        (g - s).abs() < 60.0,
        "firmware paths disagree at no load: GUPS {g} ns vs stream {s} ns"
    );
}

#[test]
fn idle_skip_cuts_dispatched_events_by_10x_at_low_load() {
    // The low-load end of the Figure 6 latency-vs-load curve: a single
    // GUPS read port with one tag hammering one bank, so exactly one
    // request is in flight and the host spends ~130 of every ~131 FPGA
    // cycles idle. The event-driven core must sleep through those cycles:
    // per-cycle ticking would dispatch at least one event per simulated
    // FPGA cycle, so `dispatched` staying 10x below the cycle count
    // proves the >10x reduction the refactor promises.
    let cfg = SystemConfig::ac510(2018);
    let filter = AccessPattern::Banks {
        vault: VaultId(0),
        count: 1,
    }
    .filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B16)).with_tags(1)];
    let mut sim = SystemSim::new(cfg, specs);
    let report = sim.run_gups(Delay::from_us(10), Delay::from_us(40));
    assert!(report.total_accesses() > 0, "the run moved real traffic");
    let stats = sim.engine_stats();
    let period = HostConfig::ac510_default().fpga_period;
    let cycles = report.sim_end.as_ps() / period.as_ps();
    assert!(
        stats.dispatched * 10 < cycles,
        "idle-skip regressed: {} events dispatched over {} host cycles \
         (per-cycle ticking would dispatch at least one per cycle)",
        stats.dispatched,
        cycles
    );
    assert!(
        stats.wake_fires > 0,
        "the host must be running on timer wakeups, not per-cycle messages"
    );
}

#[test]
fn saturated_host_no_longer_retries_every_cycle_on_serializer_room() {
    // A saturated Figure 6 point (9 ports of 128 B reads hammering one
    // bank): the ports are FIFO/tag-blocked and the staged pipeline waits
    // on serializer room for most of the run. The old host retried every
    // FPGA cycle while a staged packet waited on *room*; the wake is now
    // derived from the wire-drain schedule, so timer fires must stay well
    // below one per simulated cycle (per-cycle retrying fired at least
    // one), and total dispatched events follow.
    let cfg = SystemConfig::ac510(2018);
    let filter = AccessPattern::Banks {
        vault: VaultId(0),
        count: 1,
    }
    .filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
    let mut sim = SystemSim::new(cfg, specs);
    let report = sim.run_gups(Delay::from_us(10), Delay::from_us(40));
    assert!(report.total_accesses() > 0, "the run moved real traffic");
    let stats = sim.engine_stats();
    let period = HostConfig::ac510_default().fpga_period;
    let cycles = report.sim_end.as_ps() / period.as_ps();
    assert!(
        stats.wake_fires < cycles,
        "serializer-room wake regressed: {} timer fires over {} host cycles \
         (a host retrying every blocked cycle fires at least one per cycle)",
        stats.wake_fires,
        cycles
    );
    assert!(
        stats.dispatched * 2 < cycles * 3,
        "dispatched events regressed: {} over {} cycles",
        stats.dispatched,
        cycles
    );
}

#[test]
fn single_walker_chase_equals_its_serial_replay_exactly() {
    // The closed-loop pointer chase must cost exactly what an open-loop
    // replay of the same addresses costs when both are strictly serial:
    // the chain is deterministic, so unroll it into a trace and replay it
    // with a 1-tag stream port. Latency aggregates must match to the
    // picosecond — the chase adds no phantom time and saves none.
    let map = AddressMap::hmc_gen2_default();
    let vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
    let hops = 40;
    let chase =
        hmc_noc_repro::workloads::PointerChase::new(&map, &vaults, PayloadSize::B64, 1, hops, 2017);
    let trace = chase.unrolled_trace();
    let chase_report = SystemSim::new(
        SystemConfig::ac510(6),
        vec![PortSpec::from_source(move |_| Box::new(chase.clone()))],
    )
    .run_streams();
    let replay_report = SystemSim::new(
        SystemConfig::ac510(6),
        vec![PortSpec::stream(trace).with_tags(1)],
    )
    .run_streams();
    assert_eq!(chase_report.ports[0].completed, hops);
    assert_eq!(
        chase_report.aggregate_latency().total_ps(),
        replay_report.aggregate_latency().total_ps(),
        "chase and serial replay must cost identical total time"
    );
    assert_eq!(
        chase_report.aggregate_latency().max_us(),
        replay_report.aggregate_latency().max_us()
    );
    // And the per-hop round trip sits in the paper's unloaded band
    // (Figure 7 at n=1: ~0.7 µs through FPGA + links + cube).
    let us = chase_report.mean_latency_us();
    assert!(
        (0.55..=0.85).contains(&us),
        "unloaded chase hop {us} µs outside the 0.7 µs band"
    );
}

#[test]
fn closed_loop_runs_replay_byte_identically() {
    // Determinism of the closed-loop pipeline end to end: a mixed system
    // (pointer chase + NOM offload on one host) must produce bit-equal
    // reports on every run.
    let run = || {
        let cfg = SystemConfig::ac510(9);
        let map = cfg.device.map;
        let vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
        let chase = PortSpec::from_source(move |seed| {
            Box::new(hmc_noc_repro::workloads::PointerChase::new(
                &map,
                &vaults,
                PayloadSize::B32,
                4,
                50,
                seed,
            ))
        });
        let offload = PortSpec::from_source(move |_| {
            Box::new(hmc_noc_repro::workloads::OffloadSource::new(
                &map,
                VaultId(1),
                VaultId(9),
                PayloadSize::B128,
                100,
                8,
            ))
        });
        let report = SystemSim::new(cfg, vec![chase, offload]).run_streams();
        (
            report.aggregate_latency().total_ps(),
            report.total_reads(),
            report.total_writes(),
            report.sim_end,
        )
    };
    assert_eq!(run(), run(), "closed-loop runs must be reproducible");
}

#[test]
fn writes_round_trip_through_the_full_stack() {
    let cfg = SystemConfig::ac510(19);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Write(PayloadSize::B128)); 4];
    let report = SystemSim::new(cfg, specs).run_gups(Delay::from_us(10), Delay::from_us(40));
    assert!(report.total_writes() > 0, "writes recorded");
    assert_eq!(report.total_reads(), 0, "write-only run");
    assert!(
        report.total_bandwidth_gbs() > 5.0,
        "writes move real bandwidth"
    );
}

#[test]
fn hot_path_allocations_are_bounded_not_per_event() {
    // The zero-allocation hot-path claim, asserted: every per-event
    // buffer (switch departures, link deliveries, device outputs, host
    // events) is a reused scratch that allocates only while growing to
    // the workload's peak burst — never per dispatch. EngineStats counts
    // each such allocation (`scratch_spills`). Run the saturated Figure 6
    // point at two measurement lengths: the event count scales ~4x, the
    // spill count must not grow at all once buffers are warm (a small
    // additive slack covers bursts first reached late in the longer run).
    let run = |measure_us: u64| {
        let cfg = SystemConfig::ac510(2018);
        let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
        let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
        let mut sim = SystemSim::new(cfg, specs);
        let report = sim.run_gups(Delay::from_us(10), Delay::from_us(measure_us));
        assert!(report.total_accesses() > 0, "the run moved real traffic");
        sim.engine_stats()
    };
    let short = run(30);
    let long = run(120);
    assert!(
        long.dispatched > short.dispatched * 3,
        "the long run must dispatch ~4x the events ({} vs {})",
        long.dispatched,
        short.dispatched
    );
    assert!(
        long.scratch_spills <= short.scratch_spills + 4,
        "hot-path allocations must be bounded by burst shape, not run length: \
         short run spilled {} times, long run {} times over {} events",
        short.scratch_spills,
        long.scratch_spills,
        long.dispatched
    );
    // And in absolute terms the whole saturated run allocates at most a
    // few dozen times across hundreds of thousands of events.
    assert!(
        long.scratch_spills < 64,
        "scratch buffers spilled {} times — hot path is allocating",
        long.scratch_spills
    );
}
