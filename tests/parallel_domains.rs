//! Regression: conservative-parallel domain scheduling is an exact
//! optimization. A multi-cube run split over any number of engine
//! domains must produce the *byte-identical* report — same latencies to
//! the picosecond, same per-cube counters, same engine totals — as the
//! serial run, exercised through the public API exactly as `repro
//! --domains N` drives it.

use hmc_noc_repro::fabric::{FabricConfig, FabricPortSpec, FabricSim, Topology};
use hmc_noc_repro::prelude::*;
use hmc_noc_repro::workloads::{GlobalGupsSource, OffloadSource};

/// One saturated interleaved 8-cube chain GUPS run at a given domain
/// count, rendered to its full debug string (every field, every port,
/// every cube) plus the engine totals.
fn intercube_fingerprint(domains: usize) -> (String, String) {
    let cfg = FabricConfig::ac510(Topology::Chain, 8, 2018);
    let fabric_map = FabricAddressMap::new(CubePolicy::Interleaved, 8, &cfg.cube.map);
    let window = 1u64 << Address::BITS;
    let spec = FabricPortSpec::from_source(
        move |seed| {
            Box::new(GlobalGupsSource::new(
                GupsOp::Read(PayloadSize::B128),
                window,
                &fabric_map,
                seed,
            ))
        },
        CubeId::HOST,
    )
    .with_tags(GUPS_TAGS)
    .addressed(fabric_map);
    let mut sim = FabricSim::new(cfg, vec![spec; 5]).with_domains(domains);
    let report = sim.run_gups(Delay::from_us(5), Delay::from_us(15));
    assert!(report.total_accesses() > 0, "the run moved real traffic");
    (format!("{report:?}"), format!("{:?}", sim.engine_stats()))
}

#[test]
fn gups_reports_are_identical_across_domain_counts() {
    let serial = intercube_fingerprint(1);
    for domains in [2, 4, 8] {
        assert_eq!(
            intercube_fingerprint(domains),
            serial,
            "--domains {domains} diverged from the serial run"
        );
    }
}

#[test]
fn closed_loop_stream_reports_are_identical_across_domain_counts() {
    // The offload stream is closed-loop (each write waits on its read),
    // so any reordering of cross-cube deliveries would change the
    // issue sequence itself — the sharpest determinism probe we have.
    let run = |domains: usize| {
        let cfg = FabricConfig::chain(7, 4);
        let map = cfg.cube.map;
        let spec = FabricPortSpec::from_source(
            move |_| {
                Box::new(OffloadSource::new(
                    &map,
                    VaultId(1),
                    VaultId(9),
                    PayloadSize::B128,
                    300,
                    8,
                ))
            },
            CubeId(3),
        );
        let mut sim = FabricSim::new(cfg, vec![spec]).with_domains(domains);
        let report = sim.run_streams();
        assert!(report.total_accesses() > 0);
        format!("{report:?}")
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(4), serial);
}
