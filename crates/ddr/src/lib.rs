//! # hmc-ddr
//!
//! A synchronous-bus DDR4-style memory channel: the "traditional DDRx"
//! comparator the reproduced paper contrasts the HMC against. The paper's
//! claim (Section IV-B) is that "since HMC utilizes a packet-switched
//! interface to vault controllers in its logic layer, the observed average
//! latency of the HMC is higher than that of traditional DDRx"; this crate
//! provides the DDR side of that comparison.
//!
//! Structurally, one DDR channel is the same shape as one HMC vault — a
//! set of banks behind a shared data bus — so the model reuses
//! [`hmc_dram::VaultMemory`] with DDR4 timing and a 64 B bus slot (8n
//! prefetch over a 64-bit bus at 2400 MT/s ≈ 3.33 ns), fronted by a short
//! synchronous controller pipeline instead of packetization, SerDes and a
//! NoC.
//!
//! ```
//! use hmc_ddr::DdrChannel;
//!
//! let mut ddr = DdrChannel::ddr4_2400();
//! let report = ddr.run_closed_loop(4, 2_000, 64, 7);
//! assert!(report.mean_latency_ns < 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hmc_des::{Delay, Time};
use hmc_dram::{DramTiming, VaultMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of one DDR channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrConfig {
    /// Banks on the channel (a typical DDR4 DIMM exposes 16).
    pub banks: usize,
    /// Core DRAM timing.
    pub timing: DramTiming,
    /// Bytes moved per bus slot (64 B burst for DDR4 x64).
    pub burst_bytes: u32,
    /// Controller latency on the command path (queue, decode, PHY).
    pub ctrl_latency_req: Delay,
    /// Controller latency on the return path.
    pub ctrl_latency_resp: Delay,
}

impl DdrConfig {
    /// A single-channel DDR4-2400 DIMM.
    pub fn ddr4_2400() -> DdrConfig {
        DdrConfig {
            banks: 16,
            timing: DramTiming::ddr4_2400(),
            burst_bytes: 64,
            ctrl_latency_req: Delay::from_ps(12_000),
            ctrl_latency_resp: Delay::from_ps(12_000),
        }
    }

    /// Peak data bandwidth of the bus, GB/s.
    pub fn peak_gb_per_s(&self) -> f64 {
        f64::from(self.burst_bytes) / self.timing.t_ccd.as_ns_f64()
    }
}

impl Default for DdrConfig {
    fn default() -> DdrConfig {
        DdrConfig::ddr4_2400()
    }
}

/// Results of a closed-loop run against the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrReport {
    /// Requests completed.
    pub requests: u64,
    /// Mean end-to-end latency in nanoseconds.
    pub mean_latency_ns: f64,
    /// Maximum observed latency in nanoseconds.
    pub max_latency_ns: f64,
    /// Data bandwidth in GB/s (payload bytes only, matching how DDR
    /// bandwidth is conventionally quoted).
    pub data_gb_per_s: f64,
}

/// One DDR channel: banks behind a shared bus, driven synchronously.
#[derive(Debug, Clone)]
pub struct DdrChannel {
    cfg: DdrConfig,
    memory: VaultMemory,
}

impl DdrChannel {
    /// Builds a channel from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or invalid timing.
    pub fn new(cfg: DdrConfig) -> DdrChannel {
        DdrChannel {
            cfg,
            memory: VaultMemory::new(cfg.banks, cfg.timing),
        }
    }

    /// A DDR4-2400 channel.
    pub fn ddr4_2400() -> DdrChannel {
        DdrChannel::new(DdrConfig::ddr4_2400())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DdrConfig {
        &self.cfg
    }

    /// The unloaded random-read latency: controller in + closed-page
    /// access + one burst + controller out.
    pub fn no_load_latency(&self) -> Delay {
        let t = &self.cfg.timing;
        self.cfg.ctrl_latency_req + t.t_rcd + t.t_cl + t.t_ccd + self.cfg.ctrl_latency_resp
    }

    /// Runs a closed-loop random-read workload: `clients` independent
    /// requesters, each keeping exactly one request in flight, for
    /// `requests` total reads of `size_bytes` each, to uniformly random
    /// banks. Returns latency and bandwidth.
    ///
    /// This mirrors how memory-level parallelism reaches a DDR controller
    /// from a CPU (one miss per MSHR), making latency-vs-load directly
    /// comparable with the HMC stream experiments.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `requests` is zero or `size_bytes` is zero.
    pub fn run_closed_loop(
        &mut self,
        clients: usize,
        requests: u64,
        size_bytes: u32,
        seed: u64,
    ) -> DdrReport {
        assert!(
            clients > 0 && requests > 0 && size_bytes > 0,
            "degenerate workload"
        );
        let bursts = size_bytes.div_ceil(self.cfg.burst_bytes);
        let mut rng = SmallRng::seed_from_u64(seed);
        // (next issue time, client id) min-heap.
        let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
        for c in 0..clients {
            heap.push(Reverse((Time::ZERO, c)));
        }
        let mut issued = 0u64;
        let mut sum_latency_ps = 0u128;
        let mut max_latency_ps = 0u64;
        let mut last_done = Time::ZERO;
        while let Some(Reverse((at, client))) = heap.pop() {
            if issued >= requests {
                break;
            }
            issued += 1;
            let bank = rng.gen_range(0..self.cfg.banks);
            let start = at + self.cfg.ctrl_latency_req;
            let data_done = self.memory.read(start, bank, bursts);
            let done = data_done + self.cfg.ctrl_latency_resp;
            let latency = (done - at).as_ps();
            sum_latency_ps += u128::from(latency);
            max_latency_ps = max_latency_ps.max(latency);
            last_done = last_done.max(done);
            heap.push(Reverse((done, client)));
        }
        let mean_latency_ns = sum_latency_ps as f64 / issued as f64 / 1e3;
        let data_bytes = issued as f64 * f64::from(size_bytes);
        let data_gb_per_s = data_bytes * 1e3 / last_done.as_ps().max(1) as f64;
        DdrReport {
            requests: issued,
            mean_latency_ns,
            max_latency_ns: max_latency_ps as f64 / 1e3,
            data_gb_per_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_load_latency_is_ddr_class() {
        let ddr = DdrChannel::ddr4_2400();
        let ns = ddr.no_load_latency().as_ns_f64();
        // Far below the HMC's ~0.7 µs measured stack: tens of ns.
        assert!((40.0..=90.0).contains(&ns), "no-load {ns} ns");
    }

    #[test]
    fn single_client_latency_matches_no_load() {
        let mut ddr = DdrChannel::ddr4_2400();
        let no_load = ddr.no_load_latency().as_ns_f64();
        let report = ddr.run_closed_loop(1, 500, 64, 1);
        // A lone client sees close to the unloaded latency (occasional
        // same-bank tRC gaps add a little).
        assert!(report.mean_latency_ns >= no_load * 0.99);
        assert!(
            report.mean_latency_ns <= no_load * 1.5,
            "{}",
            report.mean_latency_ns
        );
    }

    #[test]
    fn bandwidth_saturates_below_bus_peak() {
        let mut ddr = DdrChannel::ddr4_2400();
        let report = ddr.run_closed_loop(64, 20_000, 64, 2);
        let peak = ddr.config().peak_gb_per_s();
        assert!(
            report.data_gb_per_s > peak * 0.5,
            "got {}",
            report.data_gb_per_s
        );
        assert!(report.data_gb_per_s <= peak * 1.01);
    }

    #[test]
    fn latency_rises_with_load() {
        let low = DdrChannel::ddr4_2400()
            .run_closed_loop(1, 2_000, 64, 3)
            .mean_latency_ns;
        let high = DdrChannel::ddr4_2400()
            .run_closed_loop(64, 2_000, 64, 3)
            .mean_latency_ns;
        assert!(high > low * 1.5, "queueing must show: {low} vs {high}");
    }

    #[test]
    fn larger_requests_move_more_data() {
        let small = DdrChannel::ddr4_2400()
            .run_closed_loop(16, 5_000, 64, 4)
            .data_gb_per_s;
        let large = DdrChannel::ddr4_2400()
            .run_closed_loop(16, 5_000, 256, 4)
            .data_gb_per_s;
        assert!(large > small);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DdrChannel::ddr4_2400().run_closed_loop(8, 3_000, 64, 9);
        let b = DdrChannel::ddr4_2400().run_closed_loop(8, 3_000, 64, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn peak_bandwidth_is_19_2() {
        assert!((DdrConfig::ddr4_2400().peak_gb_per_s() - 19.2).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "degenerate workload")]
    fn zero_clients_rejected() {
        DdrChannel::ddr4_2400().run_closed_loop(0, 1, 64, 0);
    }
}
