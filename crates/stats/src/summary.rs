//! Streaming summary statistics.

use core::fmt;

/// Streaming mean/variance/extrema over `f64` samples (Welford's online
/// algorithm), used wherever the paper reports averages and standard
/// deviations (e.g. Figure 11's per-size latency σ across vaults).
///
/// # Examples
///
/// ```
/// use hmc_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary over an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Summary {
        let mut s = Summary::new();
        for x in samples {
            s.record(x);
        }
        s
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "summary samples must not be NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty summary.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`), or 0 with fewer than one
    /// sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by `n − 1`), or 0 with fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel-sweep reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} σ={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.population_std_dev(),
            self.min.min(self.max),
            self.max.max(self.min),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [1.0, 2.5, 3.5, 10.0, -4.0, 7.25];
        let s = Summary::from_samples(xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-4.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = Summary::from_samples([42.0]);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(20);
        let mut left = Summary::from_samples(a.iter().copied());
        let right = Summary::from_samples(b.iter().copied());
        left.merge(&right);
        let whole = Summary::from_samples(xs.iter().copied());
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_samples([1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }
}
