//! A deterministic, mergeable quantile sketch for streaming latency tails.
//!
//! The paper's figures report *mean* latencies, but the interesting
//! congestion behaviour (the fig. 6 saturation knee, NOM-style multi-tenant
//! interference) lives in the tail. This sketch tracks p50/p99/p999 of
//! picosecond latencies with a **fixed bucket structure**: bucket
//! boundaries depend only on compile-time constants, never on the data, so
//! per-thread shards merge by elementwise addition and every merge order
//! yields byte-identical counts — and therefore byte-identical quantiles.
//! That property is what lets `--threads 1/2/N` runs produce identical
//! percentile rows.

use core::fmt;

/// Values below this threshold get an exact (width-1) bucket each.
const LINEAR_CUTOFF: u64 = 64;
/// Sub-buckets per power-of-two octave above the linear range.
const SUBBUCKET_BITS: u32 = 5;
const SUBBUCKETS: usize = 1 << SUBBUCKET_BITS; // 32
/// Octaves covered: values with MSB in 6..=63.
const OCTAVES: usize = 58;
/// Total bucket count: 64 exact + 58 octaves × 32 sub-buckets.
const BUCKETS: usize = LINEAR_CUTOFF as usize + OCTAVES * SUBBUCKETS; // 1920

/// A fixed-structure log-linear quantile sketch over `u64` samples
/// (picosecond latencies in this workspace).
///
/// Values `< 64` are counted exactly; larger values land in one of 32
/// logarithmically spaced sub-buckets per power of two, bounding the
/// relative error of any reported quantile by `2^-5` (~3.1%). Quantile
/// queries return a bucket's inclusive upper bound clamped into the true
/// observed `[min, max]`, so results are deterministic integers.
///
/// # Examples
///
/// ```
/// use hmc_stats::LatencySketch;
///
/// let mut s = LatencySketch::new();
/// for ps in 1..=1000u64 {
///     s.record_ps(ps);
/// }
/// let p50 = s.quantile_ps(0.50).unwrap();
/// assert!((468..=532).contains(&p50), "p50 within 3.2%: {p50}");
/// assert_eq!(s.quantile_ps(1.0), Some(1000)); // clamped to true max
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LatencySketch {
    counts: Vec<u64>,
    count: u64,
    total_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for LatencySketch {
    fn default() -> LatencySketch {
        LatencySketch::new()
    }
}

/// Bucket index for a sample. Pure function of the value — no data
/// dependence, which is what makes shard merging order-independent.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= 6
        let offset = ((v >> (msb - SUBBUCKET_BITS)) as usize) & (SUBBUCKETS - 1);
        LINEAR_CUTOFF as usize + (msb as usize - 6) * SUBBUCKETS + offset
    }
}

/// Inclusive upper bound of bucket `idx` (the value a quantile query
/// reports before clamping into the observed range).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_CUTOFF as usize;
        let msb = (rel / SUBBUCKETS) as u32 + 6;
        let offset = (rel % SUBBUCKETS) as u64;
        let width = 1u64 << (msb - SUBBUCKET_BITS);
        let lower = (1u64 << msb) + offset * width;
        lower + (width - 1)
    }
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> LatencySketch {
        LatencySketch {
            counts: vec![0; BUCKETS],
            count: 0,
            total_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }

    /// Records one sample in picoseconds.
    #[inline]
    pub fn record_ps(&mut self, ps: u64) {
        self.counts[bucket_of(ps)] += 1;
        self.count += 1;
        self.total_ps += u128::from(ps);
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True observed minimum, if any samples were recorded.
    pub fn min_ps(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ps)
    }

    /// True observed maximum, if any samples were recorded.
    pub fn max_ps(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ps)
    }

    /// Exact mean in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ps as f64 / self.count as f64 / 1e3
        }
    }

    /// The quantile `q` in `[0, 1]` as a deterministic picosecond value:
    /// the inclusive upper bound of the bucket holding the rank-`⌈q·n⌉`
    /// sample, clamped into the observed `[min, max]`. Returns `None` for
    /// an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if `q` is NaN.
    pub fn quantile_ps(&self, q: f64) -> Option<u64> {
        assert!(!q.is_nan(), "quantile must not be NaN");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(idx).clamp(self.min_ps, self.max_ps));
            }
        }
        // Unreachable: bucket counts always sum to `count`.
        Some(self.max_ps)
    }

    /// Merges another sketch into this one. Elementwise addition over a
    /// fixed structure — commutative and associative, so any merge order
    /// over the same shards yields identical state.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.total_ps += other.total_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Clears all counters (used at the end of the warmup window).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.total_ps = 0;
        self.min_ps = u64::MAX;
        self.max_ps = 0;
    }
}

impl fmt::Debug for LatencySketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencySketch")
            .field("count", &self.count)
            .field("min_ps", &self.min_ps())
            .field("max_ps", &self.max_ps())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_structure_is_monotone_and_covers_u64() {
        let mut prev_upper = None;
        for idx in 0..BUCKETS {
            let u = bucket_upper(idx);
            if let Some(p) = prev_upper {
                assert!(u > p, "bucket {idx} upper {u} <= {p}");
            }
            prev_upper = Some(u);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(63), 63);
        assert_eq!(bucket_of(64), 64);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn samples_land_at_or_below_their_bucket_upper() {
        for v in (0..10_000u64).chain([1 << 20, u64::MAX / 3, u64::MAX]) {
            let idx = bucket_of(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "value {v} below bucket {idx}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = LatencySketch::new();
        for v in 0..64u64 {
            s.record_ps(v);
        }
        assert_eq!(s.quantile_ps(0.0), Some(0));
        assert_eq!(s.quantile_ps(1.0), Some(63));
        // rank 32 → value 31 (exact linear buckets).
        assert_eq!(s.quantile_ps(0.5), Some(31));
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut s = LatencySketch::new();
        for ps in (1_000_000..2_000_000u64).step_by(1000) {
            s.record_ps(ps);
        }
        for &(q, exact) in &[
            (0.5, 1_500_000.0),
            (0.99, 1_990_000.0),
            (0.999, 1_999_000.0),
        ] {
            let got = s.quantile_ps(q).unwrap() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.04, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
    }

    #[test]
    fn empty_sketch_is_safe() {
        let s = LatencySketch::new();
        assert_eq!(s.quantile_ps(0.5), None);
        assert_eq!(s.min_ps(), None);
        assert_eq!(s.max_ps(), None);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = LatencySketch::new();
        s.record_ps(123);
        s.reset();
        assert_eq!(s, LatencySketch::new());
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut whole = LatencySketch::new();
        let mut a = LatencySketch::new();
        let mut b = LatencySketch::new();
        for v in 0..5000u64 {
            let ps = v * 977 + 13;
            whole.record_ps(ps);
            if v % 2 == 0 { &mut a } else { &mut b }.record_ps(ps);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        let mut reversed = b;
        reversed.merge(&a);
        assert_eq!(reversed, whole, "merge order must not matter");
    }

    proptest! {
        /// Merging shards in any order yields identical sketch state, and
        /// therefore byte-identical quantiles — the property the
        /// `--threads` invariance of percentile rows rests on.
        #[test]
        fn shard_merge_is_order_independent(
            samples in prop::collection::vec(any::<u64>(), 1..400),
            cuts in prop::collection::vec(0usize..4, 1..400),
            rotate in 0usize..4,
        ) {
            // Split the sample stream into up to 4 shards.
            let mut shards = vec![LatencySketch::new(); 4];
            for (v, c) in samples.iter().zip(cuts.iter().cycle()) {
                shards[*c].record_ps(*v);
            }
            // Merge in two different orders.
            let mut fwd = LatencySketch::new();
            for s in &shards {
                fwd.merge(s);
            }
            let mut rev = LatencySketch::new();
            let n = shards.len();
            shards.rotate_left(rotate % n);
            for s in shards.iter().rev() {
                rev.merge(s);
            }
            prop_assert_eq!(&fwd, &rev);
            for &q in &[0.0, 0.5, 0.99, 0.999, 1.0] {
                prop_assert_eq!(fwd.quantile_ps(q), rev.quantile_ps(q));
            }
        }

        /// Quantiles are exact order statistics up to the documented 2^-5
        /// relative error (exact below the linear cutoff).
        #[test]
        fn quantile_error_bound(samples in prop::collection::vec(1u64..u64::MAX / 2, 1..200)) {
            let mut s = LatencySketch::new();
            for &v in &samples {
                s.record_ps(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &q in &[0.5, 0.9, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1] as f64;
                let got = s.quantile_ps(q).unwrap() as f64;
                prop_assert!(got >= exact * (1.0 - 1.0 / 32.0) - 1.0);
                prop_assert!(got <= exact * (1.0 + 1.0 / 32.0) + 1.0);
            }
        }
    }
}
