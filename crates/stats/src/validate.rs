//! A minimal JSON well-formedness checker.
//!
//! The workspace builds offline (no serde), yet several emitters build
//! JSON by hand: [`Table::to_json`](crate::Table::to_json), the `repro`
//! binary's experiment dumps, the perfgate basket, and the telemetry
//! tracer's Chrome `trace_event` files. This module is the shared
//! validator those paths (and CI) use to prove their output parses.

/// Checks that `s` is exactly one well-formed JSON value (objects,
/// arrays, strings, numbers, `true`/`false`/`null`), with nothing but
/// whitespace after it.
///
/// This is a *well-formedness* check, not a full RFC 8259 parser: numbers
/// are accepted if Rust's `f64` parser accepts them, and string escapes
/// are skipped rather than decoded. That is exactly the level of rigor
/// needed to catch the classic hand-rolled-JSON failures (bare `NaN`
/// tokens, unbalanced brackets, trailing commas, unterminated strings).
///
/// # Examples
///
/// ```
/// use hmc_stats::validate_json;
///
/// assert!(validate_json("{\"a\": [1, 2.5, null]}").is_ok());
/// assert!(validate_json("{\"a\": NaN}").is_err());
/// assert!(validate_json("[1, 2,]").is_err());
/// ```
pub fn validate_json(s: &str) -> Result<(), String> {
    let rest = json_value(s)?;
    if rest.trim().is_empty() {
        Ok(())
    } else {
        Err(format!("trailing garbage after JSON value: {rest:.40?}"))
    }
}

/// Consumes one JSON value from the front of `s`, returning the rest.
fn json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let Some(c) = s.chars().next() else {
        return Err("unexpected end of input".to_owned());
    };
    match c {
        '{' => {
            let mut s = s[1..].trim_start();
            if let Some(rest) = s.strip_prefix('}') {
                return Ok(rest);
            }
            loop {
                s = json_value(s)?.trim_start(); // key
                s = s
                    .strip_prefix(':')
                    .ok_or_else(|| format!("expected ':' at {s:.20?}"))?;
                s = json_value(s)?.trim_start();
                if let Some(rest) = s.strip_prefix(',') {
                    s = rest.trim_start();
                } else {
                    return s
                        .strip_prefix('}')
                        .ok_or_else(|| format!("expected '}}' at {s:.20?}"));
                }
            }
        }
        '[' => {
            let mut s = s[1..].trim_start();
            if let Some(rest) = s.strip_prefix(']') {
                return Ok(rest);
            }
            loop {
                s = json_value(s)?.trim_start();
                if let Some(rest) = s.strip_prefix(',') {
                    s = rest.trim_start();
                } else {
                    return s
                        .strip_prefix(']')
                        .ok_or_else(|| format!("expected ']' at {s:.20?}"));
                }
            }
        }
        '"' => {
            let mut chars = s[1..].char_indices();
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        chars.next();
                    }
                    '"' => return Ok(&s[1 + i + 1..]),
                    _ => {}
                }
            }
            Err("unterminated string".to_owned())
        }
        _ => {
            for (lit, len) in [("null", 4), ("true", 4), ("false", 5)] {
                if s.starts_with(lit) {
                    return Ok(&s[len..]);
                }
            }
            let end = s
                .find(|c: char| !"+-0123456789.eE".contains(c))
                .unwrap_or(s.len());
            if end == 0 {
                return Err(format!("invalid token at {s:.20?}"));
            }
            s[..end]
                .parse::<f64>()
                .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))?;
            Ok(&s[end..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "null",
            "42",
            "-1.5e3",
            "\"hi\\\"there\"",
            "[]",
            "{}",
            "{\"k\": [1, {\"n\": null}, false]}",
            " { \"spaced\" : [ 1 , 2 ] } ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1 2]",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": NaN}",
            "Infinity",
            "[1] trailing",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }
}
