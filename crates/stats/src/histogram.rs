//! Fixed-range histograms for the paper's heatmap figures.

use core::fmt;

/// A histogram over a fixed `[lo, hi)` range with equally wide bins.
///
/// Figures 10 and 12 of the paper bin per-vault average latencies into nine
/// intervals between the observed extremes; this type reproduces that
/// construction.
///
/// # Out-of-range samples
///
/// Samples outside `[lo, hi)` **clamp** into the edge bins — they are
/// never dropped, so counts are conserved (property-tested) and the total
/// still matches the number of `record` calls. This choice matches the
/// paper's construction, where the range is derived from the observed
/// extremes and nothing can fall outside it; when a fixed range is reused
/// (e.g. across runs), clamped samples would otherwise silently distort
/// the edge bins. The histogram therefore also counts how many samples
/// clamped on each side ([`clamped_lo`](Histogram::clamped_lo) /
/// [`clamped_hi`](Histogram::clamped_hi)) so reports can surface them.
///
/// # Examples
///
/// ```
/// use hmc_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 90.0, 9);
/// for x in [5.0, 15.0, 15.5, 89.0, 100.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_counts()[0], 1);
/// assert_eq!(h.bin_counts()[1], 2);
/// assert_eq!(h.bin_counts()[8], 2); // 89.0 and the clamped 100.0
/// assert_eq!(h.clamped_hi(), 1); // the 100.0 was out of range
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    clamped_lo: u64,
    clamped_hi: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            clamped_lo: 0,
            clamped_hi: 0,
        }
    }

    /// The inclusive lower bound of the range.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The exclusive upper bound of the range.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The width of each bin.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records a sample, clamping out-of-range values into the edge bins
    /// (see the type-level docs: clamp, not drop). Clamped samples are
    /// additionally tallied in [`clamped_lo`](Histogram::clamped_lo) /
    /// [`clamped_hi`](Histogram::clamped_hi).
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "histogram samples must not be NaN");
        if x < self.lo {
            self.clamped_lo += 1;
        } else if x >= self.hi {
            self.clamped_hi += 1;
        }
        let idx = ((x - self.lo) / self.bin_width()).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Samples that fell below `lo` and clamped into the first bin.
    #[inline]
    pub fn clamped_lo(&self) -> u64 {
        self.clamped_lo
    }

    /// Samples at or above `hi` that clamped into the last bin.
    #[inline]
    pub fn clamped_hi(&self) -> u64 {
        self.clamped_hi
    }

    /// Total out-of-range samples (both sides). These are *included* in
    /// [`count`](Histogram::count) — clamping conserves observations.
    #[inline]
    pub fn clamped(&self) -> u64 {
        self.clamped_lo + self.clamped_hi
    }

    /// Per-bin counts.
    #[inline]
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin counts normalized by the total (empty histogram → all zeros).
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.count();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Per-bin counts normalized by the largest bin (the paper's Figure 12
    /// normalization: per-row maximum).
    pub fn normalized_by_max(&self) -> Vec<f64> {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / max as f64).collect()
    }

    /// The midpoint value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// The `[start, end)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        (
            self.lo + i as f64 * self.bin_width(),
            self.lo + (i + 1) as f64 * self.bin_width(),
        )
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.clamped_lo += other.clamped_lo;
        self.clamped_hi += other.clamped_hi;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hist[{:.1}..{:.1})x{} n={}",
            self.lo,
            self.hi,
            self.bins(),
            self.count()
        )
    }
}

/// Builds a set of histograms that share one range derived from the global
/// extremes of previously collected samples — how Figures 10/12 align all
/// 16 vault rows onto one latency axis.
///
/// # Examples
///
/// ```
/// use hmc_stats::SharedRange;
///
/// let mut r = SharedRange::new();
/// r.observe(10.0);
/// r.observe(20.0);
/// let h = r.histogram(5).expect("samples were observed");
/// assert_eq!(h.lo(), 10.0);
/// assert!(h.hi() > 20.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SharedRange {
    min: Option<f64>,
    max: Option<f64>,
}

impl SharedRange {
    /// An empty range.
    pub fn new() -> SharedRange {
        SharedRange::default()
    }

    /// Extends the range to include `x`.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "range samples must not be NaN");
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// The observed `(min, max)`, if any samples were seen.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        Some((self.min?, self.max?))
    }

    /// Creates an empty histogram spanning the observed range with `bins`
    /// bins. The upper bound is nudged up slightly so the maximum sample
    /// falls inside the last bin rather than on the excluded edge.
    ///
    /// Returns `None` if no samples were observed.
    pub fn histogram(&self, bins: usize) -> Option<Histogram> {
        let (lo, hi) = self.bounds()?;
        let hi = if hi > lo {
            hi + (hi - lo) * 1e-9
        } else {
            lo + 1.0
        };
        Some(Histogram::new(lo, hi, bins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.999);
        h.record(5.0);
        h.record(9.999);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-100.0);
        h.record(100.0);
        h.record(10.0); // exactly hi clamps into last bin
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[4], 2);
        // Clamp, not drop: the total is conserved and both sides are
        // tallied separately.
        assert_eq!(h.count(), 3);
        assert_eq!(h.clamped_lo(), 1);
        assert_eq!(h.clamped_hi(), 2);
        assert_eq!(h.clamped(), 3);
    }

    #[test]
    fn in_range_samples_do_not_count_as_clamped() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0); // inclusive lower edge is in range
        h.record(9.999);
        assert_eq!(h.clamped(), 0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_adds_clamp_tallies() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let mut b = Histogram::new(0.0, 10.0, 2);
        a.record(-1.0);
        b.record(11.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.clamped_lo(), 1);
        assert_eq!(a.clamped_hi(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn normalization_sums_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.9] {
            h.record(x);
        }
        let total: f64 = h.normalized().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        let by_max = h.normalized_by_max();
        assert_eq!(by_max[1], 1.0);
    }

    #[test]
    fn empty_normalizations_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.normalized(), vec![0.0; 3]);
        assert_eq!(h.normalized_by_max(), vec![0.0; 3]);
    }

    #[test]
    fn bin_geometry() {
        let h = Histogram::new(10.0, 20.0, 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_center(0), 11.0);
        assert_eq!(h.bin_bounds(4), (18.0, 20.0));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let mut b = Histogram::new(0.0, 10.0, 2);
        a.record(1.0);
        b.record(1.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.bin_counts(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "ranges differ")]
    fn merge_rejects_mismatched_ranges() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let b = Histogram::new(0.0, 11.0, 2);
        a.merge(&b);
    }

    #[test]
    fn shared_range_covers_max_sample() {
        let mut r = SharedRange::new();
        for x in [3.0, 7.0, 5.0] {
            r.observe(x);
        }
        let mut h = r.histogram(9).unwrap();
        h.record(7.0); // the global max must not clamp
        assert_eq!(h.bin_counts()[8], 1);
        assert_eq!(r.bounds(), Some((3.0, 7.0)));
    }

    #[test]
    fn shared_range_handles_degenerate_case() {
        let mut r = SharedRange::new();
        r.observe(5.0);
        let h = r.histogram(3).unwrap();
        assert_eq!(h.lo(), 5.0);
        assert!(h.hi() > 5.0);
        assert!(SharedRange::new().histogram(3).is_none());
    }
}
