//! Bandwidth accounting and Little's-law estimation.

use core::fmt;

/// Accumulates transferred bytes and converts to GB/s over an elapsed
/// window, following the paper's formula: "multiplying the number of
/// accesses by the cumulative size of request and response packets
/// including header, tail and data payload, and dividing it by the elapsed
/// time" (Section III-B). GB here is 10⁹ bytes, as in the paper's
/// link-rate arithmetic (Equation 1).
///
/// # Examples
///
/// ```
/// use hmc_stats::BandwidthMeter;
///
/// let mut bw = BandwidthMeter::new();
/// bw.add_bytes(160);
/// bw.add_bytes(160);
/// // 320 bytes in 16 ns = 20 GB/s.
/// assert_eq!(bw.gb_per_s(16_000), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandwidthMeter {
    bytes: u64,
    accesses: u64,
}

impl BandwidthMeter {
    /// An empty meter.
    pub fn new() -> BandwidthMeter {
        BandwidthMeter::default()
    }

    /// Adds one access moving `bytes` (both directions combined).
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.accesses += 1;
    }

    /// Total bytes accumulated.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total accesses accumulated.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Bandwidth in GB/s (10⁹ B/s) over an elapsed window of `elapsed_ps`
    /// picoseconds. Returns 0 for an empty window.
    pub fn gb_per_s(&self, elapsed_ps: u64) -> f64 {
        if elapsed_ps == 0 {
            return 0.0;
        }
        // bytes / (ps * 1e-12 s) / 1e9 = bytes * 1e3 / ps.
        self.bytes as f64 * 1e3 / elapsed_ps as f64
    }

    /// Access throughput in accesses per second over `elapsed_ps`.
    pub fn accesses_per_s(&self, elapsed_ps: u64) -> f64 {
        if elapsed_ps == 0 {
            return 0.0;
        }
        self.accesses as f64 * 1e12 / elapsed_ps as f64
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &BandwidthMeter) {
        self.bytes += other.bytes;
        self.accesses += other.accesses;
    }

    /// Clears the meter (end of warmup).
    pub fn reset(&mut self) {
        *self = BandwidthMeter::default();
    }
}

impl fmt::Display for BandwidthMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} accesses, {} bytes", self.accesses, self.bytes)
    }
}

/// Little's law: the mean number of requests resident in a stationary
/// system equals arrival rate × mean time in system.
///
/// The paper uses this to infer the queue capacity of a vault controller
/// from saturated-bandwidth measurements (Section IV-F, Figure 14): it
/// measures latency at the saturation point, multiplies by the input rate,
/// and divides by the request size to count outstanding *requests*.
///
/// # Examples
///
/// ```
/// // 10 GB/s of 128 B data payloads at 3.5 µs latency:
/// let n = hmc_stats::little_law_outstanding(10.0e9, 3.5e-6, 128);
/// assert!((n - 273.4).abs() < 0.1);
/// ```
pub fn little_law_outstanding(data_bytes_per_s: f64, latency_s: f64, request_bytes: u32) -> f64 {
    assert!(request_bytes > 0, "request size must be positive");
    assert!(
        data_bytes_per_s >= 0.0 && latency_s >= 0.0,
        "rates must be non-negative"
    );
    data_bytes_per_s * latency_s / f64::from(request_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_per_s_uses_decimal_gigabytes() {
        let mut bw = BandwidthMeter::new();
        bw.add_bytes(30_000_000_000);
        // 30e9 bytes in 1 s.
        assert_eq!(bw.gb_per_s(1_000_000_000_000), 30.0);
    }

    #[test]
    fn peak_link_bandwidth_equation_1() {
        // Equation 1: 2 links × 8 lanes × 15 Gb/s × 2 (duplex) = 60 GB/s.
        // One second of full-duplex traffic on both links:
        let bytes_per_s = 2.0 * 8.0 * 15e9 / 8.0 * 2.0;
        assert_eq!(bytes_per_s / 1e9, 60.0);
    }

    #[test]
    fn empty_window_is_zero() {
        let bw = BandwidthMeter::new();
        assert_eq!(bw.gb_per_s(0), 0.0);
        assert_eq!(bw.accesses_per_s(0), 0.0);
    }

    #[test]
    fn accesses_per_second() {
        let mut bw = BandwidthMeter::new();
        for _ in 0..100 {
            bw.add_bytes(48);
        }
        // 100 accesses in 1 µs = 1e8/s.
        assert_eq!(bw.accesses_per_s(1_000_000), 1e8);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = BandwidthMeter::new();
        a.add_bytes(10);
        let mut b = BandwidthMeter::new();
        b.add_bytes(20);
        a.merge(&b);
        assert_eq!(a.bytes(), 30);
        assert_eq!(a.accesses(), 2);
        a.reset();
        assert_eq!(a.bytes(), 0);
    }

    #[test]
    fn little_law_basics() {
        // 1 req/s of 1-byte requests at 1 s latency → 1 outstanding.
        assert_eq!(little_law_outstanding(1.0, 1.0, 1), 1.0);
        // Scaling throughput scales occupancy linearly.
        assert_eq!(little_law_outstanding(64.0, 0.5, 32), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn little_law_rejects_zero_size() {
        let _ = little_law_outstanding(1.0, 1.0, 0);
    }
}
