//! Aggregate latency counters matching the FPGA monitoring logic.

use core::fmt;

/// The statistics each port's monitoring logic maintains on real hardware:
/// "the total number of read and write requests and the total, minimum, and
/// maximum of read latencies" (Section III-B). Latencies are tracked in
/// picoseconds to match the simulator's clock.
///
/// # Examples
///
/// ```
/// use hmc_stats::LatencyRecorder;
///
/// let mut m = LatencyRecorder::new();
/// m.record_ps(700_000);
/// m.record_ps(900_000);
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.mean_ns(), 800.0);
/// assert_eq!(m.max_ps(), Some(900_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyRecorder {
    count: u64,
    total_ps: u128,
    min_ps: Option<u64>,
    max_ps: Option<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Records one completed access with round-trip time `ps`.
    pub fn record_ps(&mut self, ps: u64) {
        self.count += 1;
        self.total_ps += u128::from(ps);
        self.min_ps = Some(self.min_ps.map_or(ps, |m| m.min(ps)));
        self.max_ps = Some(self.max_ps.map_or(ps, |m| m.max(ps)));
    }

    /// Number of accesses recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Aggregate latency in picoseconds.
    #[inline]
    pub fn total_ps(&self) -> u128 {
        self.total_ps
    }

    /// Minimum observed latency, if any.
    #[inline]
    pub fn min_ps(&self) -> Option<u64> {
        self.min_ps
    }

    /// Maximum observed latency, if any.
    #[inline]
    pub fn max_ps(&self) -> Option<u64> {
        self.max_ps
    }

    /// Average latency in nanoseconds (0 if empty) — the paper's
    /// "aggregate read latency divided by the total number of reads".
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ps as f64 / self.count as f64 / 1e3
        }
    }

    /// Average latency in microseconds (0 if empty).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1e3
    }

    /// Maximum observed latency in microseconds (0 if empty).
    pub fn max_us(&self) -> f64 {
        self.max_ps.unwrap_or(0) as f64 / 1e6
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.count += other.count;
        self.total_ps += other.total_ps;
        if let Some(m) = other.min_ps {
            self.min_ps = Some(self.min_ps.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max_ps {
            self.max_ps = Some(self.max_ps.map_or(m, |s| s.max(m)));
        }
    }

    /// Clears all counters (used at the end of the warmup window).
    pub fn reset(&mut self) {
        *self = LatencyRecorder::default();
    }
}

impl fmt::Display for LatencyRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}ns min={:.1}ns max={:.1}ns",
            self.count,
            self.mean_ns(),
            self.min_ps.unwrap_or(0) as f64 / 1e3,
            self.max_ps.unwrap_or(0) as f64 / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_min_max_total() {
        let mut m = LatencyRecorder::new();
        for ps in [500, 1500, 1000] {
            m.record_ps(ps);
        }
        assert_eq!(m.count(), 3);
        assert_eq!(m.total_ps(), 3000);
        assert_eq!(m.min_ps(), Some(500));
        assert_eq!(m.max_ps(), Some(1500));
        assert_eq!(m.mean_ns(), 1.0);
    }

    #[test]
    fn empty_recorder_is_safe() {
        let m = LatencyRecorder::new();
        assert_eq!(m.mean_ns(), 0.0);
        assert_eq!(m.mean_us(), 0.0);
        assert_eq!(m.max_us(), 0.0);
        assert_eq!(m.min_ps(), None);
    }

    #[test]
    fn merge_combines_extremes() {
        let mut a = LatencyRecorder::new();
        a.record_ps(100);
        let mut b = LatencyRecorder::new();
        b.record_ps(50);
        b.record_ps(200);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ps(), Some(50));
        assert_eq!(a.max_ps(), Some(200));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = LatencyRecorder::new();
        m.record_ps(100);
        m.reset();
        assert_eq!(m.count(), 0);
        assert_eq!(m.min_ps(), None);
    }

    #[test]
    fn no_overflow_on_huge_totals() {
        let mut m = LatencyRecorder::new();
        for _ in 0..1000 {
            m.record_ps(u64::MAX / 2);
        }
        assert_eq!(m.count(), 1000);
        assert!(m.mean_ns() > 0.0);
    }
}
