//! Plain-text table rendering for experiment reports.

use core::fmt;

/// A simple column-aligned table with ASCII and CSV renderers, used by the
/// `repro` binary to print each figure's data series.
///
/// # Examples
///
/// ```
/// use hmc_stats::Table;
///
/// let mut t = Table::new(["pattern", "bw (GB/s)"]);
/// t.row(["1 bank", "2.1"]);
/// t.row(["16 vaults", "23.0"]);
/// let ascii = t.to_ascii();
/// assert!(ascii.contains("16 vaults"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("pattern,bw (GB/s)\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a column-aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..*w {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as a JSON object
    /// (`{"headers": [...], "rows": [[...], ...]}`), for machine-readable
    /// experiment dumps. Serde is deliberately not used: the workspace
    /// builds offline, so serialization is hand-rolled here with full
    /// string escaping ([`json_escape`]).
    ///
    /// Every cell is emitted as a JSON *string*, so the document is
    /// well-formed regardless of cell content — a `NaN` formatted into a
    /// cell yields the (valid, if unhelpful) string `"NaN"`, never a bare
    /// `NaN` token. Emitters that build JSON *numbers* by hand (tables
    /// built from float aggregates, the perfgate harness) must go through
    /// [`json_f64`], which serializes non-finite values as `null`: a
    /// zero-completion port's mean latency is `NaN`, and a bare `NaN` in
    /// a numeric position is invalid JSON.
    pub fn to_json(&self) -> String {
        let arr = |cells: &[String]| -> String {
            let quoted: Vec<String> = cells
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"headers\":{},\"rows\":[{}]}}",
            arr(&self.headers),
            rows.join(",")
        )
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas, quotes or
    /// newlines).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers);
        for row in &self.rows {
            push_row(row);
        }
        out
    }
}

/// Formats a float for a JSON *number* position with `decimals` fraction
/// digits, serializing non-finite values (`NaN`, `±inf` — e.g. the mean
/// latency of a port that completed nothing) as `null`: a bare `NaN`
/// token is invalid JSON and silently breaks every downstream parser.
///
/// # Examples
///
/// ```
/// use hmc_stats::json_f64;
///
/// assert_eq!(json_f64(1.25, 2), "1.25");
/// assert_eq!(json_f64(f64::NAN, 3), "null");
/// assert_eq!(json_f64(f64::INFINITY, 0), "null");
/// ```
pub fn json_f64(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_aligns_columns() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["wide cell value", "1"]);
        let text = t.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in header and data.
        let h = lines[0].find("long header").unwrap();
        let d = lines[2].find('1').unwrap();
        assert_eq!(h, d);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_validated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_ascii() {
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        assert_eq!(t.to_string(), t.to_ascii());
    }

    #[test]
    fn json_round_trips_structure_and_escapes() {
        let mut t = Table::new(["name", "value"]);
        t.row(["say \"hi\"", "1"]);
        t.row(["line\nbreak", "2"]);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"headers\":[\"name\",\"value\"],\"rows\":[[\"say \\\"hi\\\"\",\"1\"],[\"line\\nbreak\",\"2\"]]}"
        );
    }

    #[test]
    fn json_escape_covers_control_chars() {
        assert_eq!(json_escape("a\\b\t\u{1}"), "a\\\\b\\t\\u0001");
    }

    use crate::validate_json;

    fn assert_parses(doc: &str) {
        validate_json(doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
    }

    #[test]
    fn json_f64_serializes_non_finite_as_null() {
        assert_eq!(json_f64(2.5, 3), "2.500");
        assert_eq!(json_f64(-0.125, 2), "-0.12");
        assert_eq!(json_f64(f64::NAN, 2), "null");
        assert_eq!(json_f64(f64::INFINITY, 2), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY, 2), "null");
    }

    #[test]
    fn numeric_documents_with_non_finite_inputs_still_parse() {
        // The audit case: a zero-completion port's mean latency is NaN.
        // Emitted naively into a numeric position it breaks the document;
        // through json_f64 it becomes null and the document parses.
        let mean = f64::NAN;
        let naive = format!("{{\"mean_ns\":{mean:.2}}}");
        assert!(validate_json(&naive).is_err(), "bare NaN must not parse");
        let fixed = format!("{{\"mean_ns\":{}}}", json_f64(mean, 2));
        assert_parses(&fixed);
        assert!(fixed.contains("null"));
    }

    #[test]
    fn table_json_always_parses_even_with_nan_cells() {
        // Table cells are JSON strings, so even a formatted NaN stays a
        // valid (string) token — locked down by the parser.
        let mut t = Table::new(["latency (ns)", "note"]);
        t.row([format!("{:.1}", f64::NAN), "say \"hi\"\n".to_owned()]);
        t.row([json_f64(f64::NAN, 1), "null-cell form".to_owned()]);
        assert_parses(&t.to_json());
    }

    #[test]
    fn accessors_expose_contents() {
        let mut t = Table::new(["a"]);
        t.row(["x"]);
        assert_eq!(t.headers(), ["a".to_owned()]);
        assert_eq!(t.rows(), [vec!["x".to_owned()]]);
    }
}
