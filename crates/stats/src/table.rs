//! Plain-text table rendering for experiment reports.

use core::fmt;

/// A simple column-aligned table with ASCII and CSV renderers, used by the
/// `repro` binary to print each figure's data series.
///
/// # Examples
///
/// ```
/// use hmc_stats::Table;
///
/// let mut t = Table::new(["pattern", "bw (GB/s)"]);
/// t.row(["1 bank", "2.1"]);
/// t.row(["16 vaults", "23.0"]);
/// let ascii = t.to_ascii();
/// assert!(ascii.contains("16 vaults"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("pattern,bw (GB/s)\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a column-aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..*w {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as a JSON object
    /// (`{"headers": [...], "rows": [[...], ...]}`), for machine-readable
    /// experiment dumps. Serde is deliberately not used: the workspace
    /// builds offline, so serialization is hand-rolled here with full
    /// string escaping ([`json_escape`]).
    pub fn to_json(&self) -> String {
        let arr = |cells: &[String]| -> String {
            let quoted: Vec<String> = cells
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"headers\":{},\"rows\":[{}]}}",
            arr(&self.headers),
            rows.join(",")
        )
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas, quotes or
    /// newlines).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers);
        for row in &self.rows {
            push_row(row);
        }
        out
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_aligns_columns() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["wide cell value", "1"]);
        let text = t.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in header and data.
        let h = lines[0].find("long header").unwrap();
        let d = lines[2].find('1').unwrap();
        assert_eq!(h, d);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_validated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_ascii() {
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        assert_eq!(t.to_string(), t.to_ascii());
    }

    #[test]
    fn json_round_trips_structure_and_escapes() {
        let mut t = Table::new(["name", "value"]);
        t.row(["say \"hi\"", "1"]);
        t.row(["line\nbreak", "2"]);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"headers\":[\"name\",\"value\"],\"rows\":[[\"say \\\"hi\\\"\",\"1\"],[\"line\\nbreak\",\"2\"]]}"
        );
    }

    #[test]
    fn json_escape_covers_control_chars() {
        assert_eq!(json_escape("a\\b\t\u{1}"), "a\\\\b\\t\\u0001");
    }

    #[test]
    fn accessors_expose_contents() {
        let mut t = Table::new(["a"]);
        t.row(["x"]);
        assert_eq!(t.headers(), ["a".to_owned()]);
        assert_eq!(t.rows(), [vec!["x".to_owned()]]);
    }
}
