//! # hmc-stats
//!
//! Measurement plumbing for the `hmc-noc-sim` workspace: the aggregate
//! latency counters the FPGA monitoring logic keeps, bandwidth accounting
//! in the paper's units, fixed-range histograms for the heatmap figures,
//! Welford summaries for the average/σ figures, Little's-law occupancy
//! estimation, and a small table renderer for experiment reports.
//!
//! ```
//! use hmc_stats::{BandwidthMeter, LatencyRecorder};
//!
//! let mut lat = LatencyRecorder::new();
//! let mut bw = BandwidthMeter::new();
//! // One 128 B read: 160 B round trip, 2 µs latency.
//! lat.record_ps(2_000_000);
//! bw.add_bytes(160);
//! assert_eq!(lat.mean_us(), 2.0);
//! assert_eq!(bw.gb_per_s(2_000_000), 0.08);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod histogram;
mod latency;
mod sketch;
mod summary;
mod table;
mod validate;

pub use bandwidth::{little_law_outstanding, BandwidthMeter};
pub use histogram::{Histogram, SharedRange};
pub use latency::LatencyRecorder;
pub use sketch::LatencySketch;
pub use summary::Summary;
pub use table::{json_escape, json_f64, Table};
pub use validate::validate_json;
