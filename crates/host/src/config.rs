//! Host-side (FPGA) configuration.

use hmc_des::Delay;
use hmc_link::LinkConfig;

/// Configuration of the modelled FPGA: the Pico HMC controller, its links
/// and the per-port interfaces.
///
/// Calibration: the paper reports that "approximately 547 ns of all
/// latencies ... belongs to FPGA and data transmission stages"
/// (Section IV-B). The defaults charge a controller pipeline of ~240 ns per
/// direction, one 187.5 MHz FPGA cycle of port-side queuing, 55 ns of
/// SerDes per direction, plus serialization — which lands the no-load round
/// trip at ≈0.7 µs including the cube, as in Figure 7.
///
/// # Examples
///
/// ```
/// use hmc_host::HostConfig;
///
/// let cfg = HostConfig::ac510_default();
/// // 187.5 MHz user clock.
/// assert_eq!(cfg.fpga_period.as_ps(), 5_333);
/// ```
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// FPGA user-clock period (187.5 MHz ⇒ 5333 ps). Each port issues at
    /// most one request per cycle.
    pub fpga_period: Delay,
    /// Downstream (host→cube) link configuration. `input_buffer_flits`
    /// must equal the cube's link input buffer (the system wiring sets it
    /// from [`hmc_device::HmcDevice::request_tokens_per_link`]).
    pub link: LinkConfig,
    /// Number of external links (2 on the AC-510).
    pub link_count: u8,
    /// Per-port request FIFO depth in the controller, in packets
    /// ("Wr. Req. FIFO" in Figure 5).
    pub port_fifo_packets: usize,
    /// Controller egress FIFO per link, in flits: how much serialized
    /// backlog the controller buffers ahead of each link.
    pub link_fifo_flits: u32,
    /// Controller pipeline latency charged on the request path.
    pub ctrl_latency_req: Delay,
    /// Controller pipeline latency charged on the response path.
    pub ctrl_latency_resp: Delay,
    /// Per-flit time to drain a response across a port's AXI interface
    /// (16 B per 187.5 MHz FPGA cycle: 3 GB/s per port). Stream ports pay
    /// one extra flit per response to ship the address back to the host
    /// (the PicoStream read-address channel of Figure 5b).
    pub port_rx_flit_time: Delay,
}

impl HostConfig {
    /// The AC-510 host defaults described above.
    pub fn ac510_default() -> HostConfig {
        HostConfig {
            fpga_period: Delay::from_ps(5_333),
            link: LinkConfig::ac510_default(),
            link_count: 2,
            port_fifo_packets: 4,
            link_fifo_flits: 36,
            ctrl_latency_req: Delay::from_ps(240_000),
            ctrl_latency_resp: Delay::from_ps(240_000),
            port_rx_flit_time: Delay::from_ps(5_333),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.link.validate()?;
        if self.fpga_period.is_zero() {
            return Err("FPGA period must be positive".to_owned());
        }
        if self.link_count == 0 {
            return Err("host needs at least one link".to_owned());
        }
        if self.port_fifo_packets == 0 {
            return Err("port FIFOs need nonzero capacity".to_owned());
        }
        if self.link_fifo_flits < 9 {
            return Err("link FIFOs must hold at least one max-size packet".to_owned());
        }
        if self.port_rx_flit_time.is_zero() {
            return Err("port RX drain rate must be positive".to_owned());
        }
        Ok(())
    }
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig::ac510_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(HostConfig::ac510_default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        let mut c = HostConfig::ac510_default();
        c.fpga_period = Delay::ZERO;
        assert!(c.validate().is_err());
        let mut c = HostConfig::ac510_default();
        c.link_count = 0;
        assert!(c.validate().is_err());
        let mut c = HostConfig::ac510_default();
        c.port_fifo_packets = 0;
        assert!(c.validate().is_err());
        let mut c = HostConfig::ac510_default();
        c.link_fifo_flits = 1;
        assert!(c.validate().is_err());
        let mut c = HostConfig::ac510_default();
        c.port_rx_flit_time = Delay::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn port_drain_rate_is_16b_per_fpga_cycle() {
        let c = HostConfig::ac510_default();
        // 16 B per 5.333 ns = 3 GB/s per port; a 128 B response drains in
        // 48 ns, setting the per-port slope of Figure 13d.
        let gbs = 16.0 / c.port_rx_flit_time.as_ns_f64();
        assert!((gbs - 3.0).abs() < 0.01);
    }
}
