//! The host controller: per-port FIFOs, arbitration, link scheduling and
//! response drain — the FPGA half of Figure 5.

use hmc_des::{Clocked, InlineVec, Time};
use hmc_link::{Deliveries, LinkTx};
use hmc_noc::{BoundedQueue, RoundRobinArbiter};
use hmc_packet::{LinkId, PortId, RequestPacket, ResponsePacket};
use hmc_telemetry::{LinkDir, Probe, Stage};

use crate::config::HostConfig;
use crate::port::Port;

/// The reusable event buffer the host's advance methods fill and return a
/// view of. Sixteen inline slots cover every common FPGA cycle; bursts
/// beyond that spill once into retained heap capacity, so the per-cycle
/// relay path allocates nothing in steady state.
pub type HostEvents = InlineVec<HostEvent, 16>;

/// Timed effects of advancing the host model. The surrounding simulation
/// relays each to its destination at the recorded time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEvent {
    /// A request packet finishes arriving at the cube on `link` at `at`.
    RequestArrival {
        /// Link it travelled on.
        link: LinkId,
        /// The packet.
        pkt: RequestPacket,
        /// Arrival time at the cube (serialization + SerDes + controller
        /// pipeline).
        at: Time,
    },
    /// A response finishes draining across its port's AXI interface at
    /// `at`; deliver it to the port then.
    ResponseDrained {
        /// Destination port.
        port: PortId,
        /// The packet.
        pkt: ResponsePacket,
        /// Drain-completion time.
        at: Time,
    },
    /// The host RX buffer for `link` frees `flits` flits at `at`; return
    /// them to the cube's upstream serializer then.
    ResponseTokens {
        /// The link whose buffer drained.
        link: LinkId,
        /// Flits freed.
        flits: u32,
        /// When the space frees.
        at: Time,
    },
}

/// The modelled FPGA: ports, per-port request FIFOs, a round-robin
/// arbiter onto the external links, and per-port response serializers.
///
/// Pure state machine: the caller invokes [`HostModel::tick`] once per
/// FPGA cycle while traffic is active and forwards the returned events.
pub struct HostModel {
    cfg: HostConfig,
    ports: Vec<Port>,
    fifos: Vec<BoundedQueue<RequestPacket>>,
    arb: RoundRobinArbiter,
    /// Per-link controller pipeline: packets picked by the arbiter spend
    /// `ctrl_latency_req` here before reaching the serializer. Charging
    /// the pipeline *before* the wire matters: link tokens are a
    /// wire-level protocol, so the token loop must not include the
    /// controller pipeline.
    staged: Vec<std::collections::VecDeque<(Time, RequestPacket)>>,
    /// Earliest time each link's pipeline may admit its next packet (the
    /// pipeline advances one packet per FPGA cycle).
    stage_admit_at: Vec<Time>,
    link_tx: Vec<LinkTx<RequestPacket>>,
    rx_busy: Vec<Time>,
    /// Cached [`Port::wake_hint`] per port, refreshed at every port
    /// mutation (issue attempt, response delivery, activation flip). Lets
    /// [`HostModel::next_wake`] — queried after every message — skip
    /// re-deriving each port's tag/state condition.
    port_hints: Vec<Option<Time>>,
    /// Reused event buffer (returned as a view by `tick`/`pump_links`/
    /// `on_response_arrival`/`on_request_tokens`).
    events: HostEvents,
    /// Reused delivery scratch for link serializer service.
    delivery_scratch: Deliveries<RequestPacket>,
    probe: Probe,
}

impl HostModel {
    /// Builds a host over the given ports.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `ports` is empty.
    pub fn new(cfg: HostConfig, ports: Vec<Port>) -> HostModel {
        cfg.validate().expect("valid host config");
        assert!(!ports.is_empty(), "host needs at least one port");
        let fifos = ports
            .iter()
            .map(|_| BoundedQueue::new(cfg.port_fifo_packets))
            .collect::<Vec<_>>();
        let link_tx = (0..cfg.link_count)
            .map(|_| LinkTx::new(&cfg.link))
            .collect::<Vec<_>>();
        let staged = (0..cfg.link_count)
            .map(|_| std::collections::VecDeque::new())
            .collect();
        let stage_admit_at = vec![Time::ZERO; usize::from(cfg.link_count)];
        let arb = RoundRobinArbiter::new(ports.len());
        let rx_busy = vec![Time::ZERO; ports.len()];
        let port_hints = ports.iter().map(Port::wake_hint).collect();
        HostModel {
            cfg,
            ports,
            fifos,
            arb,
            staged,
            stage_admit_at,
            link_tx,
            rx_busy,
            port_hints,
            events: HostEvents::new(),
            delivery_scratch: Deliveries::new(),
            probe: Probe::off(),
        }
    }

    /// Attaches a telemetry probe to the host and everything it owns:
    /// the ports (issue tracing, completion sketches) and the request
    /// link serializers (link-flit events, stamped cube 0 — the cube the
    /// host's links physically attach to). Detached by default.
    pub fn attach_probe(&mut self, probe: &Probe) {
        for p in &mut self.ports {
            p.set_probe(probe.clone());
        }
        for (l, tx) in self.link_tx.iter_mut().enumerate() {
            tx.set_probe(probe.clone(), 0, l as u8, LinkDir::Request);
        }
        self.probe = probe.clone();
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// One FPGA cycle: every port may issue one request into its FIFO,
    /// the arbiter moves FIFO heads onto the least-loaded links, and the
    /// links serialize what tokens allow.
    ///
    /// Returns a view of the model's reused event buffer, valid until the
    /// next advance call — the relay path allocates nothing per cycle.
    pub fn tick(&mut self, now: Time) -> &HostEvents {
        for i in 0..self.ports.len() {
            if !self.fifos[i].is_full() {
                if let Some(pkt) = self.ports[i].try_issue(now) {
                    self.fifos[i].push(pkt).expect("checked not full");
                }
                // Issue attempts advance the source (and may consume the
                // last tag), so the cached hint is refreshed here — full
                // FIFOs skip the attempt and leave the hint untouched.
                self.port_hints[i] = self.ports[i].wake_hint();
            }
        }
        self.pump_links(now)
    }

    /// Moves FIFO heads through the controller pipeline to the links and
    /// serializes; called on ticks and on token returns. Returns a view
    /// of the reused event buffer (see [`HostModel::tick`]).
    pub fn pump_links(&mut self, now: Time) -> &HostEvents {
        self.events.clear();
        // Packets whose pipeline latency elapsed reach their serializer —
        // if its FIFO has room; a full serializer stalls the pipeline
        // (backpressure toward the ports).
        for (l, staged) in self.staged.iter_mut().enumerate() {
            while let Some(&(ready, pkt)) = staged.front() {
                if ready > now
                    || self.link_tx[l].backlog_flits(now) + pkt.flits() > self.cfg.link_fifo_flits
                {
                    break;
                }
                staged.pop_front();
                self.link_tx[l].enqueue(pkt, pkt.flits());
            }
        }
        // Arbitrate FIFO heads onto links until nothing moves. Each
        // link's pipeline admits one packet per FPGA cycle, and admission
        // also requires serializer room (wire backlog below the link FIFO
        // budget; pipeline occupancy is latency, not buffering).
        loop {
            let candidate = self
                .link_tx
                .iter()
                .enumerate()
                .filter(|&(l, _)| self.stage_admit_at[l] <= now)
                .map(|(l, tx)| {
                    (
                        l,
                        self.cfg
                            .link_fifo_flits
                            .saturating_sub(tx.backlog_flits(now)),
                    )
                })
                .max_by_key(|&(l, room)| (room, std::cmp::Reverse(l)));
            let Some((link, room)) = candidate else { break };
            let fifos = &self.fifos;
            let granted = self
                .arb
                .grant(|p| fifos[p].peek().is_some_and(|pkt| pkt.flits() <= room));
            let Some(p) = granted else { break };
            let pkt = self.fifos[p].pop().expect("granted head exists");
            self.stage_admit_at[link] = now + self.cfg.fpga_period;
            self.probe
                .trace_mark(u16::from(pkt.port.0), pkt.tag.0, Stage::HostLink, now);
            self.staged[link].push_back((now + self.cfg.ctrl_latency_req, pkt));
        }
        // Serialize onto the wire.
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        for l in 0..self.link_tx.len() {
            self.link_tx[l].service_into(now, &mut deliveries);
            for d in deliveries.drain() {
                self.events.push(HostEvent::RequestArrival {
                    link: LinkId(l as u8),
                    pkt: d.payload,
                    at: d.at,
                });
            }
        }
        self.delivery_scratch = deliveries;
        &self.events
    }

    /// A response packet finished arriving on `link`: route it to its
    /// port's RX serializer. Returns a view of the reused event buffer
    /// (see [`HostModel::tick`]).
    pub fn on_response_arrival(
        &mut self,
        now: Time,
        link: LinkId,
        pkt: ResponsePacket,
    ) -> &HostEvents {
        let port = pkt.port;
        let slot = port.index();
        assert!(slot < self.ports.len(), "response for unknown {port}");
        let flits = pkt.flits();
        let drain_flits = flits + self.ports[slot].rx_extra_flits();
        let start = (now + self.cfg.ctrl_latency_resp).max(self.rx_busy[slot]);
        let done = start + self.cfg.port_rx_flit_time * drain_flits;
        self.rx_busy[slot] = done;
        self.events.clear();
        self.events.push(HostEvent::ResponseDrained {
            port,
            pkt,
            at: done,
        });
        // Tokens return as soon as the packet leaves the link RX ring for
        // the controller's (pipelined) response path; holding them through
        // the pipeline would throttle the link far below its measured
        // throughput.
        self.events.push(HostEvent::ResponseTokens {
            link,
            flits,
            at: now,
        });
        &self.events
    }

    /// Delivers a drained response to its port (call at the
    /// [`HostEvent::ResponseDrained`] timestamp).
    pub fn deliver_response(&mut self, now: Time, pkt: &ResponsePacket) {
        let slot = pkt.port.index();
        self.ports[slot].on_response(now, pkt);
        self.port_hints[slot] = self.ports[slot].wake_hint();
    }

    /// Returns request tokens to `link`'s transmitter (the cube drained
    /// its input buffer) and pumps the links. Returns a view of the
    /// reused event buffer (see [`HostModel::tick`]).
    pub fn on_request_tokens(&mut self, now: Time, link: LinkId, flits: u32) -> &HostEvents {
        self.link_tx[link.index()].return_tokens(flits);
        self.pump_links(now)
    }

    /// The earliest instant at which `link`'s serializer could accept a
    /// packet of `flits` flits *without any token return*: the wire drains
    /// one flit per effective flit time, so the admission backlog bound is
    /// met once enough wire time has passed. `None` while the unserialized
    /// queue alone already exceeds the budget — only a token return
    /// (a message that re-pumps the links) can free that.
    fn wire_room_at(&self, link: usize, flits: u32, now: Time) -> Option<Time> {
        let tx = &self.link_tx[link];
        let queued = tx.queue_flits();
        if queued + flits > self.cfg.link_fifo_flits {
            return None;
        }
        // backlog(t) = queued + ceil(wire_ps(t) / flit_ps) must not exceed
        // the budget: wire time still outstanding at t may cover at most
        // `allowed` flits.
        let allowed = u64::from(self.cfg.link_fifo_flits - queued - flits);
        let flit_ps = self.cfg.link.effective_flit_time().as_ps().max(1);
        let at = Time::from_ps(tx.busy_until().as_ps().saturating_sub(allowed * flit_ps));
        Some(at.max(now))
    }

    /// The next instant at which ticking the host could make progress, or
    /// `None` while the host is idle (every port blocked on tags or done,
    /// all pipes drained or token-starved) — the host-side half of the
    /// clocked-component protocol that lets the simulation skip idle FPGA
    /// cycles entirely.
    ///
    /// Ticks live on the FPGA clock grid (multiples of `fpga_period` from
    /// [`Time::ZERO`]); the reported instant is the first grid point not
    /// before `now` at which something can actually move:
    ///
    /// - a port whose source could issue ([`Port::next_wake`]) needs the
    ///   first grid point at or after that instant — provided its FIFO has
    ///   room (a full FIFO drains by admission, covered below);
    /// - a FIFO head needs the earliest grid point at which *some* link
    ///   can admit it: past that link's one-admission-per-cycle gate and
    ///   with serializer room, where room is derived from the wire-drain
    ///   schedule ([`HostModel::wire_room_at`]) instead of retrying every
    ///   cycle;
    /// - a staged packet needs the first grid point at or after both its
    ///   pipeline-exit time and its serializer's wire-drain room;
    /// - packets whose serializer queue alone exceeds the room budget, and
    ///   packets queued in a link serializer, need no wake at all: they
    ///   are, by construction, token-starved, and the token return message
    ///   itself pumps the links ([`HostModel::on_request_tokens`]).
    ///
    /// Progress driven by inbound traffic (responses arriving, tags
    /// freeing on delivery, completions unblocking closed-loop sources) is
    /// message-driven and deliberately *not* reported here; the
    /// surrounding component re-queries after every such message.
    pub fn next_wake(&self, now: Time) -> Option<Time> {
        let period = self.cfg.fpga_period.as_ps();
        let grid_ceil = |t: Time| Time::from_ps(t.as_ps().div_ceil(period) * period);
        let mut wake: Option<Time> = None;
        let mut propose = |t: Time| {
            wake = Some(wake.map_or(t, |w| w.min(t)));
        };
        for (i, (hint, fifo)) in self.port_hints.iter().zip(&self.fifos).enumerate() {
            debug_assert_eq!(*hint, self.ports[i].wake_hint(), "stale port wake hint");
            if fifo.is_full() {
                continue;
            }
            if let Some(t) = hint {
                propose(grid_ceil((*t).max(now)));
            }
        }
        for fifo in &self.fifos {
            let Some(pkt) = fifo.peek() else { continue };
            // Earliest admission over all links: the per-cycle admission
            // gate and the wire-drain room bound both satisfied.
            let at = (0..self.link_tx.len())
                .filter_map(|l| {
                    self.wire_room_at(l, pkt.flits(), now)
                        .map(|room| room.max(self.stage_admit_at[l]))
                })
                .min();
            if let Some(t) = at {
                propose(grid_ceil(t.max(now)));
            }
        }
        for (l, staged) in self.staged.iter().enumerate() {
            if let Some(&(ready, pkt)) = staged.front() {
                if let Some(room) = self.wire_room_at(l, pkt.flits(), now) {
                    propose(grid_ceil(room.max(ready).max(now)));
                }
            }
        }
        wake
    }

    /// `true` when every port is done and all plumbing is empty.
    pub fn all_done(&self) -> bool {
        self.ports.iter().all(|p| p.is_done())
            && self.fifos.iter().all(|f| f.is_empty())
            && self.staged.iter().all(|s| s.is_empty())
            && self.link_tx.iter().all(|tx| tx.queue_len() == 0)
    }

    /// Activates or deactivates every GUPS port.
    pub fn set_all_active(&mut self, active: bool) {
        for (p, hint) in self.ports.iter_mut().zip(&mut self.port_hints) {
            p.set_active(active);
            *hint = p.wake_hint();
        }
    }

    /// Clears every port's monitors (end of warmup).
    pub fn reset_stats(&mut self) {
        for p in &mut self.ports {
            p.reset_stats();
        }
    }

    /// Freezes every port's monitors (end of the measurement window).
    pub fn freeze_stats(&mut self) {
        for p in &mut self.ports {
            p.freeze_stats();
        }
    }

    /// The ports, in id order.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// One port by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Total outstanding requests across ports.
    pub fn outstanding(&self) -> u32 {
        self.ports.iter().map(|p| u32::from(p.outstanding())).sum()
    }
}

impl Clocked for HostModel {
    fn next_wake(&self, now: Time) -> Option<Time> {
        HostModel::next_wake(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mapping::{AccessPattern, AddressMap};
    use hmc_packet::PayloadSize;
    use hmc_workloads::{GupsOp, GupsSource};

    fn host_with_gups_ports(n: usize, tags: u16) -> HostModel {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
        let ports = (0..n)
            .map(|i| {
                Port::new(
                    PortId(i as u8),
                    Box::new(GupsSource::new(
                        filter,
                        GupsOp::Read(PayloadSize::B32),
                        i as u64,
                    )),
                    tags,
                )
            })
            .collect();
        HostModel::new(HostConfig::ac510_default(), ports)
    }

    /// Ticks the host `cycles` times from t=0, returning every event.
    /// Requests appear only after the controller pipeline latency
    /// (~45 FPGA cycles), so tests drive well past it.
    fn drive(h: &mut HostModel, cycles: u64) -> Vec<HostEvent> {
        let period = h.config().fpga_period;
        let mut events = Vec::new();
        for c in 0..cycles {
            events.extend(h.tick(Time::ZERO + period * c).iter().copied());
        }
        events
    }

    fn arrivals(events: &[HostEvent]) -> Vec<RequestPacket> {
        events
            .iter()
            .filter_map(|e| match e {
                HostEvent::RequestArrival { pkt, .. } => Some(*pkt),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn pipeline_delays_first_arrivals() {
        let mut h = host_with_gups_ports(3, 64);
        h.set_all_active(true);
        // Nothing can reach the wire before the controller pipeline
        // latency elapses.
        let early = drive(&mut h, 40);
        assert!(
            arrivals(&early).is_empty(),
            "arrival before the pipeline drained"
        );
        let later = drive(&mut h, 60);
        assert!(!arrivals(&later).is_empty(), "pipeline never drained");
    }

    #[test]
    fn admission_is_one_packet_per_link_per_cycle() {
        let mut h = host_with_gups_ports(9, 64);
        h.set_all_active(true);
        let cycles = 200u64;
        let events = drive(&mut h, cycles);
        let n = arrivals(&events).len() as u64;
        assert!(n > 0);
        assert!(
            n <= cycles * 2,
            "more than one admission per link per cycle"
        );
    }

    #[test]
    fn requests_balance_across_links() {
        let mut h = host_with_gups_ports(8, 64);
        h.set_all_active(true);
        let mut per_link = [0u32; 2];
        for e in drive(&mut h, 120) {
            if let HostEvent::RequestArrival { link, .. } = e {
                per_link[link.index()] += 1;
            }
        }
        assert!(
            per_link[0] > 0 && per_link[1] > 0,
            "both links used: {per_link:?}"
        );
    }

    #[test]
    fn response_drain_serializes_per_port() {
        let mut h = host_with_gups_ports(1, 64);
        h.set_all_active(true);
        let issued = arrivals(&drive(&mut h, 80));
        assert!(!issued.is_empty());
        let resp = ResponsePacket::for_request(&issued[0]);
        let now = Time::from_us(5);
        let events: Vec<HostEvent> = h
            .on_response_arrival(now, LinkId(0), resp)
            .iter()
            .copied()
            .collect();
        let drain_at = events
            .iter()
            .find_map(|e| match e {
                HostEvent::ResponseDrained { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        // 32 B read response = 3 flits at one flit per FPGA cycle, after
        // the controller pipeline (GUPS ports pay no extra address flit).
        let cfg = HostConfig::ac510_default();
        let expected = now + cfg.ctrl_latency_resp + cfg.port_rx_flit_time * 3u32;
        assert_eq!(drain_at, expected);
        // Tokens return at arrival (the RX ring hands off to the pipelined
        // response path immediately).
        assert!(events
            .iter()
            .any(|e| matches!(e, HostEvent::ResponseTokens { flits: 3, at, .. } if *at == now)));
    }

    #[test]
    fn tag_exhaustion_stops_issue_until_delivery() {
        let mut h = host_with_gups_ports(1, 2);
        h.set_all_active(true);
        let first = arrivals(&drive(&mut h, 120));
        assert_eq!(first.len(), 2, "two tags bound outstanding requests");
        // Deliver one response; the port can issue again.
        let resp = ResponsePacket::for_request(&first[0]);
        h.deliver_response(Time::from_us(5), &resp);
        let period = h.config().fpga_period;
        let mut more = Vec::new();
        for c in 0..120u64 {
            more.extend(h.tick(Time::from_us(5) + period * c).iter().copied());
        }
        assert_eq!(
            arrivals(&more).len(),
            1,
            "freed tag allows exactly one more"
        );
    }

    #[test]
    fn next_wake_snaps_to_the_fpga_grid() {
        let mut h = host_with_gups_ports(1, 4);
        let period = h.config().fpga_period;
        assert_eq!(h.next_wake(Time::ZERO), None, "inactive host sleeps");
        h.set_all_active(true);
        assert_eq!(
            h.next_wake(Time::ZERO),
            Some(Time::ZERO),
            "an on-grid instant with work is itself the wake"
        );
        assert_eq!(
            h.next_wake(Time::from_ps(1)),
            Some(Time::ZERO + period),
            "off-grid queries snap forward to the next FPGA cycle"
        );
    }

    #[test]
    fn staged_pipeline_wake_skips_the_idle_cycles() {
        let mut h = host_with_gups_ports(1, 1);
        h.set_all_active(true);
        let events: Vec<HostEvent> = h.tick(Time::ZERO).iter().copied().collect();
        assert!(arrivals(&events).is_empty(), "pipeline holds the request");
        // One tag, now in flight: the only pending work is the staged
        // packet's pipeline exit, ~45 cycles out. The host must not ask
        // to be woken before it.
        let wake = h.next_wake(Time::ZERO).expect("staged packet needs a wake");
        let period = h.config().fpga_period;
        let ctrl = h.config().ctrl_latency_req;
        assert_eq!(wake.as_ps() % period.as_ps(), 0, "wakes live on the grid");
        assert!(
            wake >= Time::ZERO + ctrl,
            "no wake before the pipeline exit"
        );
        assert!(
            wake > Time::ZERO + period,
            "idle pipeline cycles are skipped"
        );
    }

    #[test]
    fn tag_starved_host_sleeps_until_delivery() {
        let mut h = host_with_gups_ports(1, 1);
        h.set_all_active(true);
        let issued = arrivals(&drive(&mut h, 120));
        assert_eq!(issued.len(), 1, "one tag bounds one in-flight request");
        let now = Time::from_us(5);
        assert_eq!(
            h.next_wake(now),
            None,
            "tag-starved host with drained pipes reports no wake at all"
        );
        h.deliver_response(now, &ResponsePacket::for_request(&issued[0]));
        assert!(
            h.next_wake(now).is_some(),
            "a freed tag makes the next cycle interesting again"
        );
    }

    #[test]
    fn next_wake_reflects_activation() {
        let mut h = host_with_gups_ports(1, 4);
        assert_eq!(h.next_wake(Time::ZERO), None, "inactive GUPS port is idle");
        h.set_all_active(true);
        assert!(h.next_wake(Time::ZERO).is_some());
        h.set_all_active(false);
        assert_eq!(h.next_wake(Time::ZERO), None);
        assert!(h.all_done(), "inactive drained host is done");
    }

    #[test]
    fn saturated_serializer_sleeps_until_the_wire_drains() {
        // Fill one link's serializer far past the admission budget, then
        // ask for the next wake: the host must not retry every cycle —
        // the wake is derived from the wire-drain schedule (or absent
        // entirely while the unserialized queue alone exceeds the room
        // budget, which only a token return can fix).
        let mut h = host_with_gups_ports(9, 64);
        h.set_all_active(true);
        let period = h.config().fpga_period;
        let mut now = Time::ZERO;
        // Drive until every port is tag-starved and the pipes are full.
        for _ in 0..400u64 {
            h.tick(now);
            now += period;
        }
        let wake = h.next_wake(now);
        if let Some(t) = wake {
            assert!(
                t > now + period,
                "a saturated host must sleep past the next cycle, got {t} at {now}"
            );
        }
        // Token returns still reach a sleeping host through
        // `on_request_tokens`, so `None` is equally acceptable here.
    }

    #[test]
    fn stats_controls_propagate() {
        let mut h = host_with_gups_ports(2, 4);
        h.set_all_active(true);
        let reqs = arrivals(&drive(&mut h, 80));
        assert!(reqs.len() >= 2);
        h.deliver_response(Time::from_us(1), &ResponsePacket::for_request(&reqs[0]));
        assert_eq!(h.port(reqs[0].port).latency().count(), 1);
        h.reset_stats();
        assert_eq!(h.port(reqs[0].port).latency().count(), 0);
        h.freeze_stats();
        h.deliver_response(Time::from_us(2), &ResponsePacket::for_request(&reqs[1]));
        assert_eq!(h.port(reqs[1].port).latency().count(), 0);
    }
}
