//! # hmc-host
//!
//! The host half of the measurement stack (the FPGA of Figure 5): traffic
//! ports pulling from [`hmc_workloads::TrafficSource`]s, per-port tag
//! pools and monitoring logic, the controller's per-port FIFOs and link
//! arbitration, and the per-port response drain.
//!
//! Everything the paper's firmware does to shape the measurements is
//! modelled here:
//!
//! - nine ports, each issuing at most one request per 187.5 MHz cycle;
//! - per-port tag pools that bound outstanding requests (the small-request
//!   bandwidth cap of Section IV-A);
//! - pull-based traffic sources — GUPS generators behind mask/anti-mask
//!   filters, trace replay, pointer chasing, NOM-style offload streams —
//!   with per-transaction completion feedback for closed-loop workloads;
//! - monitoring logic recording counts and total/min/max latency.
//!
//! ```
//! use hmc_des::Time;
//! use hmc_host::{GupsOp, HostConfig, HostModel, Port};
//! use hmc_mapping::{AccessPattern, AddressMap};
//! use hmc_packet::{PayloadSize, PortId};
//! use hmc_workloads::GupsSource;
//!
//! let map = AddressMap::hmc_gen2_default();
//! let filter = AccessPattern::Vaults { count: 4 }.filter(&map);
//! let port = Port::new(
//!     PortId(0),
//!     Box::new(GupsSource::new(filter, GupsOp::Read(PayloadSize::B64), /* seed */ 1)),
//!     64,
//! );
//! let mut host = HostModel::new(HostConfig::ac510_default(), vec![port]);
//! host.set_all_active(true);
//! // Drive a few dozen FPGA cycles: requests appear on the link after
//! // the controller pipeline latency.
//! let period = host.config().fpga_period;
//! let mut events: Vec<hmc_host::HostEvent> = Vec::new();
//! for cycle in 0..60u64 {
//!     events.extend(host.tick(Time::ZERO + period * cycle).iter().copied());
//! }
//! assert!(!events.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod model;
mod port;

pub use config::HostConfig;
pub use model::{HostEvent, HostEvents, HostModel};
pub use port::{Port, TagPool};
// The GUPS op template lives with the sources now; re-exported for the
// many call sites that name it through this crate.
pub use hmc_workloads::GupsOp;
