//! Traffic-generator ports: GUPS address generators and trace-driven
//! stream ports, with tag pools and monitoring logic (Figure 5).

use hmc_des::Time;
use hmc_mapping::AddressFilter;
use hmc_packet::{PayloadSize, PortId, RequestKind, RequestPacket, ResponsePacket, Tag};
use hmc_stats::{BandwidthMeter, LatencyRecorder};
use hmc_workloads::{Trace, TraceOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A pool of transaction tags bounding a port's outstanding requests.
///
/// "Each port must track outstanding requests, so each port can handle a
/// limited number of outstanding requests at a time" (Section IV-A) — the
/// mechanism that caps small-request bandwidth in Figure 6 and sets the
/// saturation knee of Figure 8.
#[derive(Debug, Clone)]
pub struct TagPool {
    free: Vec<u16>,
    issue_time: Vec<Option<Time>>,
}

impl TagPool {
    /// Creates a pool of `capacity` tags.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u16) -> TagPool {
        assert!(capacity > 0, "tag pool needs at least one tag");
        TagPool {
            free: (0..capacity).rev().collect(),
            issue_time: vec![None; usize::from(capacity)],
        }
    }

    /// Total tags.
    pub fn capacity(&self) -> u16 {
        self.issue_time.len() as u16
    }

    /// Tags currently outstanding.
    pub fn in_flight(&self) -> u16 {
        self.capacity() - self.free.len() as u16
    }

    /// `true` if a tag is available.
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Allocates a tag, recording the issue time.
    pub fn allocate(&mut self, now: Time) -> Option<Tag> {
        let tag = self.free.pop()?;
        self.issue_time[usize::from(tag)] = Some(now);
        Some(Tag(tag))
    }

    /// Releases `tag`, returning the time it was issued.
    ///
    /// # Panics
    ///
    /// Panics if the tag was not outstanding (a duplicate or spurious
    /// response — always a protocol bug).
    pub fn release(&mut self, tag: Tag) -> Time {
        let slot = usize::from(tag.0);
        let issued = self.issue_time[slot]
            .take()
            .unwrap_or_else(|| panic!("release of idle {tag}"));
        self.free.push(tag.0);
        issued
    }
}

/// What a GUPS port generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GupsOp {
    /// Random reads of a fixed size.
    Read(PayloadSize),
    /// Random writes of a fixed size.
    Write(PayloadSize),
    /// Random 16 B read-modify-writes.
    ReadModifyWrite,
    /// A random mix: `write_percent`% writes, the rest reads, all of one
    /// size (the read/write balance experiment of Section IV-F).
    Mix {
        /// Transfer size for both directions.
        size: PayloadSize,
        /// Percentage of writes (0–100).
        write_percent: u8,
    },
}

impl GupsOp {
    fn payload(&self) -> PayloadSize {
        match *self {
            GupsOp::Read(s) | GupsOp::Write(s) => s,
            GupsOp::ReadModifyWrite => PayloadSize::B16,
            GupsOp::Mix { size, .. } => size,
        }
    }
}

/// The traffic source behind a port.
#[derive(Debug, Clone)]
pub enum Traffic {
    /// GUPS firmware: random addresses through a mask/anti-mask filter,
    /// as many requests as flow control allows.
    Gups {
        /// The mask/anti-mask address filter.
        filter: AddressFilter,
        /// Operation template.
        op: GupsOp,
    },
    /// Multi-port stream firmware: replay a finite trace.
    Stream {
        /// The trace to replay.
        trace: Trace,
    },
}

/// One FPGA port: address generation or trace replay, a tag pool, and the
/// monitoring logic that records counts and latency aggregates.
#[derive(Debug, Clone)]
pub struct Port {
    id: PortId,
    traffic: Traffic,
    tags: TagPool,
    /// Request payloads indexed by tag (to account response bytes).
    kind_by_tag: Vec<Option<RequestKind>>,
    rng: SmallRng,
    active: bool,
    next_trace_index: usize,
    issued: u64,
    completed: u64,
    recording: bool,
    latency: LatencyRecorder,
    bytes: BandwidthMeter,
    reads_recorded: u64,
    writes_recorded: u64,
}

impl Port {
    /// Creates a port. GUPS ports start inactive (activate with
    /// [`Port::set_active`]); stream ports are implicitly active until
    /// their trace is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if a GUPS op has a non-power-of-two size (the firmware's
    /// alignment scheme requires it) or `tags` is zero.
    pub fn new(id: PortId, traffic: Traffic, tags: u16, seed: u64) -> Port {
        if let Traffic::Gups { op, .. } = &traffic {
            assert!(
                op.payload().bytes().is_power_of_two(),
                "GUPS sizes must be powers of two for address alignment"
            );
        }
        let capacity = usize::from(tags);
        Port {
            id,
            traffic,
            tags: TagPool::new(tags),
            kind_by_tag: vec![None; capacity],
            rng: SmallRng::seed_from_u64(seed),
            active: false,
            next_trace_index: 0,
            issued: 0,
            completed: 0,
            recording: true,
            latency: LatencyRecorder::new(),
            bytes: BandwidthMeter::new(),
            reads_recorded: 0,
            writes_recorded: 0,
        }
    }

    /// This port's id.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Activates or deactivates a GUPS port. Stream ports ignore this.
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// `true` if the port wants to issue a request right now.
    pub fn wants_to_issue(&self) -> bool {
        if !self.tags.has_free() {
            return false;
        }
        match &self.traffic {
            Traffic::Gups { .. } => self.active,
            Traffic::Stream { trace } => self.next_trace_index < trace.len(),
        }
    }

    /// Builds the port's next request if it has one and a tag is free.
    pub fn try_issue(&mut self, now: Time) -> Option<RequestPacket> {
        if !self.wants_to_issue() {
            return None;
        }
        let op = match &self.traffic {
            Traffic::Gups { filter, op } => {
                let size = op.payload();
                let raw = self.rng.gen::<u64>() & !(u64::from(size.bytes()) - 1);
                let addr = filter.apply(raw);
                let kind = match *op {
                    GupsOp::Read(s) => RequestKind::Read { size: s },
                    GupsOp::Write(s) => RequestKind::Write { size: s },
                    GupsOp::ReadModifyWrite => RequestKind::ReadModifyWrite,
                    GupsOp::Mix {
                        size,
                        write_percent,
                    } => {
                        if self.rng.gen_range(0u8..100) < write_percent {
                            RequestKind::Write { size }
                        } else {
                            RequestKind::Read { size }
                        }
                    }
                };
                TraceOp { addr, kind }
            }
            Traffic::Stream { trace } => {
                let op = trace.ops()[self.next_trace_index];
                self.next_trace_index += 1;
                op
            }
        };
        let tag = self
            .tags
            .allocate(now)
            .expect("wants_to_issue implies a free tag");
        self.kind_by_tag[usize::from(tag.0)] = Some(op.kind);
        self.issued += 1;
        Some(RequestPacket {
            port: self.id,
            tag,
            addr: op.addr,
            kind: op.kind,
        })
    }

    /// Completes the transaction `pkt` answers: frees its tag and records
    /// latency and round-trip bytes.
    ///
    /// # Panics
    ///
    /// Panics if the response's tag is not outstanding.
    pub fn on_response(&mut self, now: Time, pkt: &ResponsePacket) {
        let issued_at = self.tags.release(pkt.tag);
        let kind = self.kind_by_tag[usize::from(pkt.tag.0)]
            .take()
            .expect("tag carries its request kind");
        self.completed += 1;
        if self.recording {
            self.latency.record_ps((now - issued_at).as_ps());
            self.bytes.add_bytes(kind.round_trip_bytes());
            if kind.is_read() {
                self.reads_recorded += 1;
            } else {
                self.writes_recorded += 1;
            }
        }
    }

    /// `true` once a stream port has issued its whole trace and received
    /// every response. GUPS ports are done when deactivated and drained.
    pub fn is_done(&self) -> bool {
        let drained = self.tags.in_flight() == 0;
        match &self.traffic {
            Traffic::Gups { .. } => !self.active && drained,
            Traffic::Stream { trace } => self.next_trace_index >= trace.len() && drained,
        }
    }

    /// Requests currently outstanding.
    pub fn outstanding(&self) -> u16 {
        self.tags.in_flight()
    }

    /// Extra flits this port's RX path moves per response. Stream ports
    /// ship each response's address back to the host alongside the data
    /// (Figure 5b's "Rd. Addr. FIFO"), costing one flit; GUPS ports only
    /// update local counters.
    pub fn rx_extra_flits(&self) -> u32 {
        match self.traffic {
            Traffic::Gups { .. } => 0,
            Traffic::Stream { .. } => 1,
        }
    }

    /// Total requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total responses received.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The monitoring-logic latency aggregate.
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// The monitoring-logic byte counter (paper bandwidth formula units).
    pub fn bytes(&self) -> &BandwidthMeter {
        &self.bytes
    }

    /// Read transactions recorded in the measurement window.
    pub fn reads_recorded(&self) -> u64 {
        self.reads_recorded
    }

    /// Write/atomic transactions recorded in the measurement window.
    pub fn writes_recorded(&self) -> u64 {
        self.writes_recorded
    }

    /// Clears the monitors (end of warmup).
    pub fn reset_stats(&mut self) {
        self.latency.reset();
        self.bytes.reset();
        self.reads_recorded = 0;
        self.writes_recorded = 0;
    }

    /// Stops recording (end of the measurement window); responses still
    /// drain and free tags but no longer affect the monitors.
    pub fn freeze_stats(&mut self) {
        self.recording = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mapping::{AccessPattern, AddressMap};
    use hmc_packet::Address;

    fn gups_port(tags: u16) -> Port {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
        Port::new(
            PortId(0),
            Traffic::Gups {
                filter,
                op: GupsOp::Read(PayloadSize::B32),
            },
            tags,
            7,
        )
    }

    #[test]
    fn tag_pool_bounds_outstanding() {
        let mut p = gups_port(2);
        p.set_active(true);
        let a = p.try_issue(Time::ZERO).unwrap();
        let b = p.try_issue(Time::ZERO).unwrap();
        assert_ne!(a.tag, b.tag);
        assert!(p.try_issue(Time::ZERO).is_none(), "tags exhausted");
        assert_eq!(p.outstanding(), 2);
        p.on_response(Time::from_ns(100), &ResponsePacket::for_request(&a));
        assert!(p.try_issue(Time::ZERO).is_some());
    }

    #[test]
    fn latency_and_bytes_recorded() {
        let mut p = gups_port(4);
        p.set_active(true);
        let req = p.try_issue(Time::from_ns(10)).unwrap();
        p.on_response(Time::from_ns(710), &ResponsePacket::for_request(&req));
        assert_eq!(p.latency().count(), 1);
        assert_eq!(p.latency().mean_ns(), 700.0);
        // 32 B read: 16 + 48 = 64 B round trip.
        assert_eq!(p.bytes().bytes(), 64);
    }

    #[test]
    fn inactive_gups_port_stays_silent() {
        let mut p = gups_port(4);
        assert!(p.try_issue(Time::ZERO).is_none());
        p.set_active(true);
        assert!(p.try_issue(Time::ZERO).is_some());
        p.set_active(false);
        assert!(p.try_issue(Time::ZERO).is_none());
        assert!(!p.is_done(), "still draining one response");
    }

    #[test]
    fn stream_port_replays_trace_in_order() {
        let trace = Trace::from_ops(vec![
            TraceOp::read(Address::new(0), PayloadSize::B64),
            TraceOp::read(Address::new(128), PayloadSize::B64),
        ]);
        let mut p = Port::new(PortId(3), Traffic::Stream { trace }, 8, 0);
        let a = p.try_issue(Time::ZERO).unwrap();
        let b = p.try_issue(Time::ZERO).unwrap();
        assert_eq!(a.addr.raw(), 0);
        assert_eq!(b.addr.raw(), 128);
        assert!(p.try_issue(Time::ZERO).is_none(), "trace exhausted");
        assert!(!p.is_done());
        p.on_response(Time::from_ns(1), &ResponsePacket::for_request(&a));
        p.on_response(Time::from_ns(2), &ResponsePacket::for_request(&b));
        assert!(p.is_done());
    }

    #[test]
    fn freeze_stops_recording_but_not_draining() {
        let mut p = gups_port(4);
        p.set_active(true);
        let req = p.try_issue(Time::ZERO).unwrap();
        p.freeze_stats();
        p.on_response(Time::from_ns(500), &ResponsePacket::for_request(&req));
        assert_eq!(p.latency().count(), 0);
        assert_eq!(p.completed(), 1);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn gups_addresses_respect_filter_and_alignment() {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 2 }.filter(&map);
        let mut p = Port::new(
            PortId(1),
            Traffic::Gups {
                filter,
                op: GupsOp::Read(PayloadSize::B64),
            },
            64,
            3,
        );
        p.set_active(true);
        for _ in 0..64 {
            let req = p.try_issue(Time::ZERO).unwrap();
            assert_eq!(req.addr.raw() % 64, 0, "aligned");
            assert!(map.decode(req.addr).vault.0 < 2, "filtered");
        }
    }

    #[test]
    fn mix_generates_both_kinds() {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
        let mut p = Port::new(
            PortId(0),
            Traffic::Gups {
                filter,
                op: GupsOp::Mix {
                    size: PayloadSize::B64,
                    write_percent: 50,
                },
            },
            200,
            11,
        );
        p.set_active(true);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            match p.try_issue(Time::ZERO).unwrap().kind {
                RequestKind::Read { .. } => reads += 1,
                RequestKind::Write { .. } => writes += 1,
                RequestKind::ReadModifyWrite => {}
            }
        }
        assert!(
            reads > 50 && writes > 50,
            "mix is roughly balanced: {reads}/{writes}"
        );
    }

    #[test]
    #[should_panic(expected = "release of idle")]
    fn duplicate_response_panics() {
        let mut p = gups_port(2);
        p.set_active(true);
        let req = p.try_issue(Time::ZERO).unwrap();
        let resp = ResponsePacket::for_request(&req);
        p.on_response(Time::ZERO, &resp);
        p.on_response(Time::ZERO, &resp);
    }
}
