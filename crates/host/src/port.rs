//! Traffic ports: pull-based traffic sources behind tag pools and the
//! monitoring logic of Figure 5.

use core::fmt;

use hmc_des::Time;
use hmc_mapping::CubeTargeting;
use hmc_packet::{CubeId, PortId, RequestPacket, ResponsePacket, Tag};
use hmc_stats::{BandwidthMeter, LatencyRecorder};
use hmc_telemetry::Probe;
use hmc_workloads::{Completion, Feedback, SourceStep, TraceOp, TrafficSource};

/// A pool of transaction tags bounding a port's outstanding requests.
///
/// "Each port must track outstanding requests, so each port can handle a
/// limited number of outstanding requests at a time" (Section IV-A) — the
/// mechanism that caps small-request bandwidth in Figure 6 and sets the
/// saturation knee of Figure 8.
#[derive(Debug, Clone)]
pub struct TagPool {
    free: Vec<u16>,
    issue_time: Vec<Option<Time>>,
}

impl TagPool {
    /// Creates a pool of `capacity` tags.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u16) -> TagPool {
        assert!(capacity > 0, "tag pool needs at least one tag");
        TagPool {
            free: (0..capacity).rev().collect(),
            issue_time: vec![None; usize::from(capacity)],
        }
    }

    /// Total tags.
    pub fn capacity(&self) -> u16 {
        self.issue_time.len() as u16
    }

    /// Tags currently outstanding.
    pub fn in_flight(&self) -> u16 {
        self.capacity() - self.free.len() as u16
    }

    /// `true` if a tag is available.
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Allocates a tag, recording the issue time.
    pub fn allocate(&mut self, now: Time) -> Option<Tag> {
        let tag = self.free.pop()?;
        self.issue_time[usize::from(tag)] = Some(now);
        Some(Tag(tag))
    }

    /// Releases `tag`, returning the time it was issued.
    ///
    /// # Panics
    ///
    /// Panics if the tag was not outstanding (a duplicate or spurious
    /// response — always a protocol bug).
    pub fn release(&mut self, tag: Tag) -> Time {
        let slot = usize::from(tag.0);
        let issued = self.issue_time[slot]
            .take()
            .unwrap_or_else(|| panic!("release of idle {tag}"));
        self.free.push(tag.0);
        issued
    }
}

/// The port's cached view of its source's last non-`Op` answer, so the
/// side-effect-free queries ([`Port::next_wake`], [`Port::is_done`]) never
/// have to poll the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceState {
    /// The source must be polled at the next opportunity.
    Poll,
    /// The source asked to wait until this instant.
    Waiting(Time),
    /// The source is waiting for a completion.
    Blocked,
    /// The source is exhausted.
    Done,
}

/// One FPGA port: a pull-based [`TrafficSource`], a tag pool, and the
/// monitoring logic that records counts and latency aggregates.
///
/// The port polls its source only when it could actually issue (free tag;
/// active, for [duration-gated](TrafficSource::duration_gated) sources)
/// and relays each completed transaction back through the source's
/// [`Feedback`] exactly once — the closed loop that lets sources derive
/// their next request from a prior response.
pub struct Port {
    id: PortId,
    source: Box<dyn TrafficSource>,
    state: SourceState,
    /// Completions not yet presented to the source.
    fresh: Vec<Completion>,
    gated: bool,
    rx_extra: u32,
    label: &'static str,
    tags: TagPool,
    /// How this port derives the CUB field for each request: a static
    /// cube (the pre-fabric behavior) or a checked split of the
    /// workload's global address.
    targeting: CubeTargeting,
    /// Issued op, its source-local issue index, and the cube the request
    /// was stamped for, by tag (to account response bytes, build
    /// completions and attribute completions per cube).
    op_by_tag: Vec<Option<(TraceOp, u64, CubeId)>>,
    active: bool,
    issued: u64,
    completed: u64,
    recording: bool,
    latency: LatencyRecorder,
    bytes: BandwidthMeter,
    reads_recorded: u64,
    writes_recorded: u64,
    /// Completions recorded in the measurement window, per destination
    /// cube — the per-cube attribution of a split (addressed) stream.
    /// Grown lazily to the highest completed cube, so ports of small
    /// fabrics stay small even though CUB addresses 64 cubes.
    completed_by_cube: Vec<u64>,
    probe: Probe,
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Port")
            .field("id", &self.id)
            .field("source", &self.label)
            .field("state", &self.state)
            .field("issued", &self.issued)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

impl Port {
    /// Creates a port over a traffic source. Duration-gated sources (GUPS)
    /// start inactive (activate with [`Port::set_active`]); all other
    /// sources run to exhaustion regardless of activation.
    ///
    /// # Panics
    ///
    /// Panics if `tags` is zero.
    pub fn new(id: PortId, source: Box<dyn TrafficSource>, tags: u16) -> Port {
        let capacity = usize::from(tags);
        let gated = source.duration_gated();
        let rx_extra = source.rx_extra_flits();
        let label = source.label();
        Port {
            id,
            source,
            state: SourceState::Poll,
            fresh: Vec::new(),
            gated,
            rx_extra,
            label,
            tags: TagPool::new(tags),
            targeting: CubeTargeting::default(),
            op_by_tag: vec![None; capacity],
            active: false,
            issued: 0,
            completed: 0,
            recording: true,
            latency: LatencyRecorder::new(),
            bytes: BandwidthMeter::new(),
            reads_recorded: 0,
            writes_recorded: 0,
            completed_by_cube: Vec::new(),
            probe: Probe::off(),
        }
    }

    /// Sets how the port derives each request's CUB field (default:
    /// every request targets [`CubeId::HOST`] — the single-cube system).
    pub fn with_targeting(mut self, targeting: CubeTargeting) -> Port {
        self.targeting = targeting;
        self
    }

    /// Attaches a telemetry probe (default [`Probe::off`]): issues feed
    /// the sampled packet tracer, completions feed the per-source and
    /// per-cube latency sketches.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The port's cube-targeting policy.
    pub fn targeting(&self) -> CubeTargeting {
        self.targeting
    }

    /// This port's id.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// The source's reporting label.
    pub fn source_label(&self) -> &'static str {
        self.label
    }

    /// Activates or deactivates a duration-gated (GUPS) port. Ports over
    /// run-to-exhaustion sources ignore this.
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// The earliest instant at which polling this port could issue a
    /// request, or `None` while only an external event (a response freeing
    /// a tag, a completion unblocking the source, activation) can help.
    ///
    /// `Some(now)` for a source that must be polled is deliberately
    /// conservative: the poll may still answer `Blocked`/`Done`, costing
    /// one no-op tick, never a missed issue.
    pub fn next_wake(&self, now: Time) -> Option<Time> {
        self.wake_hint().map(|t| t.max(now))
    }

    /// The time-independent part of [`Port::next_wake`]: `Time::ZERO`
    /// stands for "pollable right now". It changes only when the port
    /// mutates (an issue, a response, activation), never with the mere
    /// passage of time — so the host model caches it per port and
    /// refreshes it at those mutation points instead of re-deriving every
    /// port's state on every wake query.
    pub fn wake_hint(&self) -> Option<Time> {
        if !self.tags.has_free() {
            return None;
        }
        if self.gated && !self.active {
            return None;
        }
        match self.state {
            SourceState::Poll => Some(Time::ZERO),
            SourceState::Waiting(t) => Some(t),
            SourceState::Blocked | SourceState::Done => None,
        }
    }

    /// Builds the port's next request if the source has one and a tag is
    /// free. Completions received since the last poll are handed to the
    /// source first. The request's CUB field is stamped here: fixed
    /// targeting uses the configured cube, addressed targeting derives it
    /// from the op's global address through the fabric map's checked
    /// split.
    ///
    /// # Panics
    ///
    /// Panics if the source violates its protocol: waits into the past,
    /// blocks with nothing outstanding (which could never unblock), or —
    /// under addressed targeting — emits a global address that does not
    /// map into the fabric (the loud replacement for the old silent
    /// 34-bit wrap that aliased such requests into cube 0).
    pub fn try_issue(&mut self, now: Time) -> Option<RequestPacket> {
        if !self.tags.has_free() || (self.gated && !self.active) {
            return None;
        }
        match self.state {
            SourceState::Done | SourceState::Blocked => return None,
            SourceState::Waiting(t) if now < t => return None,
            _ => {}
        }
        let feedback = Feedback {
            completions: &self.fresh,
            outstanding: self.tags.in_flight(),
        };
        let step = self.source.next(now, &feedback);
        self.fresh.clear();
        let op = match step {
            SourceStep::Op(op) => {
                self.state = SourceState::Poll;
                op
            }
            SourceStep::WaitUntil(t) => {
                assert!(t > now, "source must wait into the future");
                self.state = SourceState::Waiting(t);
                return None;
            }
            SourceStep::Blocked => {
                assert!(
                    self.tags.in_flight() > 0,
                    "source blocked with nothing outstanding: it can never unblock"
                );
                self.state = SourceState::Blocked;
                return None;
            }
            SourceStep::Done => {
                self.state = SourceState::Done;
                return None;
            }
        };
        let (cube, addr) = self
            .targeting
            .resolve(op.addr)
            .unwrap_or_else(|e| panic!("{} emitted an unmappable address: {e}", self.id));
        let tag = self.tags.allocate(now).expect("free tag checked above");
        self.op_by_tag[usize::from(tag.0)] = Some((op, self.issued, cube));
        self.issued += 1;
        self.probe
            .trace_issue(u16::from(self.id.0), tag.0, cube.0, now);
        Some(RequestPacket {
            port: self.id,
            tag,
            cube,
            addr,
            kind: op.kind,
        })
    }

    /// Completes the transaction `pkt` answers: frees its tag, records
    /// latency and round-trip bytes, and queues the completion for the
    /// source's next poll.
    ///
    /// # Panics
    ///
    /// Panics if the response's tag is not outstanding.
    pub fn on_response(&mut self, now: Time, pkt: &ResponsePacket) {
        let issued_at = self.tags.release(pkt.tag);
        let (op, index, cube) = self.op_by_tag[usize::from(pkt.tag.0)]
            .take()
            .expect("tag carries its request op");
        self.completed += 1;
        self.probe
            .trace_complete(u16::from(self.id.0), pkt.tag.0, now);
        if self.recording {
            let latency_ps = (now - issued_at).as_ps();
            self.latency.record_ps(latency_ps);
            self.bytes.add_bytes(op.kind.round_trip_bytes());
            if op.kind.is_read() {
                self.reads_recorded += 1;
            } else {
                self.writes_recorded += 1;
            }
            if self.completed_by_cube.len() <= cube.index() {
                self.completed_by_cube.resize(cube.index() + 1, 0);
            }
            self.completed_by_cube[cube.index()] += 1;
            self.probe.completion(
                u16::from(self.id.0),
                cube.0,
                latency_ps,
                op.kind.round_trip_bytes(),
                now,
            );
        }
        self.fresh.push(Completion {
            index,
            op,
            issued_at,
            completed_at: now,
        });
        // A completion may unblock a closed-loop source (or re-schedule a
        // waiting one): force a fresh poll at the next opportunity. A
        // finished source stays finished.
        if matches!(self.state, SourceState::Blocked | SourceState::Waiting(_)) {
            self.state = SourceState::Poll;
        }
    }

    /// `true` once the source is exhausted and every response is home.
    /// Duration-gated ports are done when deactivated and drained.
    pub fn is_done(&self) -> bool {
        let drained = self.tags.in_flight() == 0;
        if self.gated {
            !self.active && drained
        } else {
            self.state == SourceState::Done && drained
        }
    }

    /// Requests currently outstanding.
    pub fn outstanding(&self) -> u16 {
        self.tags.in_flight()
    }

    /// Extra flits this port's RX path moves per response (the source's
    /// [`TrafficSource::rx_extra_flits`]): stream-style firmware ships
    /// each response's address back to the host alongside the data
    /// (Figure 5b's "Rd. Addr. FIFO"), costing one flit; GUPS ports only
    /// update local counters.
    pub fn rx_extra_flits(&self) -> u32 {
        self.rx_extra
    }

    /// Total requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total responses received.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The monitoring-logic latency aggregate.
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// The monitoring-logic byte counter (paper bandwidth formula units).
    pub fn bytes(&self) -> &BandwidthMeter {
        &self.bytes
    }

    /// Read transactions recorded in the measurement window.
    pub fn reads_recorded(&self) -> u64 {
        self.reads_recorded
    }

    /// Write/atomic transactions recorded in the measurement window.
    pub fn writes_recorded(&self) -> u64 {
        self.writes_recorded
    }

    /// Completions recorded in the measurement window, by destination
    /// cube (indexed by [`CubeId::index`]). The slice only reaches the
    /// highest cube this port completed against — entries past its end
    /// are zero. For a fixed-targeting port only one slot is ever
    /// nonzero; for an addressed port this is the per-cube attribution
    /// of the split stream.
    pub fn completed_by_cube(&self) -> &[u64] {
        &self.completed_by_cube
    }

    /// Clears the monitors (end of warmup).
    pub fn reset_stats(&mut self) {
        self.latency.reset();
        self.bytes.reset();
        self.reads_recorded = 0;
        self.writes_recorded = 0;
        self.completed_by_cube.clear();
    }

    /// Stops recording (end of the measurement window); responses still
    /// drain and free tags but no longer affect the monitors.
    pub fn freeze_stats(&mut self) {
        self.recording = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mapping::{AccessPattern, AddressMap, VaultId};
    use hmc_packet::{Address, PayloadSize, RequestKind};
    use hmc_workloads::{GupsOp, GupsSource, PointerChase, Trace, TraceReplay, UniformSource};

    fn gups_port(tags: u16) -> Port {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
        Port::new(
            PortId(0),
            Box::new(GupsSource::new(filter, GupsOp::Read(PayloadSize::B32), 7)),
            tags,
        )
    }

    #[test]
    fn tag_pool_bounds_outstanding() {
        let mut p = gups_port(2);
        p.set_active(true);
        let a = p.try_issue(Time::ZERO).unwrap();
        let b = p.try_issue(Time::ZERO).unwrap();
        assert_ne!(a.tag, b.tag);
        assert!(p.try_issue(Time::ZERO).is_none(), "tags exhausted");
        assert_eq!(p.outstanding(), 2);
        p.on_response(Time::from_ns(100), &ResponsePacket::for_request(&a));
        assert!(p.try_issue(Time::ZERO).is_some());
    }

    #[test]
    fn latency_and_bytes_recorded() {
        let mut p = gups_port(4);
        p.set_active(true);
        let req = p.try_issue(Time::from_ns(10)).unwrap();
        p.on_response(Time::from_ns(710), &ResponsePacket::for_request(&req));
        assert_eq!(p.latency().count(), 1);
        assert_eq!(p.latency().mean_ns(), 700.0);
        // 32 B read: 16 + 48 = 64 B round trip.
        assert_eq!(p.bytes().bytes(), 64);
    }

    #[test]
    fn inactive_gups_port_stays_silent() {
        let mut p = gups_port(4);
        assert!(p.try_issue(Time::ZERO).is_none());
        assert_eq!(p.next_wake(Time::ZERO), None, "inactive port sleeps");
        p.set_active(true);
        assert!(p.try_issue(Time::ZERO).is_some());
        p.set_active(false);
        assert!(p.try_issue(Time::ZERO).is_none());
        assert!(!p.is_done(), "still draining one response");
    }

    #[test]
    fn stream_port_replays_trace_in_order() {
        let trace = Trace::from_ops(vec![
            TraceOp::read(Address::new(0), PayloadSize::B64),
            TraceOp::read(Address::new(128), PayloadSize::B64),
        ]);
        let mut p = Port::new(PortId(3), Box::new(TraceReplay::new(trace)), 8);
        let a = p.try_issue(Time::ZERO).unwrap();
        let b = p.try_issue(Time::ZERO).unwrap();
        assert_eq!(a.addr.raw(), 0);
        assert_eq!(b.addr.raw(), 128);
        assert!(p.try_issue(Time::ZERO).is_none(), "trace exhausted");
        assert!(!p.is_done());
        p.on_response(Time::from_ns(1), &ResponsePacket::for_request(&a));
        p.on_response(Time::from_ns(2), &ResponsePacket::for_request(&b));
        assert!(p.is_done());
        assert_eq!(p.source_label(), "stream");
    }

    #[test]
    fn freeze_stops_recording_but_not_draining() {
        let mut p = gups_port(4);
        p.set_active(true);
        let req = p.try_issue(Time::ZERO).unwrap();
        p.freeze_stats();
        p.on_response(Time::from_ns(500), &ResponsePacket::for_request(&req));
        assert_eq!(p.latency().count(), 0);
        assert_eq!(p.completed(), 1);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn gups_addresses_respect_filter_and_alignment() {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 2 }.filter(&map);
        let mut p = Port::new(
            PortId(1),
            Box::new(GupsSource::new(filter, GupsOp::Read(PayloadSize::B64), 3)),
            64,
        );
        p.set_active(true);
        for _ in 0..64 {
            let req = p.try_issue(Time::ZERO).unwrap();
            assert_eq!(req.addr.raw() % 64, 0, "aligned");
            assert!(map.decode(req.addr).vault.0 < 2, "filtered");
        }
    }

    #[test]
    fn mix_generates_both_kinds() {
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
        let mut p = Port::new(
            PortId(0),
            Box::new(GupsSource::new(
                filter,
                GupsOp::Mix {
                    size: PayloadSize::B64,
                    write_percent: 50,
                },
                11,
            )),
            200,
        );
        p.set_active(true);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            match p.try_issue(Time::ZERO).unwrap().kind {
                RequestKind::Read { .. } => reads += 1,
                RequestKind::Write { .. } => writes += 1,
                RequestKind::ReadModifyWrite => {}
            }
        }
        assert!(
            reads > 50 && writes > 50,
            "mix is roughly balanced: {reads}/{writes}"
        );
    }

    #[test]
    fn closed_loop_chase_blocks_until_its_completion_returns() {
        let map = AddressMap::hmc_gen2_default();
        let vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
        let chase = PointerChase::new(&map, &vaults, PayloadSize::B64, 1, 3, 5);
        let mut p = Port::new(PortId(0), Box::new(chase), 16);
        let first = p.try_issue(Time::ZERO).unwrap();
        assert!(
            p.try_issue(Time::ZERO).is_none(),
            "a 1-walker chase is strictly serial"
        );
        assert_eq!(p.next_wake(Time::ZERO), None, "blocked source sleeps");
        p.on_response(Time::from_ns(700), &ResponsePacket::for_request(&first));
        assert_eq!(
            p.next_wake(Time::from_ns(700)),
            Some(Time::from_ns(700)),
            "a completion re-arms the poll"
        );
        let second = p.try_issue(Time::from_ns(700)).unwrap();
        assert_ne!(second.addr, first.addr, "the chain moved");
        assert_eq!(p.rx_extra_flits(), 1, "closed loops ship addresses back");
    }

    #[test]
    fn bounded_uniform_source_finishes_without_activation() {
        let map = AddressMap::hmc_gen2_default();
        let src = UniformSource::reads_in_vaults(&map, &[VaultId(0)], PayloadSize::B32, Some(2), 1);
        let mut p = Port::new(PortId(0), Box::new(src), 8);
        let a = p.try_issue(Time::ZERO).unwrap();
        let b = p.try_issue(Time::ZERO).unwrap();
        assert!(p.try_issue(Time::ZERO).is_none());
        assert!(!p.is_done());
        p.on_response(Time::from_ns(1), &ResponsePacket::for_request(&a));
        p.on_response(Time::from_ns(2), &ResponsePacket::for_request(&b));
        // One more poll discovers exhaustion.
        assert!(p.try_issue(Time::from_ns(3)).is_none());
        assert!(p.is_done());
    }

    #[test]
    fn addressed_port_derives_cub_from_the_address() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_packet::GlobalAddress;

        let map = AddressMap::hmc_gen2_default();
        let fabric = FabricAddressMap::new(CubePolicy::Blocked, 4, &map);
        let trace = Trace::from_ops(vec![
            TraceOp::read(GlobalAddress::new(2u64 << 34 | 0x100), PayloadSize::B64),
            TraceOp::read(GlobalAddress::new(0x200), PayloadSize::B64),
            TraceOp::read(GlobalAddress::new(3u64 << 34 | 0x300), PayloadSize::B64),
        ]);
        let mut p = Port::new(PortId(0), Box::new(TraceReplay::new(trace)), 8)
            .with_targeting(CubeTargeting::Addressed(fabric));
        let a = p.try_issue(Time::ZERO).unwrap();
        let b = p.try_issue(Time::ZERO).unwrap();
        let c = p.try_issue(Time::ZERO).unwrap();
        assert_eq!((a.cube, a.addr.raw()), (CubeId(2), 0x100));
        assert_eq!((b.cube, b.addr.raw()), (CubeId(0), 0x200));
        assert_eq!((c.cube, c.addr.raw()), (CubeId(3), 0x300));
        // Completions attribute per cube.
        p.on_response(Time::from_ns(10), &ResponsePacket::for_request(&a));
        p.on_response(Time::from_ns(20), &ResponsePacket::for_request(&c));
        assert_eq!(p.completed_by_cube()[2], 1);
        assert_eq!(p.completed_by_cube()[3], 1);
        assert_eq!(p.completed_by_cube()[0], 0);
    }

    #[test]
    fn fixed_port_keeps_header_mask_semantics() {
        use hmc_packet::GlobalAddress;

        // The degenerate map: a fixed-targeting port masks to the 34-bit
        // header field exactly as the pre-fabric pipeline did.
        let trace = Trace::from_ops(vec![TraceOp::read(
            GlobalAddress::new(1u64 << 34 | 0x80),
            PayloadSize::B16,
        )]);
        let mut p = Port::new(PortId(0), Box::new(TraceReplay::new(trace)), 2)
            .with_targeting(CubeTargeting::Fixed(CubeId(1)));
        let req = p.try_issue(Time::ZERO).unwrap();
        assert_eq!(req.cube, CubeId(1));
        assert_eq!(req.addr.raw(), 0x80, "bit 34 dropped, header semantics");
    }

    #[test]
    #[should_panic(expected = "unmappable address")]
    fn addressed_port_rejects_out_of_fabric_addresses_loudly() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_packet::GlobalAddress;

        // The aliasing trap, end to end: on a 5-cube fabric an address in
        // the missing cube 6 must fail the issue path loudly instead of
        // wrapping into cube 0.
        let map = AddressMap::hmc_gen2_default();
        let fabric = FabricAddressMap::new(CubePolicy::Blocked, 5, &map);
        let trace = Trace::from_ops(vec![TraceOp::read(
            GlobalAddress::new(6u64 << 34 | 0x80),
            PayloadSize::B64,
        )]);
        let mut p = Port::new(PortId(0), Box::new(TraceReplay::new(trace)), 2)
            .with_targeting(CubeTargeting::Addressed(fabric));
        let _ = p.try_issue(Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "release of idle")]
    fn duplicate_response_panics() {
        let mut p = gups_port(2);
        p.set_active(true);
        let req = p.try_issue(Time::ZERO).unwrap();
        let resp = ResponsePacket::for_request(&req);
        p.on_response(Time::ZERO, &resp);
        p.on_response(Time::ZERO, &resp);
    }
}
