//! # hmc-workloads
//!
//! Workload traces and generators for the reproduced experiments: the text
//! trace format consumed by the modelled multi-port stream firmware,
//! uniform-random generators confined to structural subsets of the cube,
//! linear sweeps, and the vault-combination enumerator behind the
//! C(16,4) = 1820-combination sweep of Figures 10–12.
//!
//! ```
//! use hmc_mapping::{AddressMap, VaultId};
//! use hmc_packet::PayloadSize;
//! use hmc_workloads::random_reads_in_vaults;
//!
//! let map = AddressMap::hmc_gen2_default();
//! let trace = random_reads_in_vaults(
//!     &map,
//!     &[VaultId(0), VaultId(4)],
//!     PayloadSize::B64,
//!     100,
//!     /* seed */ 7,
//! );
//! assert_eq!(trace.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod trace;

pub use generate::{
    binomial, linear_reads, random_reads_in_banks, random_reads_in_vaults, vault_combinations,
    VaultCombinations,
};
pub use trace::{ParseTraceError, Trace, TraceOp};
