//! # hmc-workloads
//!
//! Workloads for the reproduced experiments, in two layers:
//!
//! - **Traces and eager generators** — the text trace format consumed by
//!   the modelled multi-port stream firmware, uniform-random generators
//!   confined to structural subsets of the cube, linear sweeps, and the
//!   vault-combination enumerator behind the C(16,4) = 1820-combination
//!   sweep of Figures 10–12.
//! - **Pull-based traffic sources** ([`source`]) — the closed-loop
//!   workload pipeline: a port pulls one operation at a time from a
//!   [`TrafficSource`], feeding back completed transactions, so sources
//!   can be rate-controlled, replay traces lazily, chase pointers
//!   ([`PointerChase`]) or run NOM-style copy streams ([`OffloadSource`]).
//!
//! ```
//! use hmc_mapping::{AddressMap, VaultId};
//! use hmc_packet::PayloadSize;
//! use hmc_workloads::random_reads_in_vaults;
//!
//! let map = AddressMap::hmc_gen2_default();
//! let trace = random_reads_in_vaults(
//!     &map,
//!     &[VaultId(0), VaultId(4)],
//!     PayloadSize::B64,
//!     100,
//!     /* seed */ 7,
//! );
//! assert_eq!(trace.len(), 100);
//! ```
//!
//! # Writing your own `TrafficSource`
//!
//! A source is a small state machine answering "what would you issue
//! next?". The port calls [`TrafficSource::next`] only when it could
//! actually issue; the [`Feedback`] argument presents every transaction
//! completed since the previous call exactly once, so a closed-loop
//! source just reacts to completions. Here is a complete dependent-stride
//! source — each read's *result* unlocks the next read one stride away
//! (mirroring the style of the `hmc_des::wake` worked example):
//!
//! ```
//! use hmc_des::Time;
//! use hmc_packet::{Address, PayloadSize};
//! use hmc_workloads::{Completion, Feedback, SourceStep, TraceOp, TrafficSource};
//!
//! /// Reads `addr`, then `addr + stride`, ... each only after the
//! /// previous read completed: a 1-deep dependency chain.
//! struct DependentStride {
//!     next_addr: u64,
//!     stride: u64,
//!     remaining: u64,
//!     in_flight: bool,
//! }
//!
//! impl TrafficSource for DependentStride {
//!     fn next(&mut self, _now: Time, fb: &Feedback<'_>) -> SourceStep {
//!         if fb.completions.iter().any(|c| c.op.kind.is_read()) {
//!             self.in_flight = false; // the dependency resolved
//!         }
//!         if self.remaining == 0 {
//!             return SourceStep::Done;
//!         }
//!         if self.in_flight {
//!             return SourceStep::Blocked; // wait for the completion
//!         }
//!         let op = TraceOp::read(Address::new(self.next_addr), PayloadSize::B64);
//!         self.next_addr += self.stride;
//!         self.remaining -= 1;
//!         self.in_flight = true;
//!         SourceStep::Op(op)
//!     }
//!
//!     fn label(&self) -> &'static str {
//!         "dependent-stride"
//!     }
//! }
//!
//! // Drive it by hand, playing the port's role.
//! let mut src = DependentStride {
//!     next_addr: 0,
//!     stride: 128,
//!     remaining: 2,
//!     in_flight: false,
//! };
//! let SourceStep::Op(first) = src.next(Time::ZERO, &Feedback::EMPTY) else {
//!     unreachable!()
//! };
//! assert_eq!(first.addr.raw(), 0);
//! // Until the first read completes, the source must block...
//! assert_eq!(src.next(Time::ZERO, &Feedback::EMPTY), SourceStep::Blocked);
//! // ...and its completion unlocks the next stride.
//! let done = Completion {
//!     index: 0,
//!     op: first,
//!     issued_at: Time::ZERO,
//!     completed_at: Time::from_ns(700),
//! };
//! let fb = Feedback { completions: &[done], outstanding: 0 };
//! let SourceStep::Op(second) = src.next(Time::from_ns(700), &fb) else {
//!     unreachable!()
//! };
//! assert_eq!(second.addr.raw(), 128);
//! ```
//!
//! Hand the source to a port via a [`SourceFactory`] (specs carry
//! factories, not built sources, so one cloneable spec can seed many
//! ports): `hmc_sim::PortSpec::from_source` / `FabricPortSpec::from_source`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
pub mod source;
mod trace;

pub use generate::{
    binomial, linear_reads, random_reads_in_banks, random_reads_in_vaults, vault_combinations,
    VaultCombinations,
};
pub use source::{
    source_factory, Completion, Feedback, GlobalGupsSource, GupsOp, GupsSource, LinearSource,
    OffloadSource, Paced, PointerChase, SourceFactory, SourceStep, TraceReplay, TrafficSource,
    UniformSource,
};
pub use trace::{ParseTraceError, Trace, TraceOp};
