//! Trace generators for the paper's experiments.
//!
//! The random/linear generators are eager views of the lazy pull sources
//! in [`crate::source`]: each materializes exactly the ops the matching
//! source emits, so a replayed trace and the lazy source are
//! interchangeable by construction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hmc_mapping::{AddressMap, VaultId};
use hmc_packet::{Address, PayloadSize};

use crate::source::{
    aligned_offset, Feedback, LinearSource, SourceStep, TrafficSource, UniformSource,
};
use crate::trace::{Trace, TraceOp};

/// Materializes an open-loop source into a trace. The source must emit an
/// op on every poll until exhaustion (the uniform/linear generators do).
fn unroll(mut source: impl TrafficSource) -> Trace {
    let mut ops = Vec::new();
    loop {
        match source.next(hmc_des::Time::ZERO, &Feedback::EMPTY) {
            SourceStep::Op(op) => ops.push(op),
            SourceStep::Done => return Trace::from_ops(ops),
            step => unreachable!("open-loop generator answered {step:?}"),
        }
    }
}

/// Generates `count` random reads of `size` bytes confined to the given
/// vault set (any bank, any row), aligned to the request size — the
/// workload behind Figures 7–12, where the stream firmware replays "random
/// read requests mapped within" a chosen structural subset.
///
/// Addresses are drawn uniformly and independently; determinism comes from
/// the caller-provided `seed`. The eager form of
/// [`UniformSource::reads_in_vaults`]: both emit the same sequence for the
/// same seed.
///
/// # Panics
///
/// Panics if `vaults` is empty or contains an out-of-range vault.
pub fn random_reads_in_vaults(
    map: &AddressMap,
    vaults: &[VaultId],
    size: PayloadSize,
    count: usize,
    seed: u64,
) -> Trace {
    unroll(UniformSource::reads_in_vaults(
        map,
        vaults,
        size,
        Some(count as u64),
        seed,
    ))
}

/// Generates `count` random reads confined to the first `banks` banks of
/// one vault — the Figures 7/8 workload ("random read requests ... within
/// the 16 banks of a vault").
pub fn random_reads_in_banks(
    map: &AddressMap,
    vault: VaultId,
    banks: u8,
    size: PayloadSize,
    count: usize,
    seed: u64,
) -> Trace {
    let g = map.geometry();
    assert!(
        banks >= 1 && banks <= g.banks_per_vault,
        "bank count out of range"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows = map.rows_per_bank();
    let block = map.block_size().bytes();
    (0..count)
        .map(|_| {
            let bank = hmc_mapping::BankId(rng.gen_range(0..banks));
            let row = rng.gen_range(0..rows);
            let offset = aligned_offset(block, size, |slots| rng.gen_range(0..slots));
            TraceOp::read(map.encode(vault, bank, row, offset), size)
        })
        .collect()
}

/// Generates a linear (sequential-address) read sweep of `count` requests
/// of `size` bytes starting at `base` — the GUPS "linear mode of
/// addressing". The eager form of [`LinearSource`].
pub fn linear_reads(base: Address, size: PayloadSize, count: usize) -> Trace {
    unroll(LinearSource::new(base, size, count as u64))
}

/// Iterates every k-combination of the cube's vault ids in lexicographic
/// order — the C(16,4) = 1820 four-vault combinations of Figures 10–12.
///
/// # Examples
///
/// ```
/// use hmc_workloads::vault_combinations;
///
/// let combos: Vec<_> = vault_combinations(16, 4).collect();
/// assert_eq!(combos.len(), 1820);
/// assert_eq!(combos[0].iter().map(|v| v.0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
/// ```
pub fn vault_combinations(n: u8, k: u8) -> VaultCombinations {
    assert!(k <= n, "cannot choose {k} from {n}");
    VaultCombinations {
        n,
        state: (0..k).map(VaultId).collect(),
        done: k == 0,
    }
}

/// Iterator returned by [`vault_combinations`].
#[derive(Debug, Clone)]
pub struct VaultCombinations {
    n: u8,
    state: Vec<VaultId>,
    done: bool,
}

impl Iterator for VaultCombinations {
    type Item = Vec<VaultId>;

    fn next(&mut self) -> Option<Vec<VaultId>> {
        if self.done {
            return None;
        }
        let current = self.state.clone();
        // Advance to the next lexicographic combination.
        let k = self.state.len();
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            let max_at_i = self.n - (k - i) as u8;
            if self.state[i].0 < max_at_i {
                self.state[i].0 += 1;
                for j in i + 1..k {
                    self.state[j].0 = self.state[j - 1].0 + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

/// The binomial coefficient C(n, k), used to size combination sweeps.
///
/// # Examples
///
/// ```
/// assert_eq!(hmc_workloads::binomial(16, 4), 1820);
/// ```
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mapping::BankId;
    use std::collections::BTreeSet;

    fn map() -> AddressMap {
        AddressMap::hmc_gen2_default()
    }

    #[test]
    fn vault_confinement() {
        let m = map();
        let vaults = vec![VaultId(2), VaultId(7), VaultId(11)];
        let t = random_reads_in_vaults(&m, &vaults, PayloadSize::B64, 500, 1);
        let seen: BTreeSet<u8> = t
            .ops()
            .iter()
            .map(|op| m.decode(op.addr.local_unchecked()).vault.0)
            .collect();
        assert!(seen.iter().all(|v| [2, 7, 11].contains(v)));
        assert_eq!(seen.len(), 3, "all requested vaults get traffic");
    }

    #[test]
    fn bank_confinement_and_alignment() {
        let m = map();
        let t = random_reads_in_banks(&m, VaultId(4), 2, PayloadSize::B32, 500, 2);
        for op in t.ops() {
            let loc = m.decode(op.addr.local_unchecked());
            assert_eq!(loc.vault, VaultId(4));
            assert!(loc.bank.0 < 2);
            assert_eq!(op.addr.raw() % 32, 0, "aligned to request size");
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let m = map();
        let a = random_reads_in_vaults(&m, &[VaultId(0)], PayloadSize::B16, 100, 42);
        let b = random_reads_in_vaults(&m, &[VaultId(0)], PayloadSize::B16, 100, 42);
        let c = random_reads_in_vaults(&m, &[VaultId(0)], PayloadSize::B16, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn linear_walks_sequential_blocks() {
        let m = map();
        let t = linear_reads(Address::new(0), PayloadSize::B128, 16);
        let vaults: Vec<u8> = t
            .ops()
            .iter()
            .map(|op| m.decode(op.addr.local_unchecked()).vault.0)
            .collect();
        assert_eq!(vaults, (0..16).collect::<Vec<u8>>());
    }

    #[test]
    fn combinations_are_exhaustive_and_sorted() {
        let combos: Vec<Vec<VaultId>> = vault_combinations(6, 3).collect();
        assert_eq!(combos.len() as u64, binomial(6, 3));
        let mut seen = BTreeSet::new();
        for c in &combos {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
            seen.insert(c.clone());
        }
        assert_eq!(seen.len(), combos.len(), "no duplicates");
    }

    #[test]
    fn full_paper_combination_count() {
        assert_eq!(vault_combinations(16, 4).count(), 1820);
        assert_eq!(binomial(16, 4), 1820);
    }

    #[test]
    fn degenerate_combinations() {
        assert_eq!(vault_combinations(4, 0).count(), 0);
        let all: Vec<_> = vault_combinations(4, 4).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], (0..4).map(VaultId).collect::<Vec<_>>());
    }

    #[test]
    fn bank_ids_spread_within_vault() {
        let m = map();
        let t = random_reads_in_vaults(&m, &[VaultId(0)], PayloadSize::B16, 1000, 7);
        let banks: BTreeSet<u8> = t
            .ops()
            .iter()
            .map(|op| m.decode(op.addr.local_unchecked()).bank.0)
            .collect();
        assert!(
            banks.len() >= 12,
            "uniform draw should hit most banks, got {banks:?}"
        );
        let _ = BankId(0);
    }
}
