//! Memory traces: the input format of the multi-port stream firmware.

use core::fmt;
use std::str::FromStr;

use hmc_packet::{GlobalAddress, PayloadSize, RequestKind};

/// One operation in a memory trace file.
///
/// The multi-port stream implementation "generates requests from memory
/// trace files" (Section III); a trace is an ordered list of these.
///
/// The address is *fabric-global* ([`GlobalAddress`]): every bit the
/// workload produced survives until the port's cube-targeting logic
/// splits it into a CUB field and an in-cube address, so addresses beyond
/// one cube's 34-bit range reach the checked fabric boundary intact
/// instead of silently wrapping here.
///
/// # Examples
///
/// ```
/// use hmc_workloads::TraceOp;
///
/// let op: TraceOp = "R 0x1f80 64".parse()?;
/// assert!(op.kind.is_read());
/// assert_eq!(op.to_string(), "R 0x1f80 64");
/// # Ok::<(), hmc_workloads::ParseTraceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Target address (fabric-global; split into cube + in-cube address
    /// at the host port).
    pub addr: GlobalAddress,
    /// Operation and size.
    pub kind: RequestKind,
}

impl TraceOp {
    /// A read of `size` bytes at `addr`.
    pub fn read(addr: impl Into<GlobalAddress>, size: PayloadSize) -> TraceOp {
        TraceOp {
            addr: addr.into(),
            kind: RequestKind::Read { size },
        }
    }

    /// A write of `size` bytes at `addr`.
    pub fn write(addr: impl Into<GlobalAddress>, size: PayloadSize) -> TraceOp {
        TraceOp {
            addr: addr.into(),
            kind: RequestKind::Write { size },
        }
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RequestKind::Read { size } => {
                write!(f, "R {:#x} {}", self.addr.raw(), size.bytes())
            }
            RequestKind::Write { size } => {
                write!(f, "W {:#x} {}", self.addr.raw(), size.bytes())
            }
            RequestKind::ReadModifyWrite => write!(f, "A {:#x} 16", self.addr.raw()),
        }
    }
}

/// Error from parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    msg: String,
}

impl ParseTraceError {
    fn new(msg: impl Into<String>) -> ParseTraceError {
        ParseTraceError { msg: msg.into() }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace line: {}", self.msg)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for TraceOp {
    type Err = ParseTraceError;

    /// Parses `"<R|W|A> <addr> <size>"`, address in decimal or `0x` hex.
    fn from_str(s: &str) -> Result<TraceOp, ParseTraceError> {
        let mut parts = s.split_whitespace();
        let op = parts
            .next()
            .ok_or_else(|| ParseTraceError::new("empty line"))?;
        let addr_s = parts
            .next()
            .ok_or_else(|| ParseTraceError::new("missing address"))?;
        let size_s = parts
            .next()
            .ok_or_else(|| ParseTraceError::new("missing size"))?;
        if parts.next().is_some() {
            return Err(ParseTraceError::new("trailing tokens"));
        }
        let raw = if let Some(hex) = addr_s
            .strip_prefix("0x")
            .or_else(|| addr_s.strip_prefix("0X"))
        {
            u64::from_str_radix(hex, 16)
        } else {
            addr_s.parse()
        }
        .map_err(|e| ParseTraceError::new(format!("bad address {addr_s:?}: {e}")))?;
        let bytes: u32 = size_s
            .parse()
            .map_err(|e| ParseTraceError::new(format!("bad size: {e}")))?;
        let size = PayloadSize::new(bytes).map_err(|e| ParseTraceError::new(e.to_string()))?;
        // Deliberately unmasked: a trace address beyond one cube's 34-bit
        // range must reach the fabric boundary intact so the checked
        // split can reject it instead of aliasing it into cube 0.
        let addr = GlobalAddress::new(raw);
        match op {
            "R" | "r" => Ok(TraceOp::read(addr, size)),
            "W" | "w" => Ok(TraceOp::write(addr, size)),
            "A" | "a" => {
                if bytes != 16 {
                    return Err(ParseTraceError::new("atomics are 16 B"));
                }
                Ok(TraceOp {
                    addr,
                    kind: RequestKind::ReadModifyWrite,
                })
            }
            other => Err(ParseTraceError::new(format!("unknown op {other:?}"))),
        }
    }
}

/// An ordered memory trace with text serialization (one op per line, `#`
/// comments and blank lines ignored).
///
/// # Examples
///
/// ```
/// use hmc_workloads::Trace;
///
/// let text = "# two reads\nR 0x0 128\nR 0x80 128\n";
/// let trace = Trace::parse(text)?;
/// assert_eq!(trace.len(), 2);
/// assert!(Trace::parse(&trace.to_text())? == trace);
/// # Ok::<(), hmc_workloads::ParseTraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Wraps a list of operations.
    pub fn from_ops(ops: Vec<TraceOp>) -> Trace {
        Trace { ops }
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns the first line that fails to parse, with its line number.
    pub fn parse(text: &str) -> Result<Trace, ParseTraceError> {
        let mut ops = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let op: TraceOp = line.parse().map_err(|e: ParseTraceError| {
                ParseTraceError::new(format!("line {}: {e}", i + 1))
            })?;
            ops.push(op);
        }
        Ok(Trace { ops })
    }

    /// Renders the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.to_string());
            out.push('\n');
        }
        out
    }

    /// The operations, in issue order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Trace {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<I: IntoIterator<Item = TraceOp>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_packet::Address;

    #[test]
    fn parse_and_render_roundtrip() {
        let text = "R 0x80 128\nW 0x100 32\nA 0x40 16\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.to_text(), text);
        assert_eq!(Trace::parse(&trace.to_text()).unwrap(), trace);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n  \nR 0 16\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn decimal_addresses_accepted() {
        let op: TraceOp = "R 4096 64".parse().unwrap();
        assert_eq!(op.addr.raw(), 4096);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Trace::parse("R 0x0 128\nX 0x0 128\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn bad_sizes_rejected() {
        assert!("R 0x0 20".parse::<TraceOp>().is_err());
        assert!("A 0x0 32".parse::<TraceOp>().is_err());
        assert!("R 0x0".parse::<TraceOp>().is_err());
        assert!("R 0x0 16 junk".parse::<TraceOp>().is_err());
    }

    #[test]
    fn collect_from_iterator() {
        let trace: Trace = (0..4)
            .map(|i| TraceOp::read(Address::new(i * 128), PayloadSize::B128))
            .collect();
        assert_eq!(trace.len(), 4);
        let mut t2 = Trace::new();
        t2.extend(trace.ops().iter().copied());
        assert_eq!(t2, trace);
    }
}
