//! Pull-based traffic sources: the closed-loop workload pipeline.
//!
//! A [`TrafficSource`] is the generator behind one traffic port. Instead of
//! materializing a request list up front (the old open-loop `Trace`-vector
//! path), the port *pulls* one operation at a time with
//! [`TrafficSource::next`], handing back a [`Feedback`] that carries every
//! transaction completed since the previous pull. That single change makes
//! dependent-access workloads expressible:
//!
//! - [`GupsSource`] — the paper's GUPS firmware (random addresses through a
//!   mask/anti-mask filter), now emitted lazily;
//! - [`TraceReplay`] — the multi-port stream firmware, streaming an
//!   existing [`Trace`] without copying it per request;
//! - [`UniformSource`] / [`LinearSource`] — the uniform/linear generators
//!   of [`crate::random_reads_in_vaults`] / [`crate::linear_reads`], lazy
//!   and optionally unbounded;
//! - [`Paced`] — a rate-control wrapper spacing any open-loop source's
//!   requests by a fixed gap;
//! - [`PointerChase`] — N walkers each deriving their next address
//!   deterministically from the completed transaction: the unloaded-latency
//!   probe of the companion study (Hadidi et al., ISPASS 2017);
//! - [`OffloadSource`] — NOM-style copy streams (Rezaei et al., 2020):
//!   paired read→dependent-write bursts between two vaults.
//!
//! # The pull protocol
//!
//! The port polls `next(now, &feedback)` only when it could actually issue
//! (a tag is free, its FIFO has room, and — for
//! [duration-gated](TrafficSource::duration_gated) sources — the port is
//! active). Each completion is presented exactly once, in completion
//! order; `Completion::index` is the 0-based issue order of the ops pulled
//! from this source, so a source can match completions to whatever it has
//! in flight without keeping addresses unique. The contract on the return
//! value:
//!
//! - [`SourceStep::Op`] is issued immediately — the source may count it as
//!   in flight;
//! - [`SourceStep::WaitUntil`] must name a strictly future instant; the
//!   port re-polls then (or earlier, if a completion arrives first);
//! - [`SourceStep::Blocked`] is only legal while the source has
//!   transactions outstanding (otherwise nothing could ever unblock it —
//!   the port treats that as a protocol bug and panics);
//! - [`SourceStep::Done`] is terminal.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use hmc_des::{Delay, Time};
use hmc_mapping::{AddressFilter, AddressMap, BankId, FabricAddressMap, VaultId};
use hmc_packet::{Address, CubeId, GlobalAddress, PayloadSize, RequestKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::trace::{Trace, TraceOp};

/// One completed transaction, reported back to the source that emitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Issue-order index of the completed op: the `n`-th operation this
    /// source returned from [`TrafficSource::next`] has index `n` (0-based).
    pub index: u64,
    /// The operation that completed.
    pub op: TraceOp,
    /// When the request was issued by the port.
    pub issued_at: Time,
    /// When the response was delivered back to the port.
    pub completed_at: Time,
}

/// Closed-loop feedback handed to [`TrafficSource::next`].
#[derive(Debug, Clone, Copy)]
pub struct Feedback<'a> {
    /// Transactions completed since the previous `next` call, in
    /// completion order. Each completion appears exactly once.
    pub completions: &'a [Completion],
    /// Requests still outstanding at this port (not counting the op being
    /// requested).
    pub outstanding: u16,
}

impl Feedback<'_> {
    /// Feedback with no completions (useful in tests and manual drivers).
    pub const EMPTY: Feedback<'static> = Feedback {
        completions: &[],
        outstanding: 0,
    };
}

/// What a source answers when polled for its next operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStep {
    /// Issue this operation now.
    Op(TraceOp),
    /// Nothing yet; poll again at this (strictly future) instant — the
    /// rate-control step of open-loop sources.
    WaitUntil(Time),
    /// Nothing until an outstanding transaction completes — the
    /// closed-loop step of dependent-access sources.
    Blocked,
    /// The source is exhausted; it will never emit again.
    Done,
}

/// A pull-based traffic generator behind one port.
///
/// See the [module docs](self) for the full protocol and
/// [`crate`]-level docs for a worked custom-source example.
pub trait TrafficSource: Send {
    /// Pulls the next operation. `feedback` carries every transaction
    /// completed since the previous call (each exactly once).
    fn next(&mut self, now: Time, feedback: &Feedback<'_>) -> SourceStep;

    /// `true` if this source only runs while its port is activated
    /// (GUPS-style fixed-duration firmware, gated by the measurement
    /// window); `false` if it runs to exhaustion like the stream firmware.
    fn duration_gated(&self) -> bool {
        false
    }

    /// Extra flits the port's RX path moves per response. Stream-firmware
    /// style sources ship each response's address back to the host
    /// alongside the data (Figure 5b's "Rd. Addr. FIFO"), costing one
    /// flit — and every closed-loop source needs that address to derive
    /// its next request, so `1` is the default; GUPS overrides with `0`
    /// (it only bumps local counters).
    fn rx_extra_flits(&self) -> u32 {
        1
    }

    /// A short stable name for per-source reporting.
    fn label(&self) -> &'static str;
}

/// A cloneable recipe building a [`TrafficSource`] from a port seed.
///
/// Port specs carry factories rather than built sources so that a spec can
/// be cloned across ports (`vec![spec; 9]`) while each port still gets its
/// own deterministically derived seed.
pub type SourceFactory = Arc<dyn Fn(u64) -> Box<dyn TrafficSource> + Send + Sync>;

/// Wraps a closure as a [`SourceFactory`].
pub fn source_factory<F>(f: F) -> SourceFactory
where
    F: Fn(u64) -> Box<dyn TrafficSource> + Send + Sync + 'static,
{
    Arc::new(f)
}

/// What a GUPS port generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GupsOp {
    /// Random reads of a fixed size.
    Read(PayloadSize),
    /// Random writes of a fixed size.
    Write(PayloadSize),
    /// Random 16 B read-modify-writes.
    ReadModifyWrite,
    /// A random mix: `write_percent`% writes, the rest reads, all of one
    /// size (the read/write balance experiment of Section IV-F).
    Mix {
        /// Transfer size for both directions.
        size: PayloadSize,
        /// Percentage of writes (0–100).
        write_percent: u8,
    },
}

impl GupsOp {
    /// The transfer size this op template moves.
    pub fn payload(&self) -> PayloadSize {
        match *self {
            GupsOp::Read(s) | GupsOp::Write(s) => s,
            GupsOp::ReadModifyWrite => PayloadSize::B16,
            GupsOp::Mix { size, .. } => size,
        }
    }

    /// Draws one request kind from this template — shared by every GUPS
    /// generator so the op semantics (including the `Mix` percentage
    /// draw) cannot diverge between them. Consumes RNG state only for
    /// `Mix`.
    fn draw_kind(&self, rng: &mut SmallRng) -> RequestKind {
        match *self {
            GupsOp::Read(s) => RequestKind::Read { size: s },
            GupsOp::Write(s) => RequestKind::Write { size: s },
            GupsOp::ReadModifyWrite => RequestKind::ReadModifyWrite,
            GupsOp::Mix {
                size,
                write_percent,
            } => {
                if rng.gen_range(0u8..100) < write_percent {
                    RequestKind::Write { size }
                } else {
                    RequestKind::Read { size }
                }
            }
        }
    }
}

/// The GUPS firmware as a pull source: random addresses through a
/// mask/anti-mask filter, as many requests as flow control allows, gated
/// by the port's activation window.
#[derive(Debug, Clone)]
pub struct GupsSource {
    filter: AddressFilter,
    op: GupsOp,
    rng: SmallRng,
}

impl GupsSource {
    /// Creates a GUPS generator.
    ///
    /// # Panics
    ///
    /// Panics if the op's size is not a power of two (the firmware's
    /// alignment scheme requires it).
    pub fn new(filter: AddressFilter, op: GupsOp, seed: u64) -> GupsSource {
        assert!(
            op.payload().bytes().is_power_of_two(),
            "GUPS sizes must be powers of two for address alignment"
        );
        GupsSource {
            filter,
            op,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TrafficSource for GupsSource {
    fn next(&mut self, _now: Time, _feedback: &Feedback<'_>) -> SourceStep {
        let size = self.op.payload();
        let raw = self.rng.gen::<u64>() & !(u64::from(size.bytes()) - 1);
        let addr = self.filter.apply(raw);
        let kind = self.op.draw_kind(&mut self.rng);
        SourceStep::Op(TraceOp {
            addr: addr.into(),
            kind,
        })
    }

    fn duration_gated(&self) -> bool {
        true
    }

    fn rx_extra_flits(&self) -> u32 {
        0
    }

    fn label(&self) -> &'static str {
        "gups"
    }
}

/// GUPS over a *fabric-global* window: random addresses drawn uniformly
/// from a power-of-two window of the global address space, emitted raw so
/// the port's [cube targeting](hmc_mapping::CubeTargeting) derives the
/// CUB field from the address. Under a blocked map a one-cube-sized
/// window pins every request to cube 0; under an interleaved map the very
/// same draws spread across all cubes — the contrast the `ext-intercube`
/// experiment measures.
#[derive(Debug, Clone)]
pub struct GlobalGupsSource {
    op: GupsOp,
    window_mask: u64,
    rng: SmallRng,
}

impl GlobalGupsSource {
    /// Random ops of `op`'s kind over the first `window_bytes` of
    /// `fabric`'s global space, aligned to the request size.
    ///
    /// The map is taken up front to reject a silent skew at construction:
    /// aligning a raw global draw to a request *larger* than the
    /// interleaved map's block zeroes part of the cube field, which would
    /// pin every request to a subset of cubes while the run claims an
    /// interleaved spread — the same silent-aliasing class the checked
    /// split exists to make loud.
    ///
    /// # Panics
    ///
    /// Panics if `window_bytes` or the op size is not a power of two, the
    /// window is smaller than one request, or the aligned request size
    /// cannot reach every cube of `fabric`
    /// ([`FabricAddressMap::fits_aligned_requests`]).
    pub fn new(
        op: GupsOp,
        window_bytes: u64,
        fabric: &FabricAddressMap,
        seed: u64,
    ) -> GlobalGupsSource {
        assert!(
            window_bytes.is_power_of_two(),
            "global GUPS window must be a power of two"
        );
        assert!(
            op.payload().bytes().is_power_of_two(),
            "GUPS sizes must be powers of two for address alignment"
        );
        assert!(
            window_bytes >= u64::from(op.payload().bytes()),
            "window must hold at least one request"
        );
        assert!(
            fabric.fits_aligned_requests(op.payload().bytes()),
            "a {} B aligned request zeroes the map's cube bits: \
             requests must not exceed the interleaved block size",
            op.payload().bytes()
        );
        assert!(
            fabric.splits_whole_window(window_bytes),
            "a {window_bytes} B window draws addresses the fabric map rejects \
             (above capacity, or cube-field values with no cube behind them)"
        );
        GlobalGupsSource {
            op,
            window_mask: window_bytes - 1,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TrafficSource for GlobalGupsSource {
    fn next(&mut self, _now: Time, _feedback: &Feedback<'_>) -> SourceStep {
        let size = self.op.payload();
        let raw = self.rng.gen::<u64>() & self.window_mask & !(u64::from(size.bytes()) - 1);
        let kind = self.op.draw_kind(&mut self.rng);
        SourceStep::Op(TraceOp {
            addr: GlobalAddress::new(raw),
            kind,
        })
    }

    fn duration_gated(&self) -> bool {
        true
    }

    fn rx_extra_flits(&self) -> u32 {
        0
    }

    fn label(&self) -> &'static str {
        "gups-global"
    }
}

/// The multi-port stream firmware as a pull source: replays a finite
/// [`Trace`] in order, streaming ops instead of copying them.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    pos: usize,
}

impl TraceReplay {
    /// Replays `trace` from the beginning.
    pub fn new(trace: Trace) -> TraceReplay {
        TraceReplay { trace, pos: 0 }
    }
}

impl TrafficSource for TraceReplay {
    fn next(&mut self, _now: Time, _feedback: &Feedback<'_>) -> SourceStep {
        match self.trace.ops().get(self.pos) {
            Some(&op) => {
                self.pos += 1;
                SourceStep::Op(op)
            }
            None => SourceStep::Done,
        }
    }

    fn label(&self) -> &'static str {
        "stream"
    }
}

/// Lazy uniform-random reads confined to a vault set — the workload of
/// [`crate::random_reads_in_vaults`], emitted on demand. A bounded source
/// (`count: Some(n)`) draws exactly the same address sequence as the eager
/// generator with the same seed; an unbounded one (`count: None`) keeps
/// drawing for as long as the port's activation window lasts.
#[derive(Debug, Clone)]
pub struct UniformSource {
    map: AddressMap,
    vaults: Vec<VaultId>,
    size: PayloadSize,
    remaining: Option<u64>,
    rng: SmallRng,
}

impl UniformSource {
    /// Uniform reads of `size` bytes over `vaults`; `count: None` is
    /// unbounded (duration-gated).
    ///
    /// # Panics
    ///
    /// Panics if `vaults` is empty or contains an out-of-range vault.
    pub fn reads_in_vaults(
        map: &AddressMap,
        vaults: &[VaultId],
        size: PayloadSize,
        count: Option<u64>,
        seed: u64,
    ) -> UniformSource {
        assert!(!vaults.is_empty(), "need at least one vault");
        let g = map.geometry();
        for v in vaults {
            assert!(v.0 < g.vaults, "vault out of range");
        }
        UniformSource {
            map: *map,
            vaults: vaults.to_vec(),
            size,
            remaining: count,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// The in-block offset rule every generator shares: align to the request
/// size so a request never straddles blocks, picking the slot with the
/// caller's randomness (an RNG draw or a hash).
pub(crate) fn aligned_offset(
    block: u64,
    size: PayloadSize,
    pick_slot: impl FnOnce(u64) -> u64,
) -> u64 {
    let slots = block / u64::from(size.bytes()).max(1);
    if slots > 1 {
        pick_slot(slots) * u64::from(size.bytes())
    } else {
        0
    }
}

impl TrafficSource for UniformSource {
    fn next(&mut self, _now: Time, _feedback: &Feedback<'_>) -> SourceStep {
        if let Some(left) = &mut self.remaining {
            if *left == 0 {
                return SourceStep::Done;
            }
            *left -= 1;
        }
        let g = self.map.geometry();
        let vault = self.vaults[self.rng.gen_range(0..self.vaults.len())];
        let bank = BankId(self.rng.gen_range(0..g.banks_per_vault));
        let row = self.rng.gen_range(0..self.map.rows_per_bank());
        let offset = aligned_offset(self.map.block_size().bytes(), self.size, |slots| {
            self.rng.gen_range(0..slots)
        });
        SourceStep::Op(TraceOp::read(
            self.map.encode(vault, bank, row, offset),
            self.size,
        ))
    }

    fn duration_gated(&self) -> bool {
        self.remaining.is_none()
    }

    fn label(&self) -> &'static str {
        "uniform"
    }
}

/// Lazy sequential reads — the workload of [`crate::linear_reads`],
/// emitted on demand instead of materialized.
#[derive(Debug, Clone)]
pub struct LinearSource {
    next_addr: u64,
    size: PayloadSize,
    remaining: u64,
}

impl LinearSource {
    /// `count` reads of `size` bytes starting at `base`, each advancing by
    /// one request size. The walk is over the *global* space: a base
    /// beyond one cube's range stays intact until the port's cube
    /// targeting splits it.
    pub fn new(base: impl Into<GlobalAddress>, size: PayloadSize, count: u64) -> LinearSource {
        LinearSource {
            next_addr: base.into().raw(),
            size,
            remaining: count,
        }
    }
}

impl TrafficSource for LinearSource {
    fn next(&mut self, _now: Time, _feedback: &Feedback<'_>) -> SourceStep {
        if self.remaining == 0 {
            return SourceStep::Done;
        }
        self.remaining -= 1;
        let addr = GlobalAddress::new(self.next_addr);
        self.next_addr += u64::from(self.size.bytes());
        SourceStep::Op(TraceOp::read(addr, self.size))
    }

    fn label(&self) -> &'static str {
        "linear"
    }
}

/// Rate control: spaces the wrapped source's operations at least `gap`
/// apart, turning a flow-control-limited generator into a fixed-rate one.
///
/// Pacing delays *operations*, never feedback: completions reach the
/// inner source on every poll, exactly once, even mid-gap — so wrapping a
/// closed-loop source (a paced pointer chase, a throttled offload stream)
/// is safe. Ops the inner source answers with while the gap is still
/// open are buffered and released on the pacing schedule, in order.
#[derive(Debug, Clone)]
pub struct Paced<S> {
    inner: S,
    gap: Delay,
    earliest: Time,
    /// Ops pulled from the inner source (to deliver its feedback) but not
    /// yet released by the pacing schedule.
    pending: VecDeque<TraceOp>,
    inner_done: bool,
}

impl<S: TrafficSource> Paced<S> {
    /// Wraps `inner`, spacing its ops by `gap`.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is zero (use the inner source directly).
    pub fn new(inner: S, gap: Delay) -> Paced<S> {
        assert!(!gap.is_zero(), "pacing gap must be positive");
        Paced {
            inner,
            gap,
            earliest: Time::ZERO,
            pending: VecDeque::new(),
            inner_done: false,
        }
    }
}

impl<S: TrafficSource> TrafficSource for Paced<S> {
    fn next(&mut self, now: Time, feedback: &Feedback<'_>) -> SourceStep {
        // Poll the inner source whenever there is feedback to deliver (a
        // closed-loop inner must see every completion) or nothing is
        // buffered; its answer is stashed, not returned, so pacing and
        // feedback delivery stay decoupled.
        if !self.inner_done && (!feedback.completions.is_empty() || self.pending.is_empty()) {
            match self.inner.next(now, feedback) {
                SourceStep::Op(op) => self.pending.push_back(op),
                SourceStep::Done => self.inner_done = true,
                SourceStep::Blocked => {
                    if self.pending.is_empty() {
                        return SourceStep::Blocked;
                    }
                }
                SourceStep::WaitUntil(t) => {
                    if self.pending.is_empty() {
                        return SourceStep::WaitUntil(t.max(self.earliest));
                    }
                }
            }
        }
        if self.pending.is_empty() {
            debug_assert!(self.inner_done, "unbuffered non-done inner answered above");
            return SourceStep::Done;
        }
        if now < self.earliest {
            return SourceStep::WaitUntil(self.earliest);
        }
        let op = self.pending.pop_front().expect("checked non-empty");
        self.earliest = now + self.gap;
        SourceStep::Op(op)
    }

    fn duration_gated(&self) -> bool {
        self.inner.duration_gated()
    }

    fn rx_extra_flits(&self) -> u32 {
        self.inner.rx_extra_flits()
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }
}

/// SplitMix64: the deterministic address-derivation hash behind
/// [`PointerChase`].
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pointer-chasing latency probe: `walkers` independent chains, each
/// deriving its next read address *deterministically from the completed
/// transaction* (a hash of the returned address), so every hop is a full
/// dependent round trip — the key diagnostic of the companion study
/// ("Demystifying the Characteristics of 3D-Stacked Memories", ISPASS
/// 2017). One walker measures unloaded latency; N walkers measure how far
/// memory-level parallelism hides it.
#[derive(Debug, Clone)]
pub struct PointerChase {
    map: AddressMap,
    vaults: Vec<VaultId>,
    size: PayloadSize,
    salt: u64,
    /// Reads still to issue, per walker.
    remaining: Vec<u64>,
    /// Ops derived and ready to issue: (walker, address).
    ready: VecDeque<(u16, Address)>,
    /// Issue-order index → walker, for ops in flight.
    in_flight: BTreeMap<u64, u16>,
    emitted: u64,
}

impl PointerChase {
    /// `walkers` chains of `hops` dependent reads each, of `size` bytes,
    /// confined to `vaults`; `seed` fixes every address.
    ///
    /// # Panics
    ///
    /// Panics if `walkers` or `hops` is zero, or `vaults` is empty or out
    /// of range.
    pub fn new(
        map: &AddressMap,
        vaults: &[VaultId],
        size: PayloadSize,
        walkers: u16,
        hops: u64,
        seed: u64,
    ) -> PointerChase {
        assert!(walkers > 0, "need at least one walker");
        assert!(hops > 0, "need at least one hop per walker");
        assert!(!vaults.is_empty(), "need at least one vault");
        let g = map.geometry();
        for v in vaults {
            assert!(v.0 < g.vaults, "vault out of range");
        }
        let mut chase = PointerChase {
            map: *map,
            vaults: vaults.to_vec(),
            size,
            salt: splitmix64(seed),
            remaining: vec![hops; usize::from(walkers)],
            ready: VecDeque::new(),
            in_flight: BTreeMap::new(),
            emitted: 0,
        };
        for w in 0..walkers {
            let start =
                chase.chase_addr(seed ^ (u64::from(w) + 1).wrapping_mul(0xA076_1D64_78BD_642F));
            chase.ready.push_back((w, start));
        }
        chase
    }

    /// Maps a hash value into the chase's address set (vault subset, any
    /// bank/row, aligned to the request size).
    fn chase_addr(&self, h: u64) -> Address {
        let h = splitmix64(h);
        let g = self.map.geometry();
        let vault = self.vaults[(h % self.vaults.len() as u64) as usize];
        let bank = BankId(((h >> 17) % u64::from(g.banks_per_vault)) as u8);
        let row = (h >> 27) % self.map.rows_per_bank();
        let offset = aligned_offset(self.map.block_size().bytes(), self.size, |slots| {
            (h >> 7) % slots
        });
        self.map.encode(vault, bank, row, offset)
    }

    /// The next address of a chain whose last read returned from `addr`.
    fn follow(&self, addr: GlobalAddress) -> Address {
        self.chase_addr(addr.raw() ^ self.salt)
    }

    /// The exact address sequence a *single-walker* chase will issue —
    /// the chain is deterministic, so it can be unrolled into an
    /// equivalent open-loop [`Trace`] (used to cross-check that a
    /// closed-loop chase and its serial replay cost identical time).
    ///
    /// # Panics
    ///
    /// Panics on a multi-walker chase, whose interleaving depends on
    /// completion order.
    pub fn unrolled_trace(&self) -> Trace {
        assert_eq!(
            self.remaining.len(),
            1,
            "only a single-walker chase unrolls deterministically"
        );
        let (_, mut addr) = *self.ready.front().expect("unstarted chase has a seed op");
        let mut ops = Vec::new();
        for _ in 0..self.remaining[0] {
            ops.push(TraceOp::read(addr, self.size));
            addr = self.follow(addr.into());
        }
        Trace::from_ops(ops)
    }
}

impl TrafficSource for PointerChase {
    fn next(&mut self, _now: Time, feedback: &Feedback<'_>) -> SourceStep {
        for c in feedback.completions {
            let Some(w) = self.in_flight.remove(&c.index) else {
                continue;
            };
            if self.remaining[usize::from(w)] > 0 {
                let next = self.follow(c.op.addr);
                self.ready.push_back((w, next));
            }
        }
        match self.ready.pop_front() {
            Some((w, addr)) => {
                self.remaining[usize::from(w)] -= 1;
                self.in_flight.insert(self.emitted, w);
                self.emitted += 1;
                SourceStep::Op(TraceOp::read(addr, self.size))
            }
            None if self.in_flight.is_empty() => SourceStep::Done,
            None => SourceStep::Blocked,
        }
    }

    fn label(&self) -> &'static str {
        "chase"
    }
}

/// NOM-style offload stream (Rezaei et al., "Network-On-Memory", 2020):
/// copies `blocks` blocks from a source vault to a destination vault as
/// paired read→dependent-write bursts. Each block is first read from the
/// source region; when the read data returns, the dependent write to the
/// same bank/row of the destination vault is issued; the pair retires when
/// the write completes. At most `window` pairs are in flight — the
/// host-mediated copy loop whose NoC round trips NOM's in-memory network
/// is designed to eliminate.
///
/// [`OffloadSource::between_cubes`] lifts the copy onto a memory network:
/// source and destination may live in *different cubes* of a
/// [`FabricAddressMap`]-described fabric, so every read returns from one
/// cube and its dependent write crosses the fabric to another — the
/// inter-cube transfer NOM proposes doing inside the memory network. The
/// port running such a stream must use
/// [`CubeTargeting::Addressed`](hmc_mapping::CubeTargeting) over the same
/// map.
#[derive(Debug, Clone)]
pub struct OffloadSource {
    map: AddressMap,
    /// How vault-local addresses embed into the fabric-global space (the
    /// identity map for the classic same-cube copy).
    fabric: FabricAddressMap,
    size: PayloadSize,
    src_cube: CubeId,
    dst_cube: CubeId,
    src: VaultId,
    dst: VaultId,
    blocks: u64,
    window: u16,
    issued_reads: u64,
    retired: u64,
    pending_writes: VecDeque<GlobalAddress>,
}

impl OffloadSource {
    /// A copy of `blocks` blocks of `size` bytes from `src` to `dst`
    /// within one cube, with at most `window` pairs outstanding.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` or `window` is zero or a vault is out of range.
    pub fn new(
        map: &AddressMap,
        src: VaultId,
        dst: VaultId,
        size: PayloadSize,
        blocks: u64,
        window: u16,
    ) -> OffloadSource {
        OffloadSource::between_cubes(
            map,
            FabricAddressMap::single(),
            (CubeId::HOST, src),
            (CubeId::HOST, dst),
            size,
            blocks,
            window,
        )
    }

    /// A copy of `blocks` blocks of `size` bytes from vault `src.1` of
    /// cube `src.0` to vault `dst.1` of cube `dst.0`, with at most
    /// `window` pairs outstanding. Addresses are emitted fabric-global
    /// through `fabric`, so the host derives each request's CUB field
    /// from the address itself.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` or `window` is zero, a vault is out of range,
    /// or a cube is outside `fabric`.
    pub fn between_cubes(
        map: &AddressMap,
        fabric: FabricAddressMap,
        src: (CubeId, VaultId),
        dst: (CubeId, VaultId),
        size: PayloadSize,
        blocks: u64,
        window: u16,
    ) -> OffloadSource {
        assert!(blocks > 0, "need at least one block to copy");
        assert!(window > 0, "need a nonzero copy window");
        let g = map.geometry();
        assert!(
            src.1 .0 < g.vaults && dst.1 .0 < g.vaults,
            "vault out of range"
        );
        assert!(
            src.0 .0 < fabric.cube_count() && dst.0 .0 < fabric.cube_count(),
            "copy endpoint cube outside the fabric"
        );
        OffloadSource {
            map: *map,
            fabric,
            size,
            src_cube: src.0,
            dst_cube: dst.0,
            src: src.1,
            dst: dst.1,
            blocks,
            window,
            issued_reads: 0,
            retired: 0,
            pending_writes: VecDeque::new(),
        }
    }

    /// Read address of block `i`: a linear walk through the source vault's
    /// banks, then rows, embedded at the source cube.
    fn read_addr(&self, i: u64) -> GlobalAddress {
        let g = self.map.geometry();
        let banks = u64::from(g.banks_per_vault);
        let bank = BankId((i % banks) as u8);
        let row = (i / banks) % self.map.rows_per_bank();
        self.fabric
            .join(self.src_cube, self.map.encode(self.src, bank, row, 0))
    }

    /// Pairs retired so far (read and dependent write both completed).
    pub fn pairs_retired(&self) -> u64 {
        self.retired
    }
}

impl TrafficSource for OffloadSource {
    fn next(&mut self, _now: Time, feedback: &Feedback<'_>) -> SourceStep {
        for c in feedback.completions {
            if c.op.kind.is_read() {
                // The read data arrived: the dependent write targets the
                // same bank/row in the destination vault — possibly in a
                // different cube, which is exactly the inter-cube copy.
                let (_, local) = self
                    .fabric
                    .split(c.op.addr)
                    .expect("completed read carried an in-fabric address");
                let loc = self.map.decode(local);
                let w = self
                    .map
                    .encode(self.dst, loc.bank, loc.block_row, loc.offset);
                self.pending_writes
                    .push_back(self.fabric.join(self.dst_cube, w));
            } else {
                self.retired += 1;
            }
        }
        if let Some(addr) = self.pending_writes.pop_front() {
            return SourceStep::Op(TraceOp::write(addr, self.size));
        }
        if self.issued_reads < self.blocks
            && self.issued_reads - self.retired < u64::from(self.window)
        {
            let addr = self.read_addr(self.issued_reads);
            self.issued_reads += 1;
            return SourceStep::Op(TraceOp::read(addr, self.size));
        }
        if self.retired == self.blocks {
            SourceStep::Done
        } else {
            SourceStep::Blocked
        }
    }

    fn label(&self) -> &'static str {
        "offload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_reads_in_vaults;

    fn map() -> AddressMap {
        AddressMap::hmc_gen2_default()
    }

    /// Drives a source to exhaustion with an immediate-completion loop,
    /// `outstanding_cap` requests in flight at most.
    fn drain(source: &mut dyn TrafficSource, outstanding_cap: usize, limit: usize) -> Vec<TraceOp> {
        let mut issued = Vec::new();
        let mut in_flight: VecDeque<Completion> = VecDeque::new();
        let mut index = 0u64;
        let mut fresh: Vec<Completion> = Vec::new();
        loop {
            let fb = Feedback {
                completions: &fresh,
                outstanding: in_flight.len() as u16,
            };
            let step = source.next(Time::ZERO, &fb);
            fresh.clear();
            match step {
                SourceStep::Op(op) => {
                    issued.push(op);
                    in_flight.push_back(Completion {
                        index,
                        op,
                        issued_at: Time::ZERO,
                        completed_at: Time::ZERO,
                    });
                    index += 1;
                    if in_flight.len() >= outstanding_cap {
                        fresh.push(in_flight.pop_front().unwrap());
                    }
                }
                SourceStep::Blocked => {
                    let c = in_flight
                        .pop_front()
                        .expect("blocked with nothing in flight");
                    fresh.push(c);
                }
                SourceStep::WaitUntil(_) => panic!("drain does not advance time"),
                SourceStep::Done => break,
            }
            assert!(issued.len() <= limit, "source never finished");
        }
        issued
    }

    #[test]
    fn trace_replay_streams_in_order_then_done() {
        let trace = random_reads_in_vaults(&map(), &[VaultId(3)], PayloadSize::B32, 10, 5);
        let mut replay = TraceReplay::new(trace.clone());
        let ops = drain(&mut replay, 4, 100);
        assert_eq!(ops, trace.ops());
        assert_eq!(replay.next(Time::ZERO, &Feedback::EMPTY), SourceStep::Done);
    }

    #[test]
    fn uniform_source_matches_the_eager_generator() {
        let m = map();
        let vaults = [VaultId(1), VaultId(9)];
        let eager = random_reads_in_vaults(&m, &vaults, PayloadSize::B64, 64, 77);
        let mut lazy = UniformSource::reads_in_vaults(&m, &vaults, PayloadSize::B64, Some(64), 77);
        let ops = drain(&mut lazy, 8, 100);
        assert_eq!(ops, eager.ops(), "lazy and eager draws must be identical");
        assert!(!lazy.duration_gated(), "bounded uniform runs to exhaustion");
        assert!(
            UniformSource::reads_in_vaults(&m, &vaults, PayloadSize::B64, None, 0).duration_gated(),
            "unbounded uniform is window-gated"
        );
    }

    #[test]
    fn linear_source_walks_sequentially() {
        let mut src = LinearSource::new(Address::new(0x400), PayloadSize::B128, 4);
        let ops = drain(&mut src, 2, 10);
        let addrs: Vec<u64> = ops.iter().map(|op| op.addr.raw()).collect();
        assert_eq!(addrs, vec![0x400, 0x480, 0x500, 0x580]);
    }

    #[test]
    fn gups_source_filters_and_aligns() {
        let m = map();
        let filter = hmc_mapping::AccessPattern::Vaults { count: 2 }.filter(&m);
        let mut src = GupsSource::new(filter, GupsOp::Read(PayloadSize::B64), 3);
        assert!(src.duration_gated());
        assert_eq!(src.rx_extra_flits(), 0);
        for _ in 0..64 {
            let SourceStep::Op(op) = src.next(Time::ZERO, &Feedback::EMPTY) else {
                panic!("GUPS always has a next op");
            };
            assert_eq!(op.addr.raw() % 64, 0, "aligned");
            assert!(m.decode(op.addr.local_unchecked()).vault.0 < 2, "filtered");
        }
    }

    #[test]
    fn paced_source_spaces_ops_by_the_gap() {
        let inner = LinearSource::new(Address::new(0), PayloadSize::B16, 3);
        let mut src = Paced::new(inner, Delay::from_ns(100));
        let t0 = Time::ZERO;
        assert!(matches!(src.next(t0, &Feedback::EMPTY), SourceStep::Op(_)));
        assert_eq!(
            src.next(t0, &Feedback::EMPTY),
            SourceStep::WaitUntil(Time::from_ns(100))
        );
        let t1 = Time::from_ns(100);
        assert!(matches!(src.next(t1, &Feedback::EMPTY), SourceStep::Op(_)));
        let t2 = Time::from_ns(250);
        assert!(matches!(src.next(t2, &Feedback::EMPTY), SourceStep::Op(_)));
        // Exhaustion needs no gap: nothing is left to pace.
        assert_eq!(src.next(t2, &Feedback::EMPTY), SourceStep::Done);
    }

    #[test]
    fn paced_closed_loop_source_never_loses_completions() {
        // Regression: completions arriving while the pacing gap is open
        // must still reach a closed-loop inner exactly once — dropping
        // one would leave the chase thinking its read is in flight
        // forever (and trip the port's blocked-with-nothing-outstanding
        // protocol check).
        let m = map();
        let vaults: Vec<VaultId> = (0..4).map(VaultId).collect();
        let chase = PointerChase::new(&m, &vaults, PayloadSize::B64, 1, 5, 3);
        let mut src = Paced::new(chase, Delay::from_ns(1_000));
        let mut now = Time::ZERO;
        let mut index = 0u64;
        let mut done = 0;
        while done < 5 {
            match src.next(now, &Feedback::EMPTY) {
                SourceStep::Op(op) => {
                    // Complete the read 100 ns later — mid-gap — and hand
                    // the completion over on that (early) poll.
                    now += Delay::from_ns(100);
                    let c = Completion {
                        index,
                        op,
                        issued_at: now,
                        completed_at: now,
                    };
                    index += 1;
                    done += 1;
                    let fb = Feedback {
                        completions: std::slice::from_ref(&c),
                        outstanding: 0,
                    };
                    match src.next(now, &fb) {
                        SourceStep::WaitUntil(t) => now = t,
                        // The final completion legitimately exhausts the
                        // chain with nothing left to pace.
                        SourceStep::Done => assert_eq!(done, 5, "early exhaustion"),
                        SourceStep::Op(_) => panic!("gap must still be open at +100 ns"),
                        SourceStep::Blocked => panic!("completion was dropped"),
                    }
                }
                SourceStep::WaitUntil(t) => now = t,
                SourceStep::Blocked => panic!("chase starved: a completion was lost"),
                SourceStep::Done => break,
            }
        }
        assert_eq!(done, 5, "every hop of the paced chase completed");
        assert_eq!(src.next(now, &Feedback::EMPTY), SourceStep::Done);
    }

    #[test]
    fn single_walker_chase_is_strictly_serial_and_deterministic() {
        let m = map();
        let vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
        let mk = || PointerChase::new(&m, &vaults, PayloadSize::B64, 1, 20, 42);
        let expected = mk().unrolled_trace();
        let mut chase = mk();
        let ops = drain(&mut chase, 1, 100);
        assert_eq!(ops.len(), 20);
        assert_eq!(ops, expected.ops(), "chase follows its unrolled trace");
        // Every hop depends on the previous: with one walker the source
        // must block after each op.
        let mut chase = mk();
        assert!(matches!(
            chase.next(Time::ZERO, &Feedback::EMPTY),
            SourceStep::Op(_)
        ));
        assert_eq!(
            chase.next(Time::ZERO, &Feedback::EMPTY),
            SourceStep::Blocked
        );
    }

    #[test]
    fn chase_addresses_stay_in_the_vault_subset_and_aligned() {
        let m = map();
        let vaults = [VaultId(2), VaultId(5)];
        let mut chase = PointerChase::new(&m, &vaults, PayloadSize::B32, 4, 25, 9);
        let ops = drain(&mut chase, 4, 1000);
        assert_eq!(ops.len(), 100, "4 walkers x 25 hops");
        for op in &ops {
            let v = m.decode(op.addr.local_unchecked()).vault;
            assert!(vaults.contains(&v), "address escaped the vault subset");
            assert_eq!(op.addr.raw() % 32, 0, "aligned to request size");
        }
        // The walk must not collapse onto a few addresses.
        let distinct: std::collections::BTreeSet<u64> =
            ops.iter().map(|op| op.addr.raw()).collect();
        assert!(distinct.len() > 90, "chase addresses look degenerate");
    }

    #[test]
    fn offload_pairs_every_read_with_a_dependent_write() {
        let m = map();
        let mut src = OffloadSource::new(&m, VaultId(0), VaultId(8), PayloadSize::B128, 30, 4);
        let ops = drain(&mut src, 4, 1000);
        assert_eq!(ops.len(), 60, "30 reads + 30 writes");
        assert_eq!(src.pairs_retired(), 30);
        let reads: Vec<&TraceOp> = ops.iter().filter(|op| op.kind.is_read()).collect();
        let writes: Vec<&TraceOp> = ops.iter().filter(|op| !op.kind.is_read()).collect();
        assert_eq!(reads.len(), 30);
        assert_eq!(writes.len(), 30);
        for (r, w) in reads.iter().zip(&writes) {
            let rl = m.decode(r.addr.local_unchecked());
            let wl = m.decode(w.addr.local_unchecked());
            assert_eq!(rl.vault, VaultId(0));
            assert_eq!(wl.vault, VaultId(8));
            assert_eq!(
                (rl.bank, rl.block_row),
                (wl.bank, wl.block_row),
                "write mirrors its read's bank/row"
            );
        }
    }

    #[test]
    fn offload_window_bounds_outstanding_pairs() {
        let m = map();
        let mut src = OffloadSource::new(&m, VaultId(0), VaultId(1), PayloadSize::B64, 100, 3);
        // Pull without completing anything: exactly `window` reads, then
        // blocked.
        for _ in 0..3 {
            assert!(matches!(
                src.next(Time::ZERO, &Feedback::EMPTY),
                SourceStep::Op(op) if op.kind.is_read()
            ));
        }
        assert_eq!(src.next(Time::ZERO, &Feedback::EMPTY), SourceStep::Blocked);
    }

    #[test]
    fn source_factory_builds_per_seed() {
        let factory = source_factory(|seed| {
            Box::new(LinearSource::new(
                Address::new(seed * 0x1000),
                PayloadSize::B16,
                1,
            )) as Box<dyn TrafficSource>
        });
        let mut a = factory(1);
        let mut b = factory(2);
        let SourceStep::Op(op_a) = a.next(Time::ZERO, &Feedback::EMPTY) else {
            panic!()
        };
        let SourceStep::Op(op_b) = b.next(Time::ZERO, &Feedback::EMPTY) else {
            panic!()
        };
        assert_eq!(op_a.addr.raw(), 0x1000);
        assert_eq!(op_b.addr.raw(), 0x2000);
    }
}
