//! CLI robustness for `perfgate`: bad invocations exit nonzero with a
//! one-line message instead of panicking.

use std::process::Command;

fn perfgate(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perfgate"))
        .args(args)
        .output()
        .expect("spawn perfgate")
}

#[test]
fn missing_baseline_file_exits_nonzero_with_one_line_error() {
    let out = perfgate(&[
        "--baseline",
        "/nonexistent/perfgate-baseline.json",
        "--smoke",
    ]);
    assert!(!out.status.success(), "missing baseline must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read baseline"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
    // The gate must fail *before* burning time on the basket.
    assert!(
        !err.contains("rep 1"),
        "baseline errors must precede any measurement: {err}"
    );
}

#[test]
fn bad_flags_exit_nonzero_without_panicking() {
    for args in [
        &["--reps", "0"][..],
        &["--reps", "abc"][..],
        &["--baseline"][..],
        &["--no-such-flag"][..],
    ] {
        let out = perfgate(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "args {args:?}: {err}");
        assert!(!err.contains("panicked"), "args {args:?}: {err}");
    }
}
