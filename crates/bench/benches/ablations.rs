//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! per-bank queue depth, link protocol overhead, NoC topology (quadrants
//! vs flat crossbar), and tag-pool size. Each configuration's simulated
//! outcome is printed once (stderr), and Criterion times the run — so the
//! suite doubles as a sensitivity study and a performance regression net.

use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hmc_sim::mapping::{AddressMap, BlockSize, Geometry, QuadrantId};
use hmc_sim::prelude::*;

fn gups_128b(cfg: SystemConfig, ports: usize) -> RunReport {
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); ports];
    SystemSim::new(cfg, specs).run_gups(Delay::from_us(10), Delay::from_us(40))
}

/// Ablation 1: per-bank queue depth. The paper infers ~144-entry per-bank
/// queues from Little's law; here the knob directly moves the outstanding
/// request ceiling of bank-limited patterns.
fn ablate_bank_queue(c: &mut Criterion) {
    let printed = Mutex::new(Vec::new());
    let mut group = c.benchmark_group("ablation_bank_queue");
    group.sample_size(10);
    for depth in [18usize, 72, 288] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut cfg = SystemConfig::ac510(1);
                cfg.device.vault.bank_queue_capacity = depth;
                let filter = AccessPattern::Banks {
                    vault: VaultId(0),
                    count: 2,
                }
                .filter(&cfg.device.map);
                let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
                let report =
                    SystemSim::new(cfg, specs).run_gups(Delay::from_us(10), Delay::from_us(40));
                printed.lock().unwrap().push(format!(
                    "[bank_queue={depth}] 2-bank outstanding ≈ {:.0}, latency {:.2} us",
                    report.estimated_outstanding(),
                    report.mean_latency_us()
                ));
                report.total_accesses()
            });
        });
    }
    group.finish();
    let mut lines = printed.into_inner().unwrap();
    lines.dedup();
    for l in lines.iter().take(3) {
        eprintln!("{l}");
    }
}

/// Ablation 2: link protocol overhead. Sets the effective-bandwidth
/// ceiling of Figures 6/13 (the ~23 GB/s plateau at the default 0.40).
fn ablate_link_overhead(c: &mut Criterion) {
    let printed = Mutex::new(Vec::new());
    let mut group = c.benchmark_group("ablation_link_overhead");
    group.sample_size(10);
    for overhead in [0.0f64, 0.40, 0.80] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{overhead:.2}")),
            &overhead,
            |b, &overhead| {
                b.iter(|| {
                    let mut cfg = SystemConfig::ac510(1);
                    cfg.device.link.protocol_overhead = overhead;
                    cfg.host.link.protocol_overhead = overhead;
                    let report = gups_128b(cfg, 9);
                    printed.lock().unwrap().push(format!(
                        "[overhead={overhead:.2}] 16-vault 128B: {:.2} GB/s",
                        report.total_bandwidth_gbs()
                    ));
                    report.total_accesses()
                });
            },
        );
    }
    group.finish();
    let mut lines = printed.into_inner().unwrap();
    lines.dedup();
    for l in lines.iter().take(3) {
        eprintln!("{l}");
    }
}

/// Ablation 3: NoC topology — the paper's quadrant hierarchy vs a flat
/// 16-vault crossbar (one quadrant). Latency spread across vaults is the
/// interesting output: the flat crossbar removes the hop asymmetry.
fn ablate_topology(c: &mut Criterion) {
    let printed = Mutex::new(Vec::new());
    let mut group = c.benchmark_group("ablation_topology");
    group.sample_size(10);
    for quadrants in [4u8, 1] {
        let label = if quadrants == 4 { "quadrants" } else { "flat" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &quadrants, |b, &q| {
            b.iter(|| {
                let mut cfg = SystemConfig::ac510(1);
                let mut geometry = Geometry::hmc_gen2();
                geometry.quadrants = q;
                cfg.device.map = AddressMap::new(geometry, BlockSize::B128);
                cfg.device.link_quadrants = if q == 4 {
                    vec![QuadrantId(0), QuadrantId(1)]
                } else {
                    vec![QuadrantId(0)]
                };
                cfg.host.link_count = cfg.device.link_quadrants.len() as u8;
                let report = gups_128b(cfg, 9);
                printed.lock().unwrap().push(format!(
                    "[topology={label}] {:.2} GB/s at {:.2} us",
                    report.total_bandwidth_gbs(),
                    report.mean_latency_us()
                ));
                report.total_accesses()
            });
        });
    }
    group.finish();
    let mut lines = printed.into_inner().unwrap();
    lines.dedup();
    for l in lines.iter().take(2) {
        eprintln!("{l}");
    }
}

/// Ablation 4: GUPS tag-pool size — the outstanding-request ceiling that
/// caps small-request bandwidth (Section IV-A).
fn ablate_tags(c: &mut Criterion) {
    let printed = Mutex::new(Vec::new());
    let mut group = c.benchmark_group("ablation_tag_pool");
    group.sample_size(10);
    for tags in [8u16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(tags), &tags, |b, &tags| {
            b.iter(|| {
                let cfg = SystemConfig::ac510(1);
                let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
                let specs =
                    vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B16)).with_tags(tags); 9];
                let report =
                    SystemSim::new(cfg, specs).run_gups(Delay::from_us(10), Delay::from_us(40));
                printed.lock().unwrap().push(format!(
                    "[tags={tags}] 16B reads: {:.2} GB/s at {:.2} us",
                    report.total_bandwidth_gbs(),
                    report.mean_latency_us()
                ));
                report.total_accesses()
            });
        });
    }
    group.finish();
    let mut lines = printed.into_inner().unwrap();
    lines.dedup();
    for l in lines.iter().take(3) {
        eprintln!("{l}");
    }
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_bank_queue, ablate_link_overhead, ablate_topology, ablate_tags
}
criterion_main!(ablations);
