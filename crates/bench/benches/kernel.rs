//! Micro-benchmarks of the simulation substrates: event kernel, switch,
//! DRAM bank engine, link serializer, address mapping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use hmc_sim::des::{AutoWake, Component, Ctx, Delay, Engine, Time, WakeToken};
use hmc_sim::dram::{DramTiming, VaultMemory};
use hmc_sim::link::{LinkConfig, LinkTx};
use hmc_sim::mapping::AddressMap;
use hmc_sim::noc::{SwitchConfig, SwitchCore, SwitchEntry};
use hmc_sim::packet::Address;

/// A component that reschedules itself `remaining` times.
struct SelfTicker {
    remaining: u64,
}

impl Component<()> for SelfTicker {
    fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(Delay::from_ns(1), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("des_engine_100k_events", |b| {
        b.iter_batched(
            || {
                let mut e: Engine<()> = Engine::new();
                let id = e.add_component(Box::new(SelfTicker { remaining: 100_000 }));
                e.schedule(Time::ZERO, id, ());
                e
            },
            |mut e| e.run_to_quiescence(),
            BatchSize::SmallInput,
        );
    });
}

/// Cycles simulated by the idle-skip comparison benches.
const TICK_CYCLES: u64 = 100_000;
/// One "injection" (unit of real work) every 100 cycles — a 1% rate, the
/// low-load regime where fig6-class sweeps spend most of their time.
const TICK_INJECT_EVERY: u64 = 100;
const TICK_PERIOD: Delay = Delay::from_ns(5);

/// The pre-refactor host pattern: one self-message per FPGA cycle, with
/// real work on 1% of them.
struct PerCycleTicker {
    cycle: u64,
    work: u64,
}

impl Component<()> for PerCycleTicker {
    fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
        if self.cycle.is_multiple_of(TICK_INJECT_EVERY) {
            self.work += 1;
        }
        self.cycle += 1;
        if self.cycle < TICK_CYCLES {
            ctx.send_self(TICK_PERIOD, ());
        }
    }
}

/// The event-driven pattern: a timer armed straight at the next busy
/// cycle; the 99 idle cycles in between cost no engine events at all.
struct IdleSkipTicker {
    cycle: u64,
    work: u64,
    wake: AutoWake,
}

impl IdleSkipTicker {
    fn work_and_rearm(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.work += 1;
        self.cycle += TICK_INJECT_EVERY;
        if self.cycle < TICK_CYCLES {
            let at = Time::ZERO + TICK_PERIOD * self.cycle;
            self.wake.set(ctx, Some(at));
        }
    }
}

impl Component<()> for IdleSkipTicker {
    fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
        self.work_and_rearm(ctx);
    }
    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, ()>) {
        if self.wake.fired(token) {
            self.work_and_rearm(ctx);
        }
    }
}

fn per_cycle_engine() -> Engine<()> {
    let mut e: Engine<()> = Engine::new();
    let id = e.add_component(Box::new(PerCycleTicker { cycle: 0, work: 0 }));
    e.schedule(Time::ZERO, id, ());
    e
}

fn idle_skip_engine() -> Engine<()> {
    let mut e: Engine<()> = Engine::new();
    let id = e.add_component(Box::new(IdleSkipTicker {
        cycle: 0,
        work: 0,
        wake: AutoWake::new(),
    }));
    e.schedule(Time::ZERO, id, ());
    e
}

/// Per-cycle ticking vs event-driven wakeups at a 1% injection rate: the
/// kernel-level version of the host idle-skip refactor. Both variants
/// perform identical simulated work (1000 injections over 100k cycles);
/// only the event count differs. The dispatched-message counts print once
/// so bench logs record the reduction alongside the timings.
fn bench_idle_skip(c: &mut Criterion) {
    let mut per_cycle = per_cycle_engine();
    per_cycle.run_to_quiescence();
    let mut idle_skip = idle_skip_engine();
    idle_skip.run_to_quiescence();
    let (p, i) = (per_cycle.stats(), idle_skip.stats());
    eprintln!(
        "idle-skip @1% injection over {TICK_CYCLES} cycles: per-cycle ticking dispatched \
         {} events, event-driven wakeups dispatched {} ({:.0}x fewer)",
        p.dispatched,
        i.dispatched,
        p.dispatched as f64 / i.dispatched as f64
    );
    assert!(
        i.dispatched * 50 < p.dispatched,
        "event-driven variant must dispatch ~100x fewer events"
    );
    c.bench_function("ticker_per_cycle_1pct_load", |b| {
        b.iter_batched(
            per_cycle_engine,
            |mut e| e.run_to_quiescence(),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("ticker_event_driven_1pct_load", |b| {
        b.iter_batched(
            idle_skip_engine,
            |mut e| e.run_to_quiescence(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_switch(c: &mut Criterion) {
    let cfg = SwitchConfig {
        inputs: 8,
        outputs: 8,
        input_capacity_flits: 1_000_000,
        hop_latency: Delay::from_ns(2),
        flit_time: Delay::from_ps(800),
    };
    c.bench_function("switch_10k_packets", |b| {
        b.iter_batched(
            || {
                let mut sw: SwitchCore<u32> = SwitchCore::new(cfg, &[10_000_000; 8]);
                for i in 0..10_000u32 {
                    sw.try_enqueue(
                        (i % 8) as usize,
                        SwitchEntry {
                            output: ((i * 7) % 8) as usize,
                            flits: 2,
                            payload: i,
                        },
                    )
                    .expect("huge buffers");
                }
                sw
            },
            |mut sw| {
                let mut now = Time::ZERO;
                let mut total = 0usize;
                loop {
                    total += sw.service(now).len();
                    match sw.next_wake(now) {
                        Some(t) => now = t,
                        None => break,
                    }
                }
                total
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_vault_memory(c: &mut Criterion) {
    c.bench_function("vault_memory_10k_reads", |b| {
        b.iter_batched(
            || VaultMemory::new(16, DramTiming::hmc_gen2()),
            |mut v| {
                let mut last = Time::ZERO;
                for i in 0..10_000u64 {
                    last = v.read(last, (i % 16) as usize, 4);
                }
                last
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link_tx_10k_packets", |b| {
        b.iter_batched(
            || {
                let mut cfg = LinkConfig::ac510_default();
                cfg.input_buffer_flits = 1_000_000;
                let mut tx: LinkTx<u32> = LinkTx::new(&cfg);
                for i in 0..10_000u32 {
                    tx.enqueue(i, 9);
                }
                tx
            },
            |mut tx| tx.service(Time::ZERO).len(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_mapping(c: &mut Criterion) {
    let map = AddressMap::hmc_gen2_default();
    c.bench_function("address_decode_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let loc = map.decode(Address::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                acc += u64::from(loc.vault.0) + u64::from(loc.bank.0);
            }
            acc
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = kernel;
    config = config();
    targets = bench_engine, bench_idle_skip, bench_switch, bench_vault_memory, bench_link, bench_mapping
}
criterion_main!(kernel);
