//! Micro-benchmarks of the simulation substrates: event kernel, switch,
//! DRAM bank engine, link serializer, address mapping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use hmc_sim::des::{Component, Ctx, Delay, Engine, Time};
use hmc_sim::dram::{DramTiming, VaultMemory};
use hmc_sim::link::{LinkConfig, LinkTx};
use hmc_sim::mapping::AddressMap;
use hmc_sim::noc::{SwitchConfig, SwitchCore, SwitchEntry};
use hmc_sim::packet::Address;

/// A component that reschedules itself `remaining` times.
struct SelfTicker {
    remaining: u64,
}

impl Component<()> for SelfTicker {
    fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(Delay::from_ns(1), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("des_engine_100k_events", |b| {
        b.iter_batched(
            || {
                let mut e: Engine<()> = Engine::new();
                let id = e.add_component(Box::new(SelfTicker { remaining: 100_000 }));
                e.schedule(Time::ZERO, id, ());
                e
            },
            |mut e| e.run_to_quiescence(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_switch(c: &mut Criterion) {
    let cfg = SwitchConfig {
        inputs: 8,
        outputs: 8,
        input_capacity_flits: 1_000_000,
        hop_latency: Delay::from_ns(2),
        flit_time: Delay::from_ps(800),
    };
    c.bench_function("switch_10k_packets", |b| {
        b.iter_batched(
            || {
                let mut sw: SwitchCore<u32> = SwitchCore::new(cfg, &[10_000_000; 8]);
                for i in 0..10_000u32 {
                    sw.try_enqueue(
                        (i % 8) as usize,
                        SwitchEntry {
                            output: ((i * 7) % 8) as usize,
                            flits: 2,
                            payload: i,
                        },
                    )
                    .expect("huge buffers");
                }
                sw
            },
            |mut sw| {
                let mut now = Time::ZERO;
                let mut total = 0usize;
                loop {
                    total += sw.service(now).len();
                    match sw.next_wake(now) {
                        Some(t) => now = t,
                        None => break,
                    }
                }
                total
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_vault_memory(c: &mut Criterion) {
    c.bench_function("vault_memory_10k_reads", |b| {
        b.iter_batched(
            || VaultMemory::new(16, DramTiming::hmc_gen2()),
            |mut v| {
                let mut last = Time::ZERO;
                for i in 0..10_000u64 {
                    last = v.read(last, (i % 16) as usize, 4);
                }
                last
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link_tx_10k_packets", |b| {
        b.iter_batched(
            || {
                let mut cfg = LinkConfig::ac510_default();
                cfg.input_buffer_flits = 1_000_000;
                let mut tx: LinkTx<u32> = LinkTx::new(&cfg);
                for i in 0..10_000u32 {
                    tx.enqueue(i, 9);
                }
                tx
            },
            |mut tx| tx.service(Time::ZERO).len(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_mapping(c: &mut Criterion) {
    let map = AddressMap::hmc_gen2_default();
    c.bench_function("address_decode_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let loc = map.decode(Address::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                acc += u64::from(loc.vault.0) + u64::from(loc.bank.0);
            }
            acc
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = kernel;
    config = config();
    targets = bench_engine, bench_switch, bench_vault_memory, bench_link, bench_mapping
}
criterion_main!(kernel);
