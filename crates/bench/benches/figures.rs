//! One benchmark per reproduced table/figure: each runs a smoke-scale
//! slice of the experiment, so `cargo bench` both times the simulator on
//! every workload class and re-exercises every figure's code path. The
//! measured model output is printed once per benchmark for eyeballing.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use hmc_experiments::common::{gups_run, stream_run, ExpContext, Scale};
use hmc_experiments::{ext, fig10_12, fig14, fig7_8, fig9, table1};
use hmc_sim::prelude::*;
use hmc_sim::workloads::random_reads_in_banks;

fn ctx() -> ExpContext {
    ExpContext {
        scale: Scale::Smoke,
        seed: 2018,
        threads: 0,
        domains: 1,
        stats: Default::default(),
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_render", |b| {
        b.iter(|| table1::render().to_csv().len());
    });
}

fn bench_fig6(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    c.bench_function("fig6_point_16vaults_128B", |b| {
        b.iter(|| {
            let report = gups_run(
                &ctx(),
                1,
                AccessPattern::Vaults { count: 16 },
                GupsOp::Read(PayloadSize::B128),
                9,
            );
            ONCE.call_once(|| {
                eprintln!(
                    "[fig6] 16 vaults 128B: {:.2} GB/s at {:.2} us",
                    report.total_bandwidth_gbs(),
                    report.mean_latency_us()
                );
            });
            report.total_accesses()
        });
    });
}

fn bench_fig7_8(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    c.bench_function("fig7_stream_55_reads", |b| {
        b.iter(|| {
            let map = AddressMap::hmc_gen2_default();
            let trace = random_reads_in_banks(&map, VaultId(0), 16, PayloadSize::B64, 55, 3);
            let report = stream_run(&ctx(), 3, vec![trace]);
            ONCE.call_once(|| {
                eprintln!("[fig7] n=55 64B: {:.2} us", report.mean_latency_us());
            });
            report.total_accesses()
        });
    });
    c.bench_function("fig8_sweep_smoke", |b| {
        b.iter(|| fig7_8::run(&ctx(), 100).len());
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_collision_point", |b| {
        b.iter(|| {
            let map = AddressMap::hmc_gen2_default();
            let traces: Vec<_> = (0..4u64)
                .map(|p| {
                    hmc_sim::workloads::random_reads_in_vaults(
                        &map,
                        &[VaultId(5)],
                        PayloadSize::B128,
                        120,
                        10 + p,
                    )
                })
                .collect();
            stream_run(&ctx(), 10, traces).max_latency_us()
        });
    });
    // The full sweep at smoke scale (all 16 sweep positions × 4 sizes).
    c.bench_function("fig9_sweep_smoke", |b| {
        b.iter(|| fig9::run(&ctx(), 5).len());
    });
}

fn bench_fig10_12(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    c.bench_function("fig10_combo_sweep_smoke", |b| {
        b.iter(|| {
            let data = fig10_12::run(&ctx(), PayloadSize::B64);
            ONCE.call_once(|| {
                let (mean, sd) = fig10_12::latency_moments(&data);
                eprintln!(
                    "[fig10] 64B over {} combos: mean {:.0} ns σ {:.1} ns",
                    data.combos_run, mean, sd
                );
            });
            data.combos_run
        });
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_point_4ports", |b| {
        b.iter(|| {
            gups_run(
                &ctx(),
                13,
                AccessPattern::Vaults { count: 16 },
                GupsOp::Read(PayloadSize::B64),
                4,
            )
            .total_bandwidth_gbs()
        });
    });
}

fn bench_fig14(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    c.bench_function("fig14_sweep_smoke", |b| {
        b.iter(|| {
            let points = fig14::run(&ctx());
            ONCE.call_once(|| {
                eprintln!(
                    "[fig14] outstanding 2 banks {:.0}, 4 banks {:.0}; vault peaks {:.0} / {:.0}",
                    fig14::average_outstanding(&points, 2),
                    fig14::average_outstanding(&points, 4),
                    fig14::average_vault_peak(&points, 2),
                    fig14::average_vault_peak(&points, 4),
                );
            });
            points.len()
        });
    });
}

fn bench_ext(c: &mut Criterion) {
    c.bench_function("ext_ddr_comparison", |b| {
        b.iter(|| ext::ddr_comparison(&ctx()).to_csv().len());
    });
    c.bench_function("ext_rw_mix_point", |b| {
        b.iter(|| {
            gups_run(
                &ctx(),
                21,
                AccessPattern::Vaults { count: 16 },
                GupsOp::Mix {
                    size: PayloadSize::B128,
                    write_percent: 50,
                },
                9,
            )
            .total_bandwidth_gbs()
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = figures;
    config = config();
    targets = bench_table1, bench_fig6, bench_fig7_8, bench_fig9, bench_fig10_12,
        bench_fig13, bench_fig14, bench_ext
}
criterion_main!(figures);
