//! Benchmarks of the fabric routing hot path: next-hop lookups and
//! table construction (consulted on every packet at every transit cube),
//! plus an end-to-end transit of a short chain so pass-through crossbar
//! and fabric-link costs are timed together.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hmc_sim::fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim, RouteTable, Topology};
use hmc_sim::prelude::*;
use hmc_sim::workloads::random_reads_in_banks;

fn bench_route_build(c: &mut Criterion) {
    c.bench_function("fabric_route_table_build_3x8", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for t in [Topology::Chain, Topology::Star, Topology::Ring] {
                let table = RouteTable::for_topology(t, 8);
                acc += table.hops(CubeId(0), CubeId(7));
            }
            acc
        });
    });
}

fn bench_next_hop(c: &mut Criterion) {
    let table = RouteTable::for_topology(Topology::Ring, 8);
    c.bench_function("fabric_next_hop_100k_lookups", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                let from = CubeId((i % 8) as u8);
                let to = CubeId(((i * 5 + 3) % 8) as u8);
                acc += u64::from(table.next_hop(black_box(from), black_box(to)).0);
            }
            acc
        });
    });
}

fn bench_chain_transit(c: &mut Criterion) {
    c.bench_function("fabric_2cube_chain_200_reads", |b| {
        b.iter(|| {
            let cfg = FabricConfig::chain(2018, 2);
            let trace =
                random_reads_in_banks(&cfg.cube.map, VaultId(0), 16, PayloadSize::B64, 200, 2018);
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(1))])
                .run_streams()
                .total_accesses()
        });
    });
}

fn bench_star_loaded(c: &mut Criterion) {
    c.bench_function("fabric_4cube_star_gups_smoke", |b| {
        b.iter(|| {
            let cfg = FabricConfig::star(2018, 4);
            let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
            let specs: Vec<FabricPortSpec> = (0..4u8)
                .map(|cube| {
                    FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B128), CubeId(cube))
                })
                .collect();
            FabricSim::new(cfg, specs)
                .run_gups(Delay::from_us(5), Delay::from_us(10))
                .total_bandwidth_gbs()
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = fabric;
    config = config();
    targets = bench_route_build, bench_next_hop, bench_chain_transit, bench_star_loaded
}
criterion_main!(fabric);
