//! `perfgate` — the repo's reproducible wall-clock performance harness.
//!
//! ```text
//! perfgate [--smoke] [--reps N] [--baseline FILE] [--out FILE]
//! ```
//!
//! Runs a fixed basket of full-system experiments (the saturated and
//! unloaded Figure 6 points, a 4-cube chain, the pointer-chase probe and
//! the NOM-style offload stream), each `reps` times, and reports
//! **events/sec** (engine events dispatched per wall-clock second) and
//! wall time per experiment as one JSON document.
//!
//! Methodology:
//!
//! - Every experiment is a fixed workload with a fixed seed; the engine's
//!   `dispatched` count is part of the simulator's deterministic output,
//!   so events/sec ratios between two builds equal their wall-time ratios
//!   and are comparable even though absolute wall times are machine-bound.
//! - The best (minimum) wall time across reps is reported — the
//!   least-noise estimator of the code's intrinsic cost.
//! - Deterministic fields (events, sim_ns, accesses, wake fires) must be
//!   identical across reps; any divergence is a determinism regression
//!   and the gate **fails** (exit 1). Timing noise never fails the gate.
//! - With `--baseline FILE` (a previous perfgate JSON, e.g. the
//!   `BENCH_*.json` trajectory at the repo root), per-experiment speedups
//!   are computed and embedded as `speedup_vs_baseline`.
//! - Each case also reports round-trip `latency_p50_ns`/`p99`/`p999`
//!   from one *untimed* run with the telemetry hub attached. These are
//!   recorded for trend inspection, never gated — and the timed reps stay
//!   telemetry-off, so the hub's cost cannot leak into the wall times.
//!
//! Perf PRs append their snapshot as `BENCH_PR<n>.json` at the repo root;
//! see README "Performance".

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use hmc_sim::des::Delay;
use hmc_sim::fabric::SchedStats;
use hmc_sim::prelude::*;
use hmc_sim::stats::{json_escape, json_f64};
use hmc_sim::workloads::{GlobalGupsSource, OffloadSource};

/// What one basket run hands back: the report, the engine counters and
/// the parallel-scheduler counters (all-zero default for single-engine
/// cases).
type CaseOutput = (RunReport, hmc_sim::des::EngineStats, SchedStats);

/// One basket entry: a named, seeded, fixed-size workload.
struct Case {
    name: &'static str,
    /// Builds and runs the workload, returning the report + engine
    /// stats. Timed reps pass `Probe::off()` (the one-branch no-op path
    /// the gate measures); the extra untimed percentile run passes an
    /// attached probe.
    run: fn(Scale2, Probe) -> CaseOutput,
    /// Engine domains the case runs with (1 = serial). Multi-domain
    /// entries exist to measure parallel speedup; on a 1-core box they
    /// time-slice one core and the ratio is meaningless, so the gate
    /// warns loudly instead of letting the number mislead.
    domains: usize,
}

/// Harness scale: `Smoke` shrinks measurement windows so CI finishes in
/// seconds; `Full` is the scale recorded in `BENCH_*.json` snapshots.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Scale2 {
    Smoke,
    Full,
}

impl Scale2 {
    fn gups_windows(self) -> (Delay, Delay) {
        match self {
            Scale2::Smoke => (Delay::from_us(10), Delay::from_us(40)),
            Scale2::Full => (Delay::from_us(20), Delay::from_us(150)),
        }
    }

    fn chase_hops(self) -> u64 {
        match self {
            Scale2::Smoke => 64,
            Scale2::Full => 400,
        }
    }

    fn offload_pairs(self) -> u64 {
        match self {
            Scale2::Smoke => 512,
            Scale2::Full => 4_000,
        }
    }
}

/// The unloaded Figure 6 point: one 16 B read port, one tag, one bank —
/// the idle-skip stress (few events over many simulated cycles).
fn fig6_low(scale: Scale2, probe: Probe) -> CaseOutput {
    let cfg = SystemConfig::ac510(2018);
    let filter = AccessPattern::Banks {
        vault: VaultId(0),
        count: 1,
    }
    .filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B16)).with_tags(1)];
    let mut sim = SystemSim::with_telemetry(cfg, specs, probe);
    let (warmup, measure) = scale.gups_windows();
    let report = sim.run_gups(warmup, measure);
    let stats = sim.engine_stats();
    (report, stats, SchedStats::default())
}

/// The saturated Figure 6 point: nine 128 B read ports over all 16
/// vaults — the bandwidth ceiling, the densest event traffic in the
/// basket and the point the ≥1.3x events/sec gate is measured on.
fn fig6_sat(scale: Scale2, probe: Probe) -> CaseOutput {
    let cfg = SystemConfig::ac510(2018);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
    let mut sim = SystemSim::with_telemetry(cfg, specs, probe);
    let (warmup, measure) = scale.gups_windows();
    let report = sim.run_gups(warmup, measure);
    let stats = sim.engine_stats();
    (report, stats, SchedStats::default())
}

/// A 4-cube chain with four 64 B GUPS ports hammering the far cube:
/// every request transits three pass-through crossbars each way.
fn ext_chain4(scale: Scale2, probe: Probe) -> CaseOutput {
    let cfg = FabricConfig::chain(2018, 4);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
    let specs = vec![FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B64), CubeId(3)); 4];
    let mut sim = FabricSim::with_telemetry(cfg, specs, probe);
    let (warmup, measure) = scale.gups_windows();
    let report = sim.run_gups(warmup, measure);
    let stats = sim.engine_stats();
    (report, stats, SchedStats::default())
}

/// The pointer-chase probe: 8 dependent-read walkers on one cube.
fn probe_chase(scale: Scale2, probe: Probe) -> CaseOutput {
    let cfg = SystemConfig::ac510(2018);
    let map = cfg.device.map;
    let vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
    let hops = scale.chase_hops();
    let spec = PortSpec::from_source(move |seed| {
        Box::new(PointerChase::new(
            &map,
            &vaults,
            PayloadSize::B64,
            8,
            hops,
            seed,
        ))
    })
    .with_tags(8);
    let mut sim = SystemSim::with_telemetry(cfg, vec![spec], probe);
    let report = sim.run_streams();
    let stats = sim.engine_stats();
    (report, stats, SchedStats::default())
}

/// The NOM-style offload stream: read→dependent-write vault copies.
fn ext_offload(scale: Scale2, probe: Probe) -> CaseOutput {
    let cfg = SystemConfig::ac510(2018);
    let map = cfg.device.map;
    let pairs = scale.offload_pairs();
    let spec = PortSpec::from_source(move |_| {
        Box::new(OffloadSource::new(
            &map,
            VaultId(1),
            VaultId(9),
            PayloadSize::B128,
            pairs,
            8,
        ))
    });
    let mut sim = SystemSim::with_telemetry(cfg, vec![spec], probe);
    let report = sim.run_streams();
    let stats = sim.engine_stats();
    (report, stats, SchedStats::default())
}

/// The saturated 8-cube chain: nine 128 B read ports over an
/// address-interleaved global window, so every port's stream spreads
/// across all eight cubes and transit traffic loads every hop. The one
/// basket workload large enough for the conservative-parallel domain
/// scheduler — the `-d4` variant runs the *identical* workload split
/// over four engine domains, so their signatures must match and the
/// events/sec ratio is the parallel speedup (≈1 on a single hardware
/// thread, where the domains time-slice one core).
fn ext_intercube8(scale: Scale2, probe: Probe, domains: usize) -> CaseOutput {
    let cfg = FabricConfig::ac510(Topology::Chain, 8, 2018);
    let fabric_map = FabricAddressMap::new(CubePolicy::Interleaved, 8, &cfg.cube.map);
    let window = 1u64 << Address::BITS;
    let spec = FabricPortSpec::from_source(
        move |seed| {
            Box::new(GlobalGupsSource::new(
                GupsOp::Read(PayloadSize::B128),
                window,
                &fabric_map,
                seed,
            ))
        },
        CubeId::HOST,
    )
    .with_tags(hmc_sim::GUPS_TAGS)
    .addressed(fabric_map);
    let mut sim = FabricSim::with_telemetry(cfg, vec![spec; 9], probe).with_domains(domains);
    let (warmup, measure) = scale.gups_windows();
    let report = sim.run_gups(warmup, measure);
    let stats = sim.engine_stats();
    let sched = sim.sched_stats();
    (report, stats, sched)
}

fn ext_intercube8_serial(scale: Scale2, probe: Probe) -> CaseOutput {
    ext_intercube8(scale, probe, 1)
}

fn ext_intercube8_d4(scale: Scale2, probe: Probe) -> CaseOutput {
    ext_intercube8(scale, probe, 4)
}

/// The 64-cube mesh at the widened CUB field's ceiling: four 128 B read
/// ports over an interleaved global window spanning all 64 cubes of an
/// 8×8 mesh. The largest fabric the gate tracks — 64 engines' worth of
/// crossbars and dimension-ordered transit — and the scale-out point for
/// the domain scheduler (the `-d8` variant runs one domain per mesh
/// row).
fn ext_scale64(scale: Scale2, probe: Probe, domains: usize) -> CaseOutput {
    let cfg = FabricConfig::ac510(Topology::Mesh2D, 64, 2018);
    let fabric_map = FabricAddressMap::new(CubePolicy::Interleaved, 64, &cfg.cube.map);
    let window = 1u64 << Address::BITS;
    let spec = FabricPortSpec::from_source(
        move |seed| {
            Box::new(GlobalGupsSource::new(
                GupsOp::Read(PayloadSize::B128),
                window,
                &fabric_map,
                seed,
            ))
        },
        CubeId::HOST,
    )
    .with_tags(hmc_sim::GUPS_TAGS)
    .addressed(fabric_map);
    let mut sim = FabricSim::with_telemetry(cfg, vec![spec; 4], probe).with_domains(domains);
    let (warmup, measure) = scale.gups_windows();
    let report = sim.run_gups(warmup, measure);
    let stats = sim.engine_stats();
    let sched = sim.sched_stats();
    (report, stats, sched)
}

fn ext_scale64_serial(scale: Scale2, probe: Probe) -> CaseOutput {
    ext_scale64(scale, probe, 1)
}

fn ext_scale64_d8(scale: Scale2, probe: Probe) -> CaseOutput {
    ext_scale64(scale, probe, 8)
}

const BASKET: &[Case] = &[
    Case {
        name: "fig6-low",
        run: fig6_low,
        domains: 1,
    },
    Case {
        name: "fig6-sat",
        run: fig6_sat,
        domains: 1,
    },
    Case {
        name: "ext-chain-4",
        run: ext_chain4,
        domains: 1,
    },
    Case {
        name: "probe-chase",
        run: probe_chase,
        domains: 1,
    },
    Case {
        name: "ext-offload",
        run: ext_offload,
        domains: 1,
    },
    Case {
        name: "ext-intercube-8-sat",
        run: ext_intercube8_serial,
        domains: 1,
    },
    Case {
        name: "ext-intercube-8-sat-d4",
        run: ext_intercube8_d4,
        domains: 4,
    },
    Case {
        name: "ext-scale-64-mesh",
        run: ext_scale64_serial,
        domains: 1,
    },
    Case {
        name: "ext-scale-64-mesh-d8",
        run: ext_scale64_d8,
        domains: 8,
    },
];

/// The deterministic signature of one run; must not vary across reps.
/// The scheduler tallies are included because the adaptive window plan
/// is a pure function of the workload and domain count — worker grants
/// may vary with machine load, but never the rounds/windows/events
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Signature {
    events: u64,
    wake_fires: u64,
    sim_ns: u64,
    accesses: u64,
    rounds: u64,
    windows: u64,
    window_events: u64,
}

struct Measured {
    name: &'static str,
    sig: Signature,
    wall_best_s: f64,
    reps: u32,
    /// Worker-pool telemetry from the last rep: threads used and pool
    /// steal/park counts. Machine-dependent, reported but never gated.
    workers: u64,
    pool_steals: u64,
    pool_parks: u64,
    /// Round-trip `(p50, p99, p999)` ps from one untimed telemetry-on
    /// run. Recorded for trend inspection, never gated: latency is part
    /// of the simulated model, not the harness's wall-clock subject.
    tail_ps: Option<[u64; 3]>,
    /// Set when a multi-domain case ran on a 1-core budget: its wall
    /// time measures core time-slicing, not parallel speedup.
    cores_warning: Option<String>,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.sig.events as f64 / self.wall_best_s.max(1e-12)
    }
}

struct Args {
    scale: Scale2,
    reps: u32,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale2::Full,
        reps: 3,
        out: None,
        baseline: None,
    };
    // An explicit --reps wins over --smoke's lighter default regardless
    // of flag order.
    let mut reps_explicit = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                args.scale = Scale2::Smoke;
                if !reps_explicit {
                    args.reps = 2;
                }
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                args.reps = v.parse().map_err(|e| format!("bad reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".to_owned());
                }
                reps_explicit = true;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file")?;
                args.out = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Pulls `"name":"<x>"` … `"events_per_sec":<y>` pairs out of a previous
/// perfgate JSON (our own fixed format; no general JSON parser needed).
fn parse_baseline(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in doc.split("{\"name\":\"").skip(1) {
        let Some(name_end) = chunk.find('"') else {
            continue;
        };
        let name = chunk[..name_end].to_owned();
        let Some(pos) = chunk.find("\"events_per_sec\":") else {
            continue;
        };
        let rest = &chunk[pos + "\"events_per_sec\":".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: perfgate [--smoke] [--reps N] [--baseline FILE] [--out FILE]");
            return ExitCode::from(2);
        }
    };
    let baseline: Vec<(String, f64)> = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(doc) => parse_baseline(&doc),
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Vec::new(),
    };

    let mut results: Vec<Measured> = Vec::new();
    for case in BASKET {
        let mut best = f64::INFINITY;
        let mut sig: Option<Signature> = None;
        let mut last_sched = SchedStats::default();
        for rep in 0..args.reps {
            let start = Instant::now();
            let (report, stats, sched) = (case.run)(args.scale, Probe::off());
            let wall = start.elapsed().as_secs_f64();
            best = best.min(wall);
            let this = Signature {
                events: stats.dispatched,
                wake_fires: stats.wake_fires,
                sim_ns: report.sim_end.as_ps() / 1000,
                accesses: report.total_accesses(),
                rounds: sched.rounds,
                windows: sched.windows,
                window_events: sched.window_events,
            };
            last_sched = sched;
            match sig {
                None => sig = Some(this),
                Some(prev) if prev != this => {
                    eprintln!(
                        "DETERMINISM REGRESSION in {}: rep {rep} produced {this:?}, \
                         earlier reps produced {prev:?}",
                        case.name
                    );
                    return ExitCode::FAILURE;
                }
                Some(_) => {}
            }
            eprintln!("[{}] rep {}: {:.3}s", case.name, rep + 1, wall);
        }
        let sig = sig.expect("at least one rep ran");
        assert!(sig.accesses > 0, "{} moved no traffic", case.name);
        // One extra untimed run with the telemetry hub attached: the
        // latency percentiles ride along in the snapshot without the
        // instruments' cost ever touching the timed reps.
        let hub = Hub::shared(HubConfig::default());
        let _ = (case.run)(args.scale, Probe::attached(&hub));
        let tail_ps = hub.borrow().aggregate_tail_ps();
        let cores_warning =
            (case.domains > 1 && hmc_sim::des::pool::budget_total() == 1).then(|| {
                format!(
                    "{} domains time-sliced one core: wall time is not a parallel speedup",
                    case.domains
                )
            });
        if let Some(w) = &cores_warning {
            eprintln!("WARNING [{}]: {w}", case.name);
        }
        results.push(Measured {
            name: case.name,
            sig,
            wall_best_s: best,
            reps: args.reps,
            workers: last_sched.workers,
            pool_steals: last_sched.pool_steals,
            pool_parks: last_sched.pool_parks,
            tail_ps,
            cores_warning,
        });
    }

    let mut entries: Vec<String> = Vec::new();
    for m in &results {
        // Float fields go through json_f64: a non-finite value (e.g. a
        // degenerate speedup ratio) must become null, not a bare NaN/inf
        // token that breaks the whole document.
        let mut fields = format!(
            "{{\"name\":\"{}\",\"events\":{},\"wake_fires\":{},\"sim_ns\":{},\
             \"accesses\":{},\"reps\":{},\"wall_s_best\":{},\"events_per_sec\":{}",
            json_escape(m.name),
            m.sig.events,
            m.sig.wake_fires,
            m.sig.sim_ns,
            m.sig.accesses,
            m.reps,
            json_f64(m.wall_best_s, 4),
            json_f64(m.events_per_sec(), 0),
        );
        if m.sig.rounds > 0 {
            // Parallel cases only: the deterministic scheduler tallies
            // (CI gates on these), then the machine-bound pool telemetry.
            fields.push_str(&format!(
                ",\"sched_rounds\":{},\"sched_windows\":{},\"sched_window_events\":{},\
                 \"windows_per_round\":{},\"events_per_window\":{},\
                 \"workers\":{},\"pool_steals\":{},\"pool_parks\":{}",
                m.sig.rounds,
                m.sig.windows,
                m.sig.window_events,
                json_f64(m.sig.windows as f64 / m.sig.rounds as f64, 3),
                json_f64(m.sig.window_events as f64 / m.sig.windows.max(1) as f64, 1),
                m.workers,
                m.pool_steals,
                m.pool_parks,
            ));
        }
        if let Some([p50, p99, p999]) = m.tail_ps {
            fields.push_str(&format!(
                ",\"latency_p50_ns\":{},\"latency_p99_ns\":{},\"latency_p999_ns\":{}",
                json_f64(p50 as f64 / 1000.0, 3),
                json_f64(p99 as f64 / 1000.0, 3),
                json_f64(p999 as f64 / 1000.0, 3),
            ));
        }
        if let Some(w) = &m.cores_warning {
            fields.push_str(&format!(",\"cores_warning\":\"{}\"", json_escape(w)));
        }
        if let Some((_, base)) = baseline.iter().find(|(n, _)| n == m.name) {
            fields.push_str(&format!(
                ",\"baseline_events_per_sec\":{},\"speedup_vs_baseline\":{}",
                json_f64(*base, 0),
                json_f64(m.events_per_sec() / base.max(1e-12), 3),
            ));
        }
        fields.push('}');
        entries.push(fields);
    }
    let doc = format!(
        "{{\"schema\":\"hmc-perfgate-v1\",\"mode\":\"{}\",\"cores\":{},\"experiments\":[{}]}}\n",
        match args.scale {
            Scale2::Smoke => "smoke",
            Scale2::Full => "full",
        },
        hmc_sim::des::pool::budget_total(),
        entries.join(",")
    );
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{doc}"),
    }
    for m in &results {
        let base = baseline.iter().find(|(n, _)| n == m.name);
        eprintln!(
            "{:<12} {:>12} events  {:>8.3}s  {:>12.0} ev/s{}",
            m.name,
            m.sig.events,
            m.wall_best_s,
            m.events_per_sec(),
            base.map(|(_, b)| format!("  ({:.2}x vs baseline)", m.events_per_sec() / b))
                .unwrap_or_default(),
        );
    }
    ExitCode::SUCCESS
}
