//! The probe handle simulator components carry.

use crate::hub::SharedHub;
use crate::trace::Stage;
use core::fmt;
use hmc_des::Time;

/// Which way a serialized link is pointing, from the host's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkDir {
    /// Host → device request traffic.
    Request,
    /// Device → host response traffic.
    Response,
    /// Cube-to-cube transit traffic (multi-cube fabrics).
    Transit,
}

impl LinkDir {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkDir::Request => "req",
            LinkDir::Response => "resp",
            LinkDir::Transit => "transit",
        }
    }
}

/// A cheap, cloneable telemetry handle. Components hold one and call the
/// typed event methods unconditionally; a detached probe ([`Probe::off`],
/// the default) reduces every call to a single `None` branch, and the
/// crate's `off` feature compiles even that away (the struct becomes a
/// zero-sized type with the same API).
///
/// Event methods take raw ids (`u8` cube/vault/link, `u16` port/tag) so
/// leaf crates (`hmc-link`, `hmc-noc`) can feed events without depending
/// on packet or topology types.
#[derive(Clone, Default)]
pub struct Probe {
    #[cfg(not(feature = "off"))]
    hub: Option<SharedHub>,
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Probe({})", if self.is_on() { "on" } else { "off" })
    }
}

impl Probe {
    /// A detached probe: every event call is a no-op.
    pub fn off() -> Probe {
        Probe::default()
    }

    /// A probe feeding `hub`. With the `off` feature this still compiles
    /// but returns a detached probe.
    pub fn attached(hub: &SharedHub) -> Probe {
        #[cfg(not(feature = "off"))]
        {
            Probe {
                hub: Some(hub.clone()),
            }
        }
        #[cfg(feature = "off")]
        {
            let _ = hub;
            Probe {}
        }
    }

    /// The configuration of the hub this probe feeds, or `None` when
    /// detached (always `None` with the `off` feature). A partitioned
    /// simulation reads this to create per-domain shard hubs with the
    /// same epoch layout, then merges them back via
    /// [`Hub::absorb`](crate::Hub::absorb).
    pub fn hub_config(&self) -> Option<crate::HubConfig> {
        #[cfg(not(feature = "off"))]
        {
            self.hub.as_ref().map(|h| h.borrow().config())
        }
        #[cfg(feature = "off")]
        {
            None
        }
    }

    /// Folds a per-domain shard hub back into the hub this probe feeds.
    /// The domain scheduler gives each worker domain its own shard (same
    /// [`HubConfig`](crate::HubConfig) as the primary, read via
    /// [`Probe::hub_config`]) and merges them all here after the join —
    /// a no-op on a detached probe and with the `off` feature.
    #[inline]
    pub fn absorb_shard(&self, shard: &crate::Hub) {
        self.with(|h| h.absorb(shard));
    }

    /// Whether events reach a hub.
    #[inline]
    pub fn is_on(&self) -> bool {
        #[cfg(not(feature = "off"))]
        {
            self.hub.is_some()
        }
        #[cfg(feature = "off")]
        {
            false
        }
    }

    #[inline]
    fn with(&self, f: impl FnOnce(&mut crate::Hub)) {
        #[cfg(not(feature = "off"))]
        if let Some(hub) = &self.hub {
            f(&mut hub.borrow_mut());
        }
        #[cfg(feature = "off")]
        {
            let _ = f;
        }
    }

    /// A request entered cube `cube`'s queue for `vault`.
    #[inline]
    pub fn request_enqueue(&self, cube: u8, vault: u8, now: Time) {
        self.with(|h| h.on_enqueue(cube, vault, now));
    }

    /// A vault controller started DRAM service in `(cube, vault)`.
    #[inline]
    pub fn vault_service(&self, cube: u8, vault: u8, now: Time) {
        self.with(|h| h.on_vault_service(cube, vault, now));
    }

    /// A serialized link committed `flits` flits at `now`.
    #[inline]
    pub fn link_flits(&self, cube: u8, link: u8, dir: LinkDir, flits: u32, now: Time) {
        self.with(|h| h.on_link_flits(cube, link, dir, flits, now));
    }

    /// A link transmission of `flits` flits failed CRC (or was cut by an
    /// outage) and will be retransmitted from the retry buffer.
    #[inline]
    pub fn link_retry(&self, cube: u8, link: u8, dir: LinkDir, flits: u32, now: Time) {
        self.with(|h| h.on_link_retry(cube, link, dir, flits, now));
    }

    /// A switch granted a packet of `flits` flits in `cube`.
    #[inline]
    pub fn switch_forward(&self, cube: u8, flits: u32, now: Time) {
        self.with(|h| h.on_switch_forward(cube, flits, now));
    }

    /// A request completed its round trip: `source` port, target `cube`,
    /// measured `latency_ps`, `bytes` moved on the links.
    #[inline]
    pub fn completion(&self, source: u16, cube: u8, latency_ps: u64, bytes: u64, now: Time) {
        self.with(|h| h.on_completion(source, cube, latency_ps, bytes, now));
    }

    /// Restart the measurement window (end of warmup): clears counters
    /// and sketches, re-anchors epoch 0 at `now`.
    #[inline]
    pub fn reset_window(&self, now: Time) {
        self.with(|h| h.reset_window(now));
    }

    /// A port issued `(port, tag)` toward `cube` — the tracer decides
    /// whether this request is sampled.
    #[inline]
    pub fn trace_issue(&self, port: u16, tag: u16, cube: u8, now: Time) {
        self.with(|h| h.on_trace_issue(port, tag, cube, now));
    }

    /// A sampled request reached `stage`.
    #[inline]
    pub fn trace_mark(&self, port: u16, tag: u16, stage: Stage, now: Time) {
        self.with(|h| h.on_trace_mark(port, tag, stage, now));
    }

    /// A sampled request's response arrived back at its port.
    #[inline]
    pub fn trace_complete(&self, port: u16, tag: u16, now: Time) {
        self.with(|h| h.on_trace_complete(port, tag, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hub, HubConfig};

    #[test]
    fn detached_probe_is_inert() {
        let p = Probe::off();
        assert!(!p.is_on());
        p.completion(0, 0, 100, 160, Time::ZERO);
        p.vault_service(0, 0, Time::ZERO);
        p.reset_window(Time::ZERO);
    }

    #[test]
    fn attached_probe_feeds_the_hub() {
        let hub = Hub::shared(HubConfig::default());
        let p = Probe::attached(&hub);
        let q = p.clone(); // clones share the hub
        p.completion(2, 0, 1_000, 160, Time::from_ns(1));
        q.completion(2, 0, 3_000, 160, Time::from_ns(2));
        #[cfg(not(feature = "off"))]
        {
            assert!(p.is_on());
            let h = hub.borrow();
            assert_eq!(h.source_sketches()[&2].count(), 2);
        }
        #[cfg(feature = "off")]
        {
            assert!(!p.is_on());
            assert_eq!(hub.borrow().aggregate_sketch().count(), 0);
        }
    }
}
