//! The telemetry sink: epoch counters, quantile sketches, and the tracer.

use crate::probe::LinkDir;
use crate::trace::{Stage, Tracer};
use hmc_des::{Delay, Time};
use hmc_stats::LatencySketch;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The shared handle probes hold: single-threaded interior mutability.
/// Simulations are built, run and torn down inside one worker thread
/// (only plain result values cross threads), so `Rc<RefCell<_>>` is both
/// sufficient and the cheapest correct choice.
pub type SharedHub = Rc<RefCell<Hub>>;

/// Configuration for a [`Hub`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubConfig {
    /// Width of one epoch bucket in the counter timelines.
    pub epoch: Delay,
    /// Trace every Nth issued request (`None` disables the tracer).
    pub trace_sample: Option<u64>,
}

impl Default for HubConfig {
    fn default() -> HubConfig {
        HubConfig {
            epoch: Delay::from_us(5),
            trace_sample: None,
        }
    }
}

/// A monotone event-count timeline: one `u64` per fixed-width epoch,
/// grown on demand. Epoch 0 starts at the hub's window origin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochSeries {
    counts: Vec<u64>,
}

impl EpochSeries {
    fn add(&mut self, epoch: usize, n: u64) {
        if self.counts.len() <= epoch {
            self.counts.resize(epoch + 1, 0);
        }
        self.counts[epoch] += n;
    }

    /// Per-epoch counts (index = epoch number).
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The count in `epoch` (0 for epochs past the last event).
    #[inline]
    pub fn get(&self, epoch: usize) -> u64 {
        self.counts.get(epoch).copied().unwrap_or(0)
    }

    /// Number of epochs with at least one recorded event after them.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if no events were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total over all epochs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Elementwise-adds `other` into `self`. Addition is commutative and
    /// associative, so absorbing a set of shard timelines yields the same
    /// series in any order — the property hub merging relies on.
    pub fn absorb(&mut self, other: &EpochSeries) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }
}

/// Convenience: a sketch's (p50, p99, p999) in picoseconds.
pub(crate) fn tail_ps(sketch: &LatencySketch) -> Option<[u64; 3]> {
    Some([
        sketch.quantile_ps(0.50)?,
        sketch.quantile_ps(0.99)?,
        sketch.quantile_ps(0.999)?,
    ])
}

/// The sink behind attached [`Probe`](crate::Probe)s: streaming epoch
/// counters keyed by component, per-source / per-cube latency sketches,
/// and the sampled packet tracer. All maps are `BTreeMap`s so iteration
/// (and therefore any report built from a hub) is deterministic.
#[derive(Debug, Clone)]
pub struct Hub {
    cfg: HubConfig,
    origin: Time,
    /// Requests entering each (cube, vault) request queue.
    enqueues: BTreeMap<(u8, u8), EpochSeries>,
    /// DRAM service starts per (cube, vault) — the vault bandwidth timeline.
    vault_services: BTreeMap<(u8, u8), EpochSeries>,
    /// Flits committed per (cube, link, direction).
    link_flits: BTreeMap<(u8, u8, LinkDir), EpochSeries>,
    /// Retransmitted flits (failed-then-retried transmissions) per
    /// (cube, link, direction); empty unless faults are injected.
    link_retries: BTreeMap<(u8, u8, LinkDir), EpochSeries>,
    /// Switch grants (flits) per cube.
    switch_flits: BTreeMap<u8, EpochSeries>,
    /// Completed-request round-trip bytes per epoch (bandwidth timeline).
    completion_bytes: EpochSeries,
    /// Completed requests per epoch.
    completion_count: EpochSeries,
    /// Sum of completed-request latencies (ps) per epoch; divide by
    /// [`Hub::completion_count`] for a mean-latency timeline.
    completion_latency_ps: EpochSeries,
    by_source: BTreeMap<u16, LatencySketch>,
    by_cube: BTreeMap<u8, LatencySketch>,
    tracer: Tracer,
}

impl Hub {
    /// Creates an empty hub.
    pub fn new(cfg: HubConfig) -> Hub {
        Hub {
            cfg,
            origin: Time::ZERO,
            enqueues: BTreeMap::new(),
            vault_services: BTreeMap::new(),
            link_flits: BTreeMap::new(),
            link_retries: BTreeMap::new(),
            switch_flits: BTreeMap::new(),
            completion_bytes: EpochSeries::default(),
            completion_count: EpochSeries::default(),
            completion_latency_ps: EpochSeries::default(),
            by_source: BTreeMap::new(),
            by_cube: BTreeMap::new(),
            tracer: Tracer::new(cfg.trace_sample),
        }
    }

    /// Creates a hub behind the shared handle probes attach to.
    pub fn shared(cfg: HubConfig) -> SharedHub {
        Rc::new(RefCell::new(Hub::new(cfg)))
    }

    #[inline]
    fn epoch_of(&self, now: Time) -> usize {
        let ps = now.as_ps().saturating_sub(self.origin.as_ps());
        (ps / self.cfg.epoch.as_ps().max(1)) as usize
    }

    /// Restarts the measurement window at `now`: clears every instrument
    /// and re-anchors epoch 0. Called when the warmup window ends so
    /// timelines and sketches cover only the measured interval. The
    /// tracer is *not* cleared — packet lifecycles span the boundary.
    pub fn reset_window(&mut self, now: Time) {
        self.origin = now;
        self.enqueues.clear();
        self.vault_services.clear();
        self.link_flits.clear();
        self.link_retries.clear();
        self.switch_flits.clear();
        self.completion_bytes = EpochSeries::default();
        self.completion_count = EpochSeries::default();
        self.completion_latency_ps = EpochSeries::default();
        self.by_source.clear();
        self.by_cube.clear();
    }

    /// Merges another hub's instruments into this one. Every instrument
    /// merge is order-independent (elementwise counter addition, sketch
    /// bucket addition, disjoint-key map union, slice concatenation per
    /// shard), so absorbing per-domain hub shards produces the same
    /// aggregate regardless of absorb order — a partitioned simulation's
    /// telemetry equals the single-hub run's wherever instruments are
    /// per-component (shards never split one component's events).
    ///
    /// Both hubs must cover the same measurement window (same epoch width
    /// and origin); debug builds assert it.
    pub fn absorb(&mut self, other: &Hub) {
        debug_assert_eq!(self.cfg.epoch, other.cfg.epoch, "shard epoch widths match");
        debug_assert_eq!(self.origin, other.origin, "shard window origins match");
        for (k, s) in &other.enqueues {
            self.enqueues.entry(*k).or_default().absorb(s);
        }
        for (k, s) in &other.vault_services {
            self.vault_services.entry(*k).or_default().absorb(s);
        }
        for (k, s) in &other.link_flits {
            self.link_flits.entry(*k).or_default().absorb(s);
        }
        for (k, s) in &other.link_retries {
            self.link_retries.entry(*k).or_default().absorb(s);
        }
        for (k, s) in &other.switch_flits {
            self.switch_flits.entry(*k).or_default().absorb(s);
        }
        self.completion_bytes.absorb(&other.completion_bytes);
        self.completion_count.absorb(&other.completion_count);
        self.completion_latency_ps
            .absorb(&other.completion_latency_ps);
        for (k, s) in &other.by_source {
            self.by_source.entry(*k).or_default().merge(s);
        }
        for (k, s) in &other.by_cube {
            self.by_cube.entry(*k).or_default().merge(s);
        }
        self.tracer.absorb(&other.tracer);
    }

    // --- event sinks (called via Probe) ---

    pub(crate) fn on_enqueue(&mut self, cube: u8, vault: u8, now: Time) {
        let e = self.epoch_of(now);
        self.enqueues.entry((cube, vault)).or_default().add(e, 1);
    }

    pub(crate) fn on_vault_service(&mut self, cube: u8, vault: u8, now: Time) {
        let e = self.epoch_of(now);
        self.vault_services
            .entry((cube, vault))
            .or_default()
            .add(e, 1);
    }

    pub(crate) fn on_link_flits(
        &mut self,
        cube: u8,
        link: u8,
        dir: LinkDir,
        flits: u32,
        now: Time,
    ) {
        let e = self.epoch_of(now);
        self.link_flits
            .entry((cube, link, dir))
            .or_default()
            .add(e, u64::from(flits));
    }

    pub(crate) fn on_link_retry(
        &mut self,
        cube: u8,
        link: u8,
        dir: LinkDir,
        flits: u32,
        now: Time,
    ) {
        let e = self.epoch_of(now);
        self.link_retries
            .entry((cube, link, dir))
            .or_default()
            .add(e, u64::from(flits));
    }

    pub(crate) fn on_switch_forward(&mut self, cube: u8, flits: u32, now: Time) {
        let e = self.epoch_of(now);
        self.switch_flits
            .entry(cube)
            .or_default()
            .add(e, u64::from(flits));
    }

    pub(crate) fn on_completion(
        &mut self,
        source: u16,
        cube: u8,
        latency_ps: u64,
        bytes: u64,
        now: Time,
    ) {
        let e = self.epoch_of(now);
        self.completion_bytes.add(e, bytes);
        self.completion_count.add(e, 1);
        self.completion_latency_ps.add(e, latency_ps);
        self.by_source
            .entry(source)
            .or_default()
            .record_ps(latency_ps);
        self.by_cube.entry(cube).or_default().record_ps(latency_ps);
    }

    pub(crate) fn on_trace_issue(&mut self, port: u16, tag: u16, cube: u8, now: Time) {
        self.tracer.on_issue(port, tag, cube, now);
    }

    pub(crate) fn on_trace_mark(&mut self, port: u16, tag: u16, stage: Stage, now: Time) {
        self.tracer.mark(port, tag, stage, now);
    }

    pub(crate) fn on_trace_complete(&mut self, port: u16, tag: u16, now: Time) {
        self.tracer.complete(port, tag, now);
    }

    // --- accessors ---

    /// The configuration this hub was created with — what a partitioned
    /// simulation uses to create per-domain shard hubs that bucket into
    /// the same epochs.
    pub fn config(&self) -> HubConfig {
        self.cfg
    }

    /// The configured epoch width in picoseconds.
    pub fn epoch_ps(&self) -> u64 {
        self.cfg.epoch.as_ps()
    }

    /// Start of the current measurement window.
    pub fn origin(&self) -> Time {
        self.origin
    }

    /// Number of epochs covered by the completion timeline.
    pub fn epochs(&self) -> usize {
        self.completion_count.len()
    }

    /// Round-trip bytes completed per epoch.
    pub fn completion_bytes(&self) -> &EpochSeries {
        &self.completion_bytes
    }

    /// Requests completed per epoch.
    pub fn completion_count(&self) -> &EpochSeries {
        &self.completion_count
    }

    /// Sum of round-trip latencies (ps) completed per epoch.
    pub fn completion_latency_ps(&self) -> &EpochSeries {
        &self.completion_latency_ps
    }

    /// Request arrivals per (cube, vault).
    pub fn enqueues(&self) -> &BTreeMap<(u8, u8), EpochSeries> {
        &self.enqueues
    }

    /// DRAM service starts per (cube, vault).
    pub fn vault_services(&self) -> &BTreeMap<(u8, u8), EpochSeries> {
        &self.vault_services
    }

    /// Flits committed per (cube, link, direction).
    pub fn link_flits(&self) -> &BTreeMap<(u8, u8, LinkDir), EpochSeries> {
        &self.link_flits
    }

    /// Retransmitted flits per (cube, link, direction); empty unless
    /// faults are injected.
    pub fn link_retries(&self) -> &BTreeMap<(u8, u8, LinkDir), EpochSeries> {
        &self.link_retries
    }

    /// Retransmitted flits across all links — the fabric-wide retry
    /// traffic timeline's total.
    pub fn total_link_retries(&self) -> u64 {
        self.link_retries.values().map(EpochSeries::total).sum()
    }

    /// Switch grant flits per cube.
    pub fn switch_flits(&self) -> &BTreeMap<u8, EpochSeries> {
        &self.switch_flits
    }

    /// Latency sketch per source port.
    pub fn source_sketches(&self) -> &BTreeMap<u16, LatencySketch> {
        &self.by_source
    }

    /// Latency sketch per target cube.
    pub fn cube_sketches(&self) -> &BTreeMap<u8, LatencySketch> {
        &self.by_cube
    }

    /// All completions merged into one sketch (merge order is the fixed
    /// cube-id order, and sketch merging is order-independent anyway).
    pub fn aggregate_sketch(&self) -> LatencySketch {
        let mut all = LatencySketch::new();
        for s in self.by_cube.values() {
            all.merge(s);
        }
        all
    }

    /// `(p50, p99, p999)` round-trip picoseconds across all completions,
    /// or `None` if nothing completed.
    pub fn aggregate_tail_ps(&self) -> Option<[u64; 3]> {
        tail_ps(&self.aggregate_sketch())
    }

    /// `(p50, p99, p999)` round-trip picoseconds for `sketch`-style maps:
    /// a source's entry, or `None` if it completed nothing.
    pub fn source_tail_ps(&self, source: u16) -> Option<[u64; 3]> {
        tail_ps(self.by_source.get(&source)?)
    }

    /// `(p50, p99, p999)` for one cube.
    pub fn cube_tail_ps(&self, cube: u8) -> Option<[u64; 3]> {
        tail_ps(self.by_cube.get(&cube)?)
    }

    /// Whether the sampled packet tracer is active.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Completed packet-lifecycle slices captured so far.
    pub fn traced_slices(&self) -> usize {
        self.tracer.traced()
    }

    /// The sampled packet lifecycles as a Chrome `trace_event` JSON
    /// document (see [`crate`] docs).
    pub fn trace_json(&self) -> String {
        self.tracer.to_chrome_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_counters_bucket_by_time() {
        let mut h = Hub::new(HubConfig {
            epoch: Delay::from_us(1),
            trace_sample: None,
        });
        h.on_vault_service(0, 3, Time::from_ns(100));
        h.on_vault_service(0, 3, Time::from_ns(200));
        h.on_vault_service(0, 3, Time::from_us(2) + Delay::from_ns(1));
        let s = &h.vault_services()[&(0, 3)];
        assert_eq!(s.counts(), &[2, 0, 1]);
        assert_eq!(s.total(), 3);
        assert_eq!(s.get(7), 0);
    }

    #[test]
    fn reset_window_reanchors_epochs() {
        let mut h = Hub::new(HubConfig {
            epoch: Delay::from_us(1),
            trace_sample: None,
        });
        h.on_completion(0, 0, 500, 160, Time::from_ns(100));
        h.reset_window(Time::from_us(10));
        assert_eq!(h.epochs(), 0);
        h.on_completion(1, 0, 700, 160, Time::from_us(10) + Delay::from_ns(50));
        assert_eq!(h.completion_count().counts(), &[1]);
        // Only the post-reset completion survives in the sketches.
        assert_eq!(h.aggregate_sketch().count(), 1);
        assert!(h.source_tail_ps(0).is_none());
        assert_eq!(h.source_tail_ps(1), Some([700, 700, 700]));
    }

    #[test]
    fn completions_feed_source_and_cube_sketches() {
        let mut h = Hub::new(HubConfig::default());
        h.on_completion(4, 1, 1000, 160, Time::from_ns(10));
        h.on_completion(4, 2, 3000, 160, Time::from_ns(20));
        h.on_completion(5, 1, 2000, 32, Time::from_ns(30));
        assert_eq!(h.source_sketches()[&4].count(), 2);
        assert_eq!(h.cube_sketches()[&1].count(), 2);
        assert_eq!(h.aggregate_sketch().count(), 3);
        let [p50, p99, p999] = h.cube_tail_ps(1).unwrap();
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(h.completion_bytes().total(), 352);
    }

    #[test]
    fn absorb_merges_shards_order_independently() {
        let cfg = HubConfig {
            epoch: Delay::from_us(1),
            trace_sample: None,
        };
        let mut a = Hub::new(cfg);
        a.on_vault_service(0, 3, Time::from_ns(100));
        a.on_completion(0, 0, 500, 160, Time::from_ns(200));
        a.on_link_flits(0, 1, LinkDir::Request, 9, Time::from_us(2));
        let mut b = Hub::new(cfg);
        b.on_vault_service(1, 3, Time::from_ns(150));
        b.on_completion(3, 1, 900, 32, Time::from_us(1));
        b.on_link_flits(0, 1, LinkDir::Request, 4, Time::from_ns(10));
        let mut ab = Hub::new(cfg);
        ab.absorb(&a);
        ab.absorb(&b);
        let mut ba = Hub::new(cfg);
        ba.absorb(&b);
        ba.absorb(&a);
        assert_eq!(
            ab.completion_count().counts(),
            ba.completion_count().counts()
        );
        assert_eq!(ab.completion_bytes().total(), 192);
        assert_eq!(ab.vault_services().len(), 2);
        assert_eq!(
            ab.link_flits()[&(0, 1, LinkDir::Request)].counts(),
            &[4, 0, 9]
        );
        assert_eq!(ab.aggregate_tail_ps(), ba.aggregate_tail_ps());
        assert_eq!(ab.source_sketches()[&3].count(), 1);
    }

    #[test]
    fn absorb_into_a_fresh_hub_reproduces_the_shard() {
        let cfg = HubConfig::default();
        let mut shard = Hub::new(cfg);
        shard.on_enqueue(2, 5, Time::from_ns(40));
        shard.on_switch_forward(2, 11, Time::from_ns(41));
        let mut total = Hub::new(cfg);
        total.absorb(&shard);
        assert_eq!(total.enqueues(), shard.enqueues());
        assert_eq!(total.switch_flits(), shard.switch_flits());
        assert_eq!(total.config(), cfg);
    }

    #[test]
    fn link_retries_bucket_and_absorb() {
        let cfg = HubConfig {
            epoch: Delay::from_us(1),
            trace_sample: None,
        };
        let mut a = Hub::new(cfg);
        a.on_link_retry(0, 1, LinkDir::Transit, 9, Time::from_ns(100));
        let mut b = Hub::new(cfg);
        b.on_link_retry(0, 1, LinkDir::Transit, 4, Time::from_us(2));
        b.on_link_retry(2, 0, LinkDir::Response, 1, Time::from_ns(5));
        let mut ab = Hub::new(cfg);
        ab.absorb(&a);
        ab.absorb(&b);
        assert_eq!(
            ab.link_retries()[&(0, 1, LinkDir::Transit)].counts(),
            &[9, 0, 4]
        );
        assert_eq!(ab.total_link_retries(), 14);
        ab.reset_window(Time::from_us(5));
        assert_eq!(ab.total_link_retries(), 0);
    }

    #[test]
    fn trace_round_trip_via_hub() {
        let mut h = Hub::new(HubConfig {
            epoch: Delay::from_us(1),
            trace_sample: Some(1),
        });
        assert!(h.tracing());
        h.on_trace_issue(0, 1, 0, Time::from_ns(5));
        h.on_trace_mark(0, 1, Stage::VaultService, Time::from_ns(25));
        h.on_trace_complete(0, 1, Time::from_ns(90));
        assert_eq!(h.traced_slices(), 2);
        hmc_stats::validate_json(&h.trace_json()).unwrap();
    }
}
