//! # hmc-telemetry
//!
//! Streaming observability for the `hmc-noc-sim` workspace. The paper's
//! insights all come from *looking inside* the cube — per-vault bandwidth,
//! link utilization, latency distributions under open- vs closed-loop load
//! — but report-time aggregates can't show *when* a vault saturated or
//! *which* source's tail collapsed. This crate adds three layers:
//!
//! 1. [`Probe`] — a cheap, cloneable handle threaded through every
//!    simulator layer (`Port`, `HostModel`, `LinkTx`, `SwitchCore`,
//!    `HmcDevice`). When detached ([`Probe::off`]) each event call is a
//!    single branch on a `None`; the `off` cargo feature compiles even
//!    that branch away.
//! 2. [`Hub`] — the sink behind attached probes: per-vault / per-link
//!    **epoch counters** (bandwidth and occupancy timelines) and
//!    per-source / per-cube [`hmc_stats::LatencySketch`] quantile sketches
//!    for streaming p50/p99/p999.
//! 3. a **packet-lifecycle tracer** that samples every Nth issued request
//!    and emits Chrome `trace_event` JSON ([`Hub::trace_json`]), one track
//!    per component the packet crosses — open it in `chrome://tracing` or
//!    Perfetto.
//!
//! Everything is deterministic: epoch indices derive from simulated time,
//! sketches have a fixed bucket structure, and all maps iterate in key
//! order, so telemetry output is byte-identical across runs and thread
//! counts.
//!
//! ```
//! use hmc_des::Time;
//! use hmc_telemetry::{Hub, HubConfig, Probe};
//!
//! let hub = Hub::shared(HubConfig::default());
//! let probe = Probe::attached(&hub);
//! probe.completion(0, 0, 1_500_000, 160, Time::from_us(2));
//! # #[cfg(not(feature = "off"))]
//! assert_eq!(hub.borrow().aggregate_sketch().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hub;
mod probe;
mod trace;

pub use hub::{EpochSeries, Hub, HubConfig, SharedHub};
pub use probe::{LinkDir, Probe};
pub use trace::Stage;
