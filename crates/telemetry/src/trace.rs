//! Packet-lifecycle tracing: sampled per-request milestone capture and
//! Chrome `trace_event` JSON emission.

use hmc_des::Time;
use hmc_stats::{json_escape, json_f64};
use std::collections::BTreeMap;

/// A component a packet crosses on its round trip. Each stage is one
/// track (`tid`) in the exported Chrome trace; a packet's slice on a
/// track spans from the moment it reached that component to the moment
/// it reached the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Issued by a host port (tag allocated).
    Issue,
    /// Departed the host-side link serializer.
    HostLink,
    /// Entered the device's request switch.
    DeviceIngress,
    /// DRAM service started in the target vault.
    VaultService,
    /// Response packet formed and queued toward the response switch.
    ResponseReady,
    /// Response departed the device-side link serializer.
    ResponseLink,
    /// Crossed an inter-cube adapter (multi-cube fabrics only).
    Transit,
    /// A link transmission failed CRC and was retransmitted from the
    /// retry buffer (fault injection only).
    Retry,
}

impl Stage {
    /// All stages in track order.
    pub const ALL: [Stage; 8] = [
        Stage::Issue,
        Stage::HostLink,
        Stage::DeviceIngress,
        Stage::VaultService,
        Stage::ResponseReady,
        Stage::ResponseLink,
        Stage::Transit,
        Stage::Retry,
    ];

    /// Human-readable track name.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Issue => "port issue",
            Stage::HostLink => "host link",
            Stage::DeviceIngress => "device ingress",
            Stage::VaultService => "vault service",
            Stage::ResponseReady => "response ready",
            Stage::ResponseLink => "response link",
            Stage::Transit => "inter-cube transit",
            Stage::Retry => "link retry",
        }
    }

    /// The Chrome trace `tid` for this stage's track.
    #[inline]
    pub fn track(self) -> u32 {
        self as u32
    }
}

/// One emitted slice: a packet's residence in one component.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slice {
    stage: Stage,
    start_ps: u64,
    dur_ps: u64,
    port: u16,
    tag: u16,
    cube: u8,
}

/// An in-flight sampled request: its target cube and the milestones
/// recorded so far.
type LiveSlice = (u8, Vec<(Stage, Time)>);

/// Sampled milestone recorder. Keyed by `(port, tag)` — a tag is unique
/// among a port's in-flight requests and is released exactly when the
/// response completes, so no packet field is needed.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tracer {
    /// Trace every `sample`-th issued request; `None` disables tracing.
    sample: Option<u64>,
    issue_seq: u64,
    live: BTreeMap<(u16, u16), LiveSlice>,
    slices: Vec<Slice>,
}

impl Tracer {
    pub(crate) fn new(sample: Option<u64>) -> Tracer {
        Tracer {
            sample: sample.map(|n| n.max(1)),
            ..Tracer::default()
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.sample.is_some()
    }

    pub(crate) fn on_issue(&mut self, port: u16, tag: u16, cube: u8, now: Time) {
        let Some(n) = self.sample else { return };
        let seq = self.issue_seq;
        self.issue_seq += 1;
        if !seq.is_multiple_of(n) {
            return;
        }
        self.live
            .insert((port, tag), (cube, vec![(Stage::Issue, now)]));
    }

    pub(crate) fn mark(&mut self, port: u16, tag: u16, stage: Stage, now: Time) {
        if let Some((_, milestones)) = self.live.get_mut(&(port, tag)) {
            milestones.push((stage, now));
        }
    }

    pub(crate) fn complete(&mut self, port: u16, tag: u16, now: Time) {
        let Some((cube, milestones)) = self.live.remove(&(port, tag)) else {
            return;
        };
        for (i, &(stage, at)) in milestones.iter().enumerate() {
            let end = milestones.get(i + 1).map_or(now, |&(_, t)| t);
            self.slices.push(Slice {
                stage,
                start_ps: at.as_ps(),
                dur_ps: end.as_ps().saturating_sub(at.as_ps()),
                port,
                tag,
                cube,
            });
        }
    }

    /// Completed packets traced so far.
    pub(crate) fn traced(&self) -> usize {
        self.slices.len()
    }

    /// Appends another tracer's completed slices (shard merge). Live
    /// (incomplete) lifecycles and the sampling cursor stay local to each
    /// shard: a packet's milestones are only coherent within the shard
    /// that sampled its issue, which is why traced runs are executed on a
    /// single engine (see the fabric's domain scheduler) — for those this
    /// is exact, and for untraced shards it is a no-op.
    pub(crate) fn absorb(&mut self, other: &Tracer) {
        self.slices.extend(other.slices.iter().cloned());
    }

    /// Renders all completed slices as a Chrome `trace_event` document
    /// (the JSON Object Format: `{"traceEvents": [...]}`). Timestamps are
    /// microseconds of simulated time. Packets still in flight when the
    /// run ends are omitted.
    pub(crate) fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(Stage::ALL.len() + self.slices.len());
        for stage in Stage::ALL {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                stage.track(),
                json_escape(stage.label())
            ));
        }
        for s in &self.slices {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"p{}t{}\",\"args\":{{\"port\":{},\"tag\":{},\"cube\":{}}}}}",
                s.stage.track(),
                json_f64(s.start_ps as f64 / 1e6, 6),
                json_f64(s.dur_ps as f64 / 1e6, 6),
                s.port,
                s.tag,
                s.port,
                s.tag,
                s.cube
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
            events.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_nth_issue() {
        let mut t = Tracer::new(Some(2));
        for tag in 0..4u16 {
            t.on_issue(0, tag, 0, Time::from_ns(u64::from(tag)));
        }
        // Tags 0 and 2 sampled; 1 and 3 skipped.
        t.complete(0, 0, Time::from_ns(10));
        t.complete(0, 1, Time::from_ns(10));
        t.complete(0, 2, Time::from_ns(10));
        assert_eq!(t.traced(), 2);
    }

    #[test]
    fn slices_span_between_milestones() {
        let mut t = Tracer::new(Some(1));
        t.on_issue(3, 7, 1, Time::from_ns(100));
        t.mark(3, 7, Stage::HostLink, Time::from_ns(150));
        t.mark(3, 7, Stage::VaultService, Time::from_ns(400));
        t.complete(3, 7, Time::from_ns(1000));
        assert_eq!(
            t.slices,
            vec![
                Slice {
                    stage: Stage::Issue,
                    start_ps: 100_000,
                    dur_ps: 50_000,
                    port: 3,
                    tag: 7,
                    cube: 1
                },
                Slice {
                    stage: Stage::HostLink,
                    start_ps: 150_000,
                    dur_ps: 250_000,
                    port: 3,
                    tag: 7,
                    cube: 1
                },
                Slice {
                    stage: Stage::VaultService,
                    start_ps: 400_000,
                    dur_ps: 600_000,
                    port: 3,
                    tag: 7,
                    cube: 1
                },
            ]
        );
    }

    #[test]
    fn marks_on_unsampled_packets_are_ignored() {
        let mut t = Tracer::new(None);
        t.on_issue(0, 0, 0, Time::ZERO);
        t.mark(0, 0, Stage::HostLink, Time::from_ns(1));
        t.complete(0, 0, Time::from_ns(2));
        assert_eq!(t.traced(), 0);
        assert!(!t.enabled());
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Tracer::new(Some(1));
        t.on_issue(0, 0, 0, Time::ZERO);
        t.mark(0, 0, Stage::DeviceIngress, Time::from_ns(5));
        t.complete(0, 0, Time::from_ns(9));
        let json = t.to_chrome_json();
        hmc_stats::validate_json(&json).expect("trace JSON must parse");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"p0t0\""));
    }
}
