//! # hmc-dram
//!
//! The DRAM substrate behind each HMC vault controller: closed-page
//! [`Bank`] state machines, the shared 32 B TSV [`DataBus`], and the
//! composed [`VaultMemory`] that resolves full access timings.
//!
//! Calibration anchors from the reproduced paper:
//!
//! - tRCD + tCL + tRP ≈ 41 ns (Section IV-B, citing Rosenfeld);
//! - 32 B DRAM data bus per vault, so payloads larger than 32 B split into
//!   multiple bursts (Section IV-A);
//! - the bus sustains 10 GB/s — the single-vault bandwidth ceiling of
//!   Figures 6 and 13.
//!
//! ```
//! use hmc_des::Time;
//! use hmc_dram::{DramTiming, VaultMemory};
//!
//! let mut vault = VaultMemory::new(16, DramTiming::hmc_gen2());
//! let done = vault.read(Time::ZERO, 0, 1);
//! assert!((done.as_ns_f64() - 30.7).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod bus;
mod timing;
mod vault_memory;

pub use bank::{AccessTiming, Bank};
pub use bus::DataBus;
pub use timing::DramTiming;
pub use vault_memory::VaultMemory;
