//! DRAM timing parameters.

use hmc_des::Delay;

/// Core DRAM timing constraints for the stacked dies behind a vault
/// controller.
///
/// The paper cites tRCD + tCL + tRP ≈ 41 ns for the HMC (Section IV-B,
/// following Rosenfeld's dissertation); the defaults split that evenly and
/// pair it with a 3.2 ns burst beat — one 32 B transfer on the vault's
/// 32-TSV data bus, which is what caps a vault at 10 GB/s of data.
///
/// # Examples
///
/// ```
/// use hmc_dram::DramTiming;
///
/// let t = DramTiming::hmc_gen2();
/// let core = t.t_rcd + t.t_cl + t.t_rp;
/// assert!((core.as_ns_f64() - 41.25).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Activate-to-column command delay.
    pub t_rcd: Delay,
    /// Column access (CAS) latency.
    pub t_cl: Delay,
    /// Precharge time.
    pub t_rp: Delay,
    /// Minimum row-active time.
    pub t_ras: Delay,
    /// Column-to-column delay: one 32 B burst beat on the vault data bus.
    pub t_ccd: Delay,
    /// Write recovery time (last write data to precharge).
    pub t_wr: Delay,
}

impl DramTiming {
    /// Timing for the HMC 1.1 Gen2 stacked DRAM.
    pub fn hmc_gen2() -> DramTiming {
        DramTiming {
            t_rcd: Delay::from_ps(13_750),
            t_cl: Delay::from_ps(13_750),
            t_rp: Delay::from_ps(13_750),
            t_ras: Delay::from_ps(27_500),
            t_ccd: Delay::from_ps(3_200),
            t_wr: Delay::from_ps(15_000),
        }
    }

    /// A DDR4-2400-flavoured timing set for the baseline channel model
    /// (`hmc-ddr`): slightly slower core than the stacked dies, 8n-prefetch
    /// burst of 64 B over a 64-bit bus at 2400 MT/s ≈ 3.33 ns.
    pub fn ddr4_2400() -> DramTiming {
        DramTiming {
            t_rcd: Delay::from_ps(14_160),
            t_cl: Delay::from_ps(14_160),
            t_rp: Delay::from_ps(14_160),
            t_ras: Delay::from_ps(32_000),
            t_ccd: Delay::from_ps(3_330),
            t_wr: Delay::from_ps(15_000),
        }
    }

    /// The closed-page random-access core latency: tRCD + tCL + tRP.
    pub fn random_access_core(&self) -> Delay {
        self.t_rcd + self.t_cl + self.t_rp
    }

    /// Minimum interval between successive activations of one bank
    /// (tRC = tRAS + tRP).
    pub fn t_rc(&self) -> Delay {
        self.t_ras + self.t_rp
    }

    /// Validates ordering constraints between the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ras < self.t_rcd {
            return Err("tRAS must cover at least tRCD".to_owned());
        }
        if self.t_ccd.is_zero() {
            return Err("tCCD must be positive".to_owned());
        }
        Ok(())
    }
}

impl Default for DramTiming {
    fn default() -> DramTiming {
        DramTiming::hmc_gen2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_core_latency_matches_paper() {
        let t = DramTiming::hmc_gen2();
        // "tRCD + tCL + tRP is around 41 ns for HMC" (Section IV-B).
        assert!((t.random_access_core().as_ns_f64() - 41.25).abs() < 0.5);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn burst_beat_yields_10_gbs_bus() {
        let t = DramTiming::hmc_gen2();
        // 32 B per beat.
        let gbs = 32.0 / t.t_ccd.as_ns_f64();
        assert_eq!(gbs, 10.0);
    }

    #[test]
    fn t_rc_is_ras_plus_rp() {
        let t = DramTiming::hmc_gen2();
        assert_eq!(t.t_rc(), t.t_ras + t.t_rp);
        assert!((t.t_rc().as_ns_f64() - 41.25).abs() < 0.01);
    }

    #[test]
    fn validate_catches_inverted_ras() {
        let mut t = DramTiming::hmc_gen2();
        t.t_ras = Delay::from_ps(1);
        assert!(t.validate().is_err());
        let mut t = DramTiming::hmc_gen2();
        t.t_ccd = Delay::ZERO;
        assert!(t.validate().is_err());
    }

    #[test]
    fn ddr4_profile_is_sane() {
        let t = DramTiming::ddr4_2400();
        assert!(t.validate().is_ok());
        assert!(t.random_access_core() > DramTiming::hmc_gen2().random_access_core());
    }
}
