//! The DRAM side of one vault: banks sharing a TSV data bus.

use hmc_des::{Delay, Time};

use crate::bank::Bank;
use crate::bus::DataBus;
use crate::timing::DramTiming;

/// The memory stack behind one vault controller: `banks` closed-page banks
/// (one per partition slice across the DRAM dies) sharing the vault's 32 B
/// TSV data bus.
///
/// [`VaultMemory::read`] and [`VaultMemory::write`] resolve the complete
/// timing of one access — bank activation, column access and the bus
/// transfer — and return when the transaction's data is available at the
/// logic layer (reads) or when the write has committed (writes).
///
/// # Examples
///
/// ```
/// use hmc_des::Time;
/// use hmc_dram::{DramTiming, VaultMemory};
///
/// let mut vault = VaultMemory::new(16, DramTiming::hmc_gen2());
/// // A 128 B read (4 bursts) from bank 3, issued at t=0.
/// let done = vault.read(Time::ZERO, 3, 4);
/// // tRCD + tCL + 4 beats on the bus.
/// assert_eq!(done.as_ps(), 13_750 + 13_750 + 4 * 3_200);
/// ```
#[derive(Debug, Clone)]
pub struct VaultMemory {
    banks: Vec<Bank>,
    bus: DataBus,
    timing: DramTiming,
}

impl VaultMemory {
    /// Creates an idle vault memory with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or the timing fails validation.
    pub fn new(banks: usize, timing: DramTiming) -> VaultMemory {
        assert!(banks > 0, "a vault has at least one bank");
        timing.validate().expect("valid DRAM timing");
        VaultMemory {
            banks: vec![Bank::new(); banks],
            bus: DataBus::new(timing.t_ccd),
            timing,
        }
    }

    /// Number of banks.
    #[inline]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The timing parameters in effect.
    #[inline]
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Immutable view of a bank (for statistics).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// The shared data bus (for statistics).
    #[inline]
    pub fn bus(&self) -> &DataBus {
        &self.bus
    }

    /// Performs a read of `bursts` 32 B beats from `bank`, issued at `now`.
    /// Returns when the last data beat crosses the TSV bus into the logic
    /// layer.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or `bursts` is zero.
    pub fn read(&mut self, now: Time, bank: usize, bursts: u32) -> Time {
        let access = self.banks[bank].schedule_read(now, bursts, &self.timing);
        let (_, end) = self.bus.reserve(access.data_ready, bursts);
        end
    }

    /// Performs a write of `bursts` 32 B beats to `bank`, issued at `now`.
    /// The write data first crosses the bus, then commits in the bank;
    /// returns the commit time (when the ack can be generated).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or `bursts` is zero.
    pub fn write(&mut self, now: Time, bank: usize, bursts: u32) -> Time {
        // Data moves over the shared bus to the bank first.
        let (_, bus_done) = self.bus.reserve(now, bursts);
        let access = self.banks[bank].schedule_write(bus_done, bursts, &self.timing);
        access.data_ready
    }

    /// The earliest time `bank` could begin a new access.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_free_at(&self, bank: usize) -> Time {
        self.banks[bank].free_at()
    }

    /// Aggregate bank utilization over `elapsed` (mean across banks).
    pub fn mean_bank_utilization(&self, elapsed: Delay) -> f64 {
        if self.banks.is_empty() {
            return 0.0;
        }
        self.banks
            .iter()
            .map(|b| b.utilization(elapsed))
            .sum::<f64>()
            / self.banks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> VaultMemory {
        VaultMemory::new(16, DramTiming::hmc_gen2())
    }

    #[test]
    fn read_latency_is_core_plus_bus() {
        let mut v = vault();
        let done = v.read(Time::ZERO, 0, 1);
        assert_eq!(done.as_ps(), 13_750 + 13_750 + 3_200);
    }

    #[test]
    fn same_bank_reads_serialize_on_trc() {
        let mut v = vault();
        let first = v.read(Time::ZERO, 5, 1);
        let second = v.read(Time::ZERO, 5, 1);
        assert!(second - first >= Delay::from_ps(41_250 - 3_200));
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let mut v = vault();
        // 16 concurrent single-burst reads, one per bank.
        let mut completions: Vec<Time> = (0..16).map(|b| v.read(Time::ZERO, b, 1)).collect();
        completions.sort();
        // All bank cores overlap; the bus serializes the 16 beats.
        // First completion: core latency + 1 beat.
        assert_eq!(completions[0].as_ps(), 27_500 + 3_200);
        // Last completion: core latency + 16 beats.
        assert_eq!(completions[15].as_ps(), 27_500 + 16 * 3_200);
    }

    #[test]
    fn bus_saturates_at_10_gbs_under_blp() {
        let mut v = vault();
        // Stream 128 B reads round-robin over all banks: the bus should be
        // the limiter, i.e. throughput ≈ 32 B per 3.2 ns = 10 GB/s of data.
        let mut last = Time::ZERO;
        let reads = 2_000u64;
        for i in 0..reads {
            let done = v.read(Time::ZERO, (i % 16) as usize, 4);
            last = last.max(done);
        }
        let data_bytes = reads as f64 * 128.0;
        let gbs = data_bytes * 1e3 / last.as_ps() as f64;
        assert!((gbs - 10.0).abs() < 0.5, "measured {gbs} GB/s");
    }

    #[test]
    fn single_bank_stream_is_trc_limited() {
        let mut v = vault();
        let reads = 1_000u64;
        let mut last = Time::ZERO;
        for _ in 0..reads {
            last = v.read(Time::ZERO, 0, 4);
        }
        // Per access the bank is busy ~max(tRAS, tRCD+4*tCCD)+tRP = 41.25ns.
        let per_access_ns = last.as_ps() as f64 / 1e3 / reads as f64;
        assert!(
            (per_access_ns - 41.25).abs() < 1.0,
            "measured {per_access_ns} ns"
        );
    }

    #[test]
    fn write_commits_after_bus_and_bank() {
        let mut v = vault();
        let done = v.write(Time::ZERO, 0, 1);
        // Bus first (3.2 ns), then tRCD + tCCD in the bank.
        assert_eq!(done.as_ps(), 3_200 + 13_750 + 3_200);
    }

    #[test]
    fn utilization_reporting() {
        let mut v = vault();
        v.read(Time::ZERO, 0, 4);
        assert!(v.mean_bank_utilization(Delay::from_ns(100)) > 0.0);
        assert!(v.bus().utilization(Delay::from_ns(100)) > 0.0);
        assert_eq!(v.bank(0).accesses(), 1);
        assert_eq!(v.bank(1).accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = VaultMemory::new(0, DramTiming::hmc_gen2());
    }
}
