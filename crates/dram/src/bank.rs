//! A closed-page DRAM bank state machine.

use hmc_des::{Delay, Time};

use crate::timing::DramTiming;

/// When the phases of one bank access happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// When the activate command issued (after any bank-busy wait).
    pub start: Time,
    /// When the first data beat is available at the bank's sense amps
    /// (reads) or when the last data beat must have arrived (writes).
    pub data_ready: Time,
    /// When the bank has precharged and can accept the next activate.
    pub bank_free: Time,
}

/// One DRAM bank under a closed-page policy: every access activates a row,
/// moves its bursts, and precharges. HMC vaults run closed-page because the
/// in-order, highly interleaved traffic sees almost no row locality — which
/// is also why the paper can model a vault as a queue with a fixed service
/// time (Section IV-B).
///
/// # Examples
///
/// ```
/// use hmc_des::Time;
/// use hmc_dram::{Bank, DramTiming};
///
/// let t = DramTiming::hmc_gen2();
/// let mut bank = Bank::new();
/// let a = bank.schedule_read(Time::ZERO, 1, &t);
/// // Data appears after tRCD + tCL.
/// assert_eq!(a.data_ready, Time::ZERO + t.t_rcd + t.t_cl);
/// // A second access must wait for tRC-class recovery.
/// let b = bank.schedule_read(Time::ZERO, 1, &t);
/// assert!(b.start >= a.bank_free);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bank {
    free_at: Time,
    accesses: u64,
    busy_ps: u64,
}

impl Bank {
    /// A bank that is idle at time zero.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// The time at which the bank can accept its next activate.
    #[inline]
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total accesses serviced.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total picoseconds the bank has spent busy.
    #[inline]
    pub fn busy_ps(&self) -> u64 {
        self.busy_ps
    }

    /// Schedules a closed-page read of `bursts` 32 B beats.
    ///
    /// # Panics
    ///
    /// Panics if `bursts` is zero.
    pub fn schedule_read(&mut self, now: Time, bursts: u32, t: &DramTiming) -> AccessTiming {
        assert!(bursts > 0, "a read moves at least one burst");
        let start = now.max(self.free_at);
        let data_ready = start + t.t_rcd + t.t_cl;
        // The row must stay open until the last column read (tRAS also
        // bounds from below), then precharge.
        let last_col_done = start + t.t_rcd + t.t_ccd * bursts;
        let pre_start = last_col_done.max(start + t.t_ras);
        let bank_free = pre_start + t.t_rp;
        self.complete(start, bank_free);
        AccessTiming {
            start,
            data_ready,
            bank_free,
        }
    }

    /// Schedules a closed-page write of `bursts` 32 B beats.
    ///
    /// # Panics
    ///
    /// Panics if `bursts` is zero.
    pub fn schedule_write(&mut self, now: Time, bursts: u32, t: &DramTiming) -> AccessTiming {
        assert!(bursts > 0, "a write moves at least one burst");
        let start = now.max(self.free_at);
        let last_data = start + t.t_rcd + t.t_ccd * bursts;
        let data_ready = last_data;
        let pre_start = (last_data + t.t_wr).max(start + t.t_ras);
        let bank_free = pre_start + t.t_rp;
        self.complete(start, bank_free);
        AccessTiming {
            start,
            data_ready,
            bank_free,
        }
    }

    fn complete(&mut self, start: Time, bank_free: Time) {
        self.accesses += 1;
        self.busy_ps += (bank_free - start).as_ps();
        self.free_at = bank_free;
    }

    /// Bank utilization over a window of `elapsed` — busy time divided by
    /// wall time (may exceed 1.0 only if the window is shorter than the
    /// simulated activity).
    pub fn utilization(&self, elapsed: Delay) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.busy_ps as f64 / elapsed.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::hmc_gen2()
    }

    #[test]
    fn single_burst_read_timing() {
        let t = t();
        let mut b = Bank::new();
        let a = b.schedule_read(Time::ZERO, 1, &t);
        assert_eq!(a.start, Time::ZERO);
        assert_eq!(a.data_ready.as_ps(), 27_500); // tRCD + tCL
                                                  // tRAS (27.5 ns) dominates one burst, then tRP.
        assert_eq!(a.bank_free.as_ps(), 41_250);
    }

    #[test]
    fn multi_burst_read_extends_row_occupancy() {
        let t = t();
        let mut b = Bank::new();
        let a = b.schedule_read(Time::ZERO, 4, &t);
        // 4 bursts: last column done at tRCD + 4*tCCD = 26.55 ns < tRAS,
        // so tRAS still dominates here.
        assert_eq!(a.bank_free.as_ps(), 41_250);
        // 8 bursts: tRCD + 8*tCCD = 39.35 ns > tRAS → precharge later.
        let mut b = Bank::new();
        let a = b.schedule_read(Time::ZERO, 8, &t);
        assert_eq!(a.bank_free.as_ps(), 13_750 + 8 * 3_200 + 13_750);
    }

    #[test]
    fn back_to_back_reads_respect_trc() {
        let t = t();
        let mut b = Bank::new();
        let a = b.schedule_read(Time::ZERO, 1, &t);
        let c = b.schedule_read(Time::ZERO, 1, &t);
        assert_eq!(c.start, a.bank_free);
        assert!(c.start - a.start >= t.t_rc());
    }

    #[test]
    fn idle_bank_starts_immediately() {
        let t = t();
        let mut b = Bank::new();
        b.schedule_read(Time::ZERO, 1, &t);
        // Arriving long after the bank went idle: no extra wait.
        let late = Time::from_ns(1_000);
        let a = b.schedule_read(late, 1, &t);
        assert_eq!(a.start, late);
    }

    #[test]
    fn write_timing_includes_recovery() {
        let t = t();
        let mut b = Bank::new();
        let a = b.schedule_write(Time::ZERO, 1, &t);
        // last data at tRCD + tCCD = 16.95 ns; +tWR = 31.95 > tRAS;
        // +tRP → 45.7 ns.
        assert_eq!(a.bank_free.as_ps(), 13_750 + 3_200 + 15_000 + 13_750);
    }

    #[test]
    fn stats_accumulate() {
        let t = t();
        let mut b = Bank::new();
        b.schedule_read(Time::ZERO, 1, &t);
        b.schedule_read(Time::ZERO, 1, &t);
        assert_eq!(b.accesses(), 2);
        assert_eq!(b.busy_ps(), 2 * 41_250);
        assert!(b.utilization(Delay::from_ns(100)) > 0.8);
        assert_eq!(Bank::new().utilization(Delay::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one burst")]
    fn zero_bursts_rejected() {
        Bank::new().schedule_read(Time::ZERO, 0, &t());
    }
}
