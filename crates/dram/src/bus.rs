//! A shared, serially reserved data bus (the vault's 32 TSVs).

use hmc_des::{Delay, Time};

/// A bus that moves one fixed-size beat per `beat` interval and is shared
/// by every bank in a vault. For HMC 1.1 this is the 32-TSV, 32 B-wide
/// vault data bus: 32 B / 3.2 ns = 10 GB/s — the "maximum internal
/// bandwidth of a vault" that caps the single-vault curves in Figures 6
/// and 13.
///
/// # Examples
///
/// ```
/// use hmc_des::{Delay, Time};
/// use hmc_dram::DataBus;
///
/// let mut bus = DataBus::new(Delay::from_ns_f64(3.2));
/// let (s0, e0) = bus.reserve(Time::ZERO, 4);
/// assert_eq!(s0, Time::ZERO);
/// assert_eq!(e0.as_ps(), 12_800);
/// // A second transfer queues behind the first.
/// let (s1, _) = bus.reserve(Time::ZERO, 1);
/// assert_eq!(s1, e0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataBus {
    beat: Delay,
    free_at: Time,
    beats_moved: u64,
    busy_ps: u64,
}

impl DataBus {
    /// Creates an idle bus with the given beat time.
    ///
    /// # Panics
    ///
    /// Panics if `beat` is zero.
    pub fn new(beat: Delay) -> DataBus {
        assert!(!beat.is_zero(), "bus beat must be positive");
        DataBus {
            beat,
            free_at: Time::ZERO,
            beats_moved: 0,
            busy_ps: 0,
        }
    }

    /// The configured beat time.
    #[inline]
    pub fn beat(&self) -> Delay {
        self.beat
    }

    /// When the bus next becomes free.
    #[inline]
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Reserves the bus for `beats` consecutive beats, no earlier than
    /// `earliest`. Returns `(start, end)` of the transfer.
    ///
    /// # Panics
    ///
    /// Panics if `beats` is zero.
    pub fn reserve(&mut self, earliest: Time, beats: u32) -> (Time, Time) {
        assert!(beats > 0, "a transfer moves at least one beat");
        let start = earliest.max(self.free_at);
        let end = start + self.beat * beats;
        self.free_at = end;
        self.beats_moved += u64::from(beats);
        self.busy_ps += (end - start).as_ps();
        (start, end)
    }

    /// Total beats moved.
    #[inline]
    pub fn beats_moved(&self) -> u64 {
        self.beats_moved
    }

    /// Bus utilization over a window of `elapsed`.
    pub fn utilization(&self, elapsed: Delay) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.busy_ps as f64 / elapsed.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_reservations_queue() {
        let mut bus = DataBus::new(Delay::from_ps(3_200));
        let (_, e0) = bus.reserve(Time::ZERO, 1);
        let (s1, e1) = bus.reserve(Time::ZERO, 2);
        assert_eq!(s1, e0);
        assert_eq!(e1 - s1, Delay::from_ps(6_400));
        assert_eq!(bus.beats_moved(), 3);
    }

    #[test]
    fn idle_gap_not_charged() {
        let mut bus = DataBus::new(Delay::from_ps(3_200));
        bus.reserve(Time::ZERO, 1);
        let (s, _) = bus.reserve(Time::from_ns(100), 1);
        assert_eq!(s, Time::from_ns(100));
        // Busy time is 2 beats, not the idle gap.
        assert_eq!(bus.utilization(Delay::from_ns(200)), 6_400.0 / 200_000.0);
    }

    #[test]
    fn sustained_rate_is_ten_gb_per_s() {
        let mut bus = DataBus::new(Delay::from_ps(3_200));
        let mut end = Time::ZERO;
        for _ in 0..1000 {
            end = bus.reserve(Time::ZERO, 1).1;
        }
        let bytes = 1000.0 * 32.0;
        let gbs = bytes * 1e3 / (end - Time::ZERO).as_ps() as f64;
        assert!((gbs - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one beat")]
    fn zero_beats_rejected() {
        DataBus::new(Delay::from_ps(1)).reserve(Time::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "beat must be positive")]
    fn zero_beat_time_rejected() {
        let _ = DataBus::new(Delay::ZERO);
    }
}
