//! Property tests for the NoC building blocks: conservation of packets,
//! credits and flits under arbitrary traffic.

use hmc_des::{Delay, Time};
use hmc_noc::{Credits, RoundRobinArbiter, SwitchConfig, SwitchCore, SwitchEntry};
use proptest::prelude::*;

proptest! {
    /// Credits are conserved: available + in_flight == max at all times,
    /// under any interleaving of takes and puts.
    #[test]
    fn credit_conservation(max in 0u32..1000, ops in prop::collection::vec((any::<bool>(), 1u32..16), 0..200)) {
        let mut c = Credits::new(max);
        let mut taken: u32 = 0;
        for (is_take, n) in ops {
            if is_take {
                if c.try_take(n) {
                    taken += n;
                }
            } else {
                let back = n.min(taken);
                if back > 0 {
                    c.put(back);
                    taken -= back;
                }
            }
            prop_assert_eq!(c.available() + taken, max);
            prop_assert_eq!(c.in_flight(), taken);
        }
    }

    /// Round-robin never starves a persistent requester: with all
    /// requesters ready, any window of `n` grants contains every index.
    #[test]
    fn round_robin_fairness(n in 1usize..32) {
        let mut arb = RoundRobinArbiter::new(n);
        let mut seen = vec![0u32; n];
        for _ in 0..n * 3 {
            let g = arb.grant(|_| true).expect("all ready");
            seen[g] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, 3, "requester {} granted {} times", i, count);
        }
    }

    /// Every packet pushed into a switch eventually departs exactly once,
    /// with its flit count intact, provided downstream credits are
    /// returned.
    #[test]
    fn switch_conserves_packets(
        packets in prop::collection::vec((0usize..4, 0usize..4, 1u32..10), 1..60),
    ) {
        let cfg = SwitchConfig {
            inputs: 4,
            outputs: 4,
            input_capacity_flits: 10_000,
            hop_latency: Delay::from_ns(1),
            flit_time: Delay::from_ps(500),
        };
        let mut sw: SwitchCore<usize> = SwitchCore::new(cfg, &[100_000; 4]);
        let mut expected_flits: u64 = 0;
        for (id, &(input, output, flits)) in packets.iter().enumerate() {
            sw.try_enqueue(input, SwitchEntry { output, flits, payload: id })
                .expect("capacity is generous");
            expected_flits += u64::from(flits);
        }
        let mut now = Time::ZERO;
        let mut seen = vec![false; packets.len()];
        let mut got_flits: u64 = 0;
        loop {
            for d in sw.service(now) {
                prop_assert!(!seen[d.payload], "packet departed twice");
                seen[d.payload] = true;
                prop_assert_eq!(d.flits, packets[d.payload].2);
                got_flits += u64::from(d.flits);
            }
            match sw.next_wake(now) {
                Some(t) => now = t,
                None => break,
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "all packets departed");
        prop_assert_eq!(got_flits, expected_flits);
    }

    /// Output serialization: departures through one output never overlap —
    /// consecutive exit times are separated by at least the serialization
    /// time of the later packet.
    #[test]
    fn output_departures_never_overlap(
        flit_counts in prop::collection::vec(1u32..10, 2..40),
    ) {
        let cfg = SwitchConfig {
            inputs: 1,
            outputs: 1,
            input_capacity_flits: 10_000,
            hop_latency: Delay::from_ns(1),
            flit_time: Delay::from_ps(800),
        };
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg, &[100_000]);
        for (i, &flits) in flit_counts.iter().enumerate() {
            sw.try_enqueue(0, SwitchEntry { output: 0, flits, payload: i as u32 })
                .unwrap();
        }
        let mut now = Time::ZERO;
        let mut exits: Vec<(Time, u32)> = Vec::new();
        loop {
            for d in sw.service(now) {
                exits.push((d.at, d.flits));
            }
            match sw.next_wake(now) {
                Some(t) => now = t,
                None => break,
            }
        }
        prop_assert_eq!(exits.len(), flit_counts.len());
        for pair in exits.windows(2) {
            let (prev_at, _) = pair[0];
            let (next_at, next_flits) = pair[1];
            let min_gap = Delay::from_ps(800) * next_flits;
            prop_assert!(next_at >= prev_at + min_gap,
                "packets overlapped on the output wire");
        }
    }
}
