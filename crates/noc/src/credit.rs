//! Credit counters for lossless flow control, with a "credit became
//! available" notification so consumers wake on returns instead of polling.

/// A credit counter tracking free space in a downstream buffer, in
/// arbitrary units (flits here, tag slots in the host model).
///
/// Credits are the simulator-side equivalent of the HMC link token protocol
/// (Section II-B): a sender holds credits for the receiver's input buffer,
/// spends them when it transmits, and regains them when the receiver drains
/// — so buffers can never overflow and full buffers backpressure the
/// sender. Conservation (`taken + available == max`) is property-tested.
///
/// ## Starvation notification
///
/// A failed [`Credits::try_take`] (or an explicit
/// [`Credits::mark_starved`]) records that a consumer is blocked on this
/// pool. The next [`Credits::put`] then returns `true` — "a blocked
/// consumer may now progress" — which event-driven callers use to trigger
/// exactly one service pass instead of polling the pool every cycle. A
/// `put` into a pool nobody was starving on returns `false` and needs no
/// service pass.
///
/// # Examples
///
/// ```
/// use hmc_noc::Credits;
///
/// let mut c = Credits::new(9);
/// assert!(c.try_take(9));
/// assert!(!c.try_take(1)); // blocked: marks the pool starved
/// assert!(c.put(4), "return after starvation notifies");
/// assert!(!c.put(2), "no one waiting: no notification");
/// assert_eq!(c.available(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credits {
    max: u32,
    available: u32,
    starved: bool,
}

impl Credits {
    /// Creates a counter with `max` credits, all available.
    pub fn new(max: u32) -> Credits {
        Credits {
            max,
            available: max,
            starved: false,
        }
    }

    /// The total credit pool size.
    #[inline]
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Credits currently available to spend.
    #[inline]
    pub fn available(&self) -> u32 {
        self.available
    }

    /// Credits currently outstanding (spent, not yet returned).
    #[inline]
    pub fn in_flight(&self) -> u32 {
        self.max - self.available
    }

    /// `true` if `n` credits can be taken.
    #[inline]
    pub fn can_take(&self, n: u32) -> bool {
        self.available >= n
    }

    /// Takes `n` credits if available; returns whether it succeeded. A
    /// failure marks the pool starved (see the type docs).
    pub fn try_take(&mut self, n: u32) -> bool {
        if self.available >= n {
            self.available -= n;
            true
        } else {
            self.starved = true;
            false
        }
    }

    /// Records that a consumer is blocked on this pool without attempting
    /// a take — for callers that gate on [`Credits::can_take`] (e.g. an
    /// arbiter predicate that must not mutate).
    #[inline]
    pub fn mark_starved(&mut self) {
        self.starved = true;
    }

    /// `true` if a consumer is currently recorded as blocked on this pool.
    #[inline]
    pub fn is_starved(&self) -> bool {
        self.starved
    }

    /// Returns `n` credits to the pool. Returns `true` if a consumer was
    /// starving on the pool (the flag clears; the caller should run one
    /// service pass), `false` if nobody was waiting.
    ///
    /// # Panics
    ///
    /// Panics if the return would exceed the pool size — that is a protocol
    /// bug (returning credits that were never taken), not a recoverable
    /// condition.
    pub fn put(&mut self, n: u32) -> bool {
        assert!(
            self.available + n <= self.max,
            "credit overflow: returning {} with {}/{} available",
            n,
            self.available,
            self.max
        );
        self.available += n;
        std::mem::take(&mut self.starved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_put_conserve() {
        let mut c = Credits::new(10);
        assert!(c.try_take(4));
        assert_eq!(c.available(), 6);
        assert_eq!(c.in_flight(), 4);
        c.put(4);
        assert_eq!(c.available(), 10);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn put_notifies_only_after_starvation() {
        let mut c = Credits::new(4);
        assert!(c.try_take(4));
        assert!(!c.put(1), "no consumer waiting");
        assert!(!c.try_take(4), "blocked: marks starved");
        assert!(c.is_starved());
        assert!(c.put(1), "return while a consumer waits notifies");
        assert!(!c.is_starved(), "notification clears the flag");
        assert!(!c.put(2), "flag does not linger");
    }

    #[test]
    fn explicit_mark_starved_notifies() {
        let mut c = Credits::new(3);
        c.mark_starved();
        assert!(c.try_take(3), "marking does not consume");
        assert!(c.put(3));
    }

    #[test]
    fn take_fails_without_enough() {
        let mut c = Credits::new(3);
        assert!(!c.try_take(4));
        assert_eq!(c.available(), 3, "failed take must not consume");
        assert!(c.can_take(3));
        assert!(!c.can_take(4));
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn over_return_panics() {
        let mut c = Credits::new(2);
        c.put(1);
    }

    #[test]
    fn zero_sized_pool_blocks_everything() {
        let mut c = Credits::new(0);
        assert!(!c.try_take(1));
        assert!(c.try_take(0));
    }
}
