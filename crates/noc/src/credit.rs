//! Credit counters for lossless flow control.

/// A credit counter tracking free space in a downstream buffer, in
/// arbitrary units (flits here, tag slots in the host model).
///
/// Credits are the simulator-side equivalent of the HMC link token protocol
/// (Section II-B): a sender holds credits for the receiver's input buffer,
/// spends them when it transmits, and regains them when the receiver drains
/// — so buffers can never overflow and full buffers backpressure the
/// sender. Conservation (`taken + available == max`) is property-tested.
///
/// # Examples
///
/// ```
/// use hmc_noc::Credits;
///
/// let mut c = Credits::new(9);
/// assert!(c.try_take(9));
/// assert!(!c.try_take(1));
/// c.put(4);
/// assert_eq!(c.available(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credits {
    max: u32,
    available: u32,
}

impl Credits {
    /// Creates a counter with `max` credits, all available.
    pub fn new(max: u32) -> Credits {
        Credits {
            max,
            available: max,
        }
    }

    /// The total credit pool size.
    #[inline]
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Credits currently available to spend.
    #[inline]
    pub fn available(&self) -> u32 {
        self.available
    }

    /// Credits currently outstanding (spent, not yet returned).
    #[inline]
    pub fn in_flight(&self) -> u32 {
        self.max - self.available
    }

    /// `true` if `n` credits can be taken.
    #[inline]
    pub fn can_take(&self, n: u32) -> bool {
        self.available >= n
    }

    /// Takes `n` credits if available; returns whether it succeeded.
    pub fn try_take(&mut self, n: u32) -> bool {
        if self.available >= n {
            self.available -= n;
            true
        } else {
            false
        }
    }

    /// Returns `n` credits to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the return would exceed the pool size — that is a protocol
    /// bug (returning credits that were never taken), not a recoverable
    /// condition.
    pub fn put(&mut self, n: u32) {
        assert!(
            self.available + n <= self.max,
            "credit overflow: returning {} with {}/{} available",
            n,
            self.available,
            self.max
        );
        self.available += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_put_conserve() {
        let mut c = Credits::new(10);
        assert!(c.try_take(4));
        assert_eq!(c.available(), 6);
        assert_eq!(c.in_flight(), 4);
        c.put(4);
        assert_eq!(c.available(), 10);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn take_fails_without_enough() {
        let mut c = Credits::new(3);
        assert!(!c.try_take(4));
        assert_eq!(c.available(), 3, "failed take must not consume");
        assert!(c.can_take(3));
        assert!(!c.can_take(4));
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn over_return_panics() {
        let mut c = Credits::new(2);
        c.put(1);
    }

    #[test]
    fn zero_sized_pool_blocks_everything() {
        let mut c = Credits::new(0);
        assert!(!c.try_take(1));
        assert!(c.try_take(0));
    }
}
