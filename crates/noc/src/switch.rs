//! An input-queued crossbar switch at packet granularity.

use std::collections::VecDeque;

use hmc_des::{Clocked, Delay, InlineVec, Time};
use hmc_telemetry::Probe;

use crate::arbiter::RoundRobinArbiter;
use crate::credit::Credits;

/// The departure scratch buffer [`SwitchCore::service_into`] fills: eight
/// inline slots cover the common burst; larger bursts spill to the heap
/// once and the caller's reused buffer keeps that capacity.
pub type Departures<P> = InlineVec<Departure<P>, 8>;

/// Static configuration of a [`SwitchCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
    /// Capacity of each input FIFO, in flits.
    pub input_capacity_flits: u32,
    /// Pipeline latency from grant to first flit out.
    pub hop_latency: Delay,
    /// Serialization time per flit on each output port.
    pub flit_time: Delay,
}

impl SwitchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.inputs == 0 || self.outputs == 0 {
            return Err("switch needs at least one input and one output".to_owned());
        }
        if self.input_capacity_flits == 0 {
            return Err("input FIFOs need nonzero capacity".to_owned());
        }
        if self.flit_time.is_zero() {
            return Err("flit time must be positive".to_owned());
        }
        Ok(())
    }
}

/// A packet queued at a switch input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchEntry<P> {
    /// Target output port.
    pub output: usize,
    /// Packet length in flits (determines serialization time and credits).
    pub flits: u32,
    /// Opaque payload carried through the switch.
    pub payload: P,
}

/// A packet leaving the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure<P> {
    /// The input it arrived on.
    pub input: usize,
    /// The output it left through.
    pub output: usize,
    /// Packet length in flits.
    pub flits: u32,
    /// When the last flit has left the switch (hop latency plus
    /// serialization).
    pub at: Time,
    /// The carried payload.
    pub payload: P,
}

/// Error returned when a switch input FIFO cannot accept a packet; carries
/// the entry back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchFull<P>(pub SwitchEntry<P>);

/// An input-queued crossbar modelled at packet granularity.
///
/// Each output port has a round-robin arbiter over the input FIFO *heads*
/// (head-of-line blocking is modelled, as in a real input-queued switch), a
/// busy interval covering the packet's serialization, and a credit counter
/// for the downstream buffer, so full downstream queues backpressure
/// through the switch — the queuing chain the paper identifies as the
/// HMC's dominant latency contributor under load (Sections IV-A/IV-B).
///
/// The core is sans-event: callers invoke [`SwitchCore::service`] when
/// anything changed and schedule a wake-up at [`SwitchCore::next_wake`].
///
/// # Examples
///
/// ```
/// use hmc_des::{Delay, Time};
/// use hmc_noc::{SwitchConfig, SwitchCore, SwitchEntry};
///
/// let cfg = SwitchConfig {
///     inputs: 2,
///     outputs: 2,
///     input_capacity_flits: 16,
///     hop_latency: Delay::from_ns(2),
///     flit_time: Delay::from_ps(800),
/// };
/// let mut sw: SwitchCore<&str> = SwitchCore::new(cfg, &[64, 64]);
/// sw.try_enqueue(0, SwitchEntry { output: 1, flits: 2, payload: "pkt" }).unwrap();
/// let out = sw.service(Time::ZERO);
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].at.as_ps(), 2_000 + 2 * 800);
/// ```
#[derive(Debug, Clone)]
pub struct SwitchCore<P> {
    cfg: SwitchConfig,
    inputs: Vec<VecDeque<SwitchEntry<P>>>,
    input_capacities: Vec<u32>,
    input_flits: Vec<u32>,
    peak_input_flits: Vec<u32>,
    output_free: Vec<Time>,
    output_credits: Vec<Credits>,
    arbs: Vec<RoundRobinArbiter>,
    forwarded: u64,
    probe: Probe,
    /// Cube id stamped on emitted telemetry.
    probe_cube: u8,
}

impl<P> SwitchCore<P> {
    /// Creates an idle switch. `downstream_credit_flits[o]` is the size of
    /// the buffer behind output `o`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the credit slice length
    /// does not match the output count.
    pub fn new(cfg: SwitchConfig, downstream_credit_flits: &[u32]) -> SwitchCore<P> {
        let caps = vec![cfg.input_capacity_flits; cfg.inputs];
        SwitchCore::with_input_capacities(cfg, &caps, downstream_credit_flits)
    }

    /// Creates an idle switch with a distinct buffer capacity per input
    /// port (e.g. a deep link-facing buffer and shallow cross-quadrant
    /// buffers). `cfg.input_capacity_flits` is ignored in favour of
    /// `input_capacity_flits[i]`.
    ///
    /// # Panics
    ///
    /// Panics as [`SwitchCore::new`] does, or if the capacity slice length
    /// does not match the input count or contains a zero.
    pub fn with_input_capacities(
        cfg: SwitchConfig,
        input_capacity_flits: &[u32],
        downstream_credit_flits: &[u32],
    ) -> SwitchCore<P> {
        cfg.validate().expect("valid switch config");
        assert_eq!(
            downstream_credit_flits.len(),
            cfg.outputs,
            "one credit pool per output"
        );
        assert_eq!(
            input_capacity_flits.len(),
            cfg.inputs,
            "one capacity per input"
        );
        assert!(
            input_capacity_flits.iter().all(|&c| c > 0),
            "input capacities must be positive"
        );
        SwitchCore {
            cfg,
            // Pre-sized to the worst case the capacity hint allows
            // (1-flit packets), capped so deep buffers don't over-reserve;
            // either way the queue never regrows mid-run in practice.
            inputs: input_capacity_flits
                .iter()
                .map(|&c| VecDeque::with_capacity((c as usize).min(64)))
                .collect(),
            input_capacities: input_capacity_flits.to_vec(),
            input_flits: vec![0; cfg.inputs],
            peak_input_flits: vec![0; cfg.inputs],
            output_free: vec![Time::ZERO; cfg.outputs],
            output_credits: downstream_credit_flits
                .iter()
                .map(|&c| Credits::new(c))
                .collect(),
            arbs: (0..cfg.outputs)
                .map(|_| RoundRobinArbiter::new(cfg.inputs))
                .collect(),
            forwarded: 0,
            probe: Probe::off(),
            probe_cube: 0,
        }
    }

    /// Attaches a telemetry probe; every grant emits one switch-forward
    /// event stamped with `cube`. Detached by default ([`Probe::off`]),
    /// which keeps [`SwitchCore::service_into`] allocation-free.
    pub fn set_probe(&mut self, probe: Probe, cube: u8) {
        self.probe = probe;
        self.probe_cube = cube;
    }

    /// The configuration in effect.
    #[inline]
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// `true` if input `i` has room for `flits` more flits.
    pub fn can_accept(&self, input: usize, flits: u32) -> bool {
        self.input_flits[input] + flits <= self.input_capacities[input]
    }

    /// Enqueues a packet at input `input`.
    ///
    /// # Errors
    ///
    /// Returns [`SwitchFull`] carrying the entry if the input FIFO lacks
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if the entry's output port is out of range or its flit count
    /// is zero.
    pub fn try_enqueue(
        &mut self,
        input: usize,
        entry: SwitchEntry<P>,
    ) -> Result<(), SwitchFull<P>> {
        assert!(entry.output < self.cfg.outputs, "output port out of range");
        assert!(entry.flits > 0, "packets have at least one flit");
        if !self.can_accept(input, entry.flits) {
            return Err(SwitchFull(entry));
        }
        self.input_flits[input] += entry.flits;
        self.peak_input_flits[input] = self.peak_input_flits[input].max(self.input_flits[input]);
        self.inputs[input].push_back(entry);
        Ok(())
    }

    /// Returns `flits` credits for output `o` (the downstream buffer
    /// drained). Returns `true` if a queued head was starving on this
    /// output's credits — the caller should run [`SwitchCore::service`];
    /// on `false` no head was credit-blocked and no service pass is
    /// needed (time-driven progress is covered by
    /// [`SwitchCore::next_wake`]).
    pub fn return_credits(&mut self, output: usize, flits: u32) -> bool {
        self.output_credits[output].put(flits)
    }

    /// Available downstream credits at output `o`.
    pub fn credits_available(&self, output: usize) -> u32 {
        self.output_credits[output].available()
    }

    /// Runs arbitration until no further progress is possible at `now`.
    /// Returns every departing packet with its exit timestamp.
    ///
    /// Convenience form of [`SwitchCore::service_into`]; hot paths pass a
    /// reused scratch buffer instead so steady-state service allocates
    /// nothing.
    pub fn service(&mut self, now: Time) -> Departures<P> {
        let mut departures = Departures::new();
        self.service_into(now, &mut departures);
        departures
    }

    /// Runs arbitration until no further progress is possible at `now`,
    /// appending every departing packet (with its exit timestamp) to
    /// `departures` in grant order.
    pub fn service_into(&mut self, now: Time, departures: &mut Departures<P>) {
        loop {
            let mut progress = false;
            for o in 0..self.cfg.outputs {
                if self.output_free[o] > now {
                    continue;
                }
                let inputs = &self.inputs;
                let credits = &self.output_credits[o];
                let grant = self.arbs[o].grant(|i| {
                    inputs[i]
                        .front()
                        .is_some_and(|e| e.output == o && credits.can_take(e.flits))
                });
                if let Some(i) = grant {
                    let entry = self.inputs[i].pop_front().expect("granted head exists");
                    self.input_flits[i] -= entry.flits;
                    assert!(
                        self.output_credits[o].try_take(entry.flits),
                        "grant implies credits"
                    );
                    let busy = self.cfg.flit_time * entry.flits;
                    self.output_free[o] = now + busy;
                    self.forwarded += 1;
                    self.probe.switch_forward(self.probe_cube, entry.flits, now);
                    departures.push(Departure {
                        input: i,
                        output: o,
                        flits: entry.flits,
                        at: now + self.cfg.hop_latency + busy,
                        payload: entry.payload,
                    });
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        // Record which output pools the surviving heads are starving on,
        // so the corresponding credit returns notify (and returns into
        // outputs nobody waits for don't trigger useless service passes).
        for input in &self.inputs {
            if let Some(head) = input.front() {
                if !self.output_credits[head.output].can_take(head.flits) {
                    self.output_credits[head.output].mark_starved();
                }
            }
        }
    }

    /// The earliest future time at which [`SwitchCore::service`] could make
    /// progress on its own (an output's busy interval expiring while a
    /// matching head waits). Credit-blocked heads are *not* reported: the
    /// credit return itself triggers the service call (see
    /// [`SwitchCore::return_credits`]).
    pub fn next_wake(&self, now: Time) -> Option<Time> {
        let mut wake: Option<Time> = None;
        for input in &self.inputs {
            if let Some(head) = input.front() {
                let free = self.output_free[head.output];
                if free > now && self.output_credits[head.output].can_take(head.flits) {
                    wake = Some(wake.map_or(free, |w| w.min(free)));
                }
            }
        }
        wake
    }

    /// Current occupancy of input `i`, in flits.
    pub fn input_occupancy_flits(&self, input: usize) -> u32 {
        self.input_flits[input]
    }

    /// Peak occupancy of input `i`, in flits.
    pub fn peak_input_flits(&self, input: usize) -> u32 {
        self.peak_input_flits[input]
    }

    /// Total packets forwarded.
    #[inline]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Total grants where more than one input contended for the same
    /// output, summed over outputs — the switch's contention measure.
    pub fn arbitration_conflicts(&self) -> u64 {
        self.arbs.iter().map(|a| a.conflicts()).sum()
    }
}

impl<P> Clocked for SwitchCore<P> {
    fn next_wake(&self, now: Time) -> Option<Time> {
        SwitchCore::next_wake(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(inputs: usize, outputs: usize) -> SwitchConfig {
        SwitchConfig {
            inputs,
            outputs,
            input_capacity_flits: 32,
            hop_latency: Delay::from_ns(2),
            flit_time: Delay::from_ps(800),
        }
    }

    fn entry(output: usize, flits: u32, id: u32) -> SwitchEntry<u32> {
        SwitchEntry {
            output,
            flits,
            payload: id,
        }
    }

    #[test]
    fn single_packet_cut_through_timing() {
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(1, 1), &[100]);
        sw.try_enqueue(0, entry(0, 9, 7)).unwrap();
        let out = sw.service(Time::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 7);
        assert_eq!(out[0].at.as_ps(), 2_000 + 9 * 800);
        assert_eq!(sw.forwarded(), 1);
        assert!(
            !sw.return_credits(0, 9),
            "no head waits: the return needs no service pass"
        );
    }

    #[test]
    fn output_serializes_contending_inputs() {
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(2, 1), &[100]);
        sw.try_enqueue(0, entry(0, 2, 0)).unwrap();
        sw.try_enqueue(1, entry(0, 2, 1)).unwrap();
        // At t=0 only one grant can go through (output busy afterwards).
        let out = sw.service(Time::ZERO);
        assert_eq!(out.len(), 1);
        let wake = sw.next_wake(Time::ZERO).expect("second head waits");
        assert_eq!(wake.as_ps(), 2 * 800);
        let out2 = sw.service(wake);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].payload, 1);
        assert_eq!(sw.arbitration_conflicts(), 1);
    }

    #[test]
    fn distinct_outputs_forward_in_parallel() {
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(2, 2), &[100, 100]);
        sw.try_enqueue(0, entry(0, 3, 0)).unwrap();
        sw.try_enqueue(1, entry(1, 3, 1)).unwrap();
        let out = sw.service(Time::ZERO);
        assert_eq!(out.len(), 2, "no conflict, both forwarded at t=0");
        assert_eq!(out[0].at, out[1].at);
    }

    #[test]
    fn credits_backpressure_and_release() {
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(1, 1), &[3]);
        sw.try_enqueue(0, entry(0, 3, 0)).unwrap();
        sw.try_enqueue(0, entry(0, 3, 1)).unwrap();
        let out = sw.service(Time::ZERO);
        assert_eq!(out.len(), 1, "second packet has no credits");
        // Even after the output frees, no credits → no wake, no progress.
        let later = Time::from_ns(100);
        assert_eq!(sw.next_wake(Time::ZERO), None);
        assert!(sw.service(later).is_empty());
        // Downstream drains → credits return → the starved head is
        // notified and the packet moves.
        assert!(sw.return_credits(0, 3), "blocked head notifies on return");
        let out = sw.service(later);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 1);
    }

    #[test]
    fn input_fifo_capacity_enforced() {
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(1, 1), &[1000]);
        // Capacity is 32 flits: four 9-flit packets do not fit.
        for i in 0..3 {
            sw.try_enqueue(0, entry(0, 9, i)).unwrap();
        }
        assert!(!sw.can_accept(0, 9));
        let err = sw.try_enqueue(0, entry(0, 9, 3)).unwrap_err();
        assert_eq!(err.0.payload, 3);
        assert_eq!(sw.input_occupancy_flits(0), 27);
        assert_eq!(sw.peak_input_flits(0), 27);
    }

    #[test]
    fn head_of_line_blocking_is_modelled() {
        // Input 0's head targets busy output 0; a packet for free output 1
        // sits behind it and must wait even though output 1 is idle.
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(2, 2), &[100, 100]);
        sw.try_enqueue(1, entry(0, 4, 9)).unwrap();
        assert_eq!(sw.service(Time::ZERO).len(), 1); // occupy output 0
        sw.try_enqueue(0, entry(0, 4, 0)).unwrap();
        sw.try_enqueue(0, entry(1, 1, 1)).unwrap();
        let out = sw.service(Time::ZERO);
        assert!(
            out.is_empty(),
            "HOL: packet for output 1 blocked behind head"
        );
    }

    #[test]
    fn service_drains_chains_within_one_call() {
        // Two packets to two different outputs from one input: the second
        // becomes head after the first is granted, and both leave at t=0
        // service (outputs are distinct).
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(1, 2), &[100, 100]);
        sw.try_enqueue(0, entry(0, 1, 0)).unwrap();
        sw.try_enqueue(0, entry(1, 1, 1)).unwrap();
        let out = sw.service(Time::ZERO);
        assert_eq!(out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "output port out of range")]
    fn enqueue_validates_output() {
        let mut sw: SwitchCore<u32> = SwitchCore::new(cfg(1, 1), &[10]);
        let _ = sw.try_enqueue(0, entry(5, 1, 0));
    }
}
