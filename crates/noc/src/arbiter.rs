//! Arbitration policies for shared resources.

/// A rotating-priority (round-robin) arbiter over `n` requesters.
///
/// After a grant, priority moves to the requester after the winner, which
/// guarantees starvation freedom: any persistent requester is granted
/// within `n` grants (property-tested). This is the policy the modelled
/// quadrant switches use at every output port.
///
/// # Examples
///
/// ```
/// use hmc_noc::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.grant(|i| i != 1), Some(0));
/// assert_eq!(arb.grant(|i| i != 1), Some(2)); // skips 1, wraps past 0
/// assert_eq!(arb.grant(|_| false), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    n: usize,
    next: usize,
    grants: u64,
    conflicts: u64,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters, with initial priority at 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> RoundRobinArbiter {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter {
            n,
            next: 0,
            grants: 0,
            conflicts: 0,
        }
    }

    /// Number of requesters.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: the constructor rejects zero requesters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants to the first ready requester at or after the priority
    /// pointer, advancing the pointer past the winner. `ready(i)` reports
    /// whether requester `i` wants the resource.
    ///
    /// Returns `None` if no requester is ready.
    pub fn grant<F: FnMut(usize) -> bool>(&mut self, mut ready: F) -> Option<usize> {
        let mut contenders = 0usize;
        let mut winner = None;
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if ready(i) {
                contenders += 1;
                if winner.is_none() {
                    winner = Some(i);
                }
            }
        }
        if let Some(w) = winner {
            self.next = (w + 1) % self.n;
            self.grants += 1;
            if contenders > 1 {
                self.conflicts += 1;
            }
        }
        winner
    }

    /// Total grants issued.
    #[inline]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants for which more than one requester was ready — a direct
    /// measure of NoC contention.
    #[inline]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_after_grant() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(|_| true), Some(0));
        assert_eq!(a.grant(|_| true), Some(1));
        assert_eq!(a.grant(|_| true), Some(2));
        assert_eq!(a.grant(|_| true), Some(3));
        assert_eq!(a.grant(|_| true), Some(0));
    }

    #[test]
    fn skips_not_ready() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(|i| i == 2), Some(2));
        assert_eq!(a.grant(|i| i == 1), Some(1));
        assert_eq!(a.grant(|_| false), None);
    }

    #[test]
    fn no_starvation_with_persistent_contender() {
        // Requester 3 stays ready while 0..3 also stay ready; it must be
        // granted within 4 rounds.
        let mut a = RoundRobinArbiter::new(4);
        let mut granted3 = false;
        for _ in 0..4 {
            if a.grant(|_| true) == Some(3) {
                granted3 = true;
            }
        }
        assert!(granted3);
    }

    #[test]
    fn conflict_counting() {
        let mut a = RoundRobinArbiter::new(3);
        a.grant(|_| true); // 3 contenders
        a.grant(|i| i == 0); // 1 contender
        assert_eq!(a.grants(), 2);
        assert_eq!(a.conflicts(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_requesters_rejected() {
        let _ = RoundRobinArbiter::new(0);
    }
}
