//! Bounded FIFO queues with occupancy statistics.

use std::collections::VecDeque;

/// Error returned when a [`BoundedQueue`] rejects a push; carries the item
/// back to the caller (C-INTERMEDIATE — nothing is lost on failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

/// A FIFO with a fixed capacity, the building block of every buffer in the
/// modelled system (port FIFOs, link input buffers, vault command queues).
/// Tracks peak occupancy so experiments can report where queuing happened.
///
/// # Examples
///
/// ```
/// use hmc_noc::BoundedQueue;
///
/// let mut q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert!(q.push(3).is_err());
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.peak_occupancy(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    peak: usize,
    total_enqueued: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            peak: 0,
            total_enqueued: 0,
        }
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining space.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Appends an item.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] carrying the item if the queue is at capacity.
    pub fn push(&mut self, item: T) -> Result<(), QueueFull<T>> {
        if self.is_full() {
            return Err(QueueFull(item));
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        self.total_enqueued += 1;
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Borrows the oldest item.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterates oldest-first without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Highest occupancy ever observed.
    #[inline]
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Total items ever enqueued.
    #[inline]
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

/// A FIFO whose capacity is measured in *flits* rather than items, used
/// where buffer space is sized in link units (vault ingress buffers, link
/// egress buffers): a 9-flit read response takes nine times the space of a
/// 1-flit request.
///
/// # Examples
///
/// ```
/// use hmc_noc::FlitQueue;
///
/// let mut q = FlitQueue::new(10);
/// q.push(9, "big response").unwrap();
/// assert!(!q.can_accept(2));
/// q.push(1, "small request").unwrap();
/// assert_eq!(q.pop(), Some((9, "big response")));
/// assert_eq!(q.occupancy_flits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FlitQueue<T> {
    items: VecDeque<(u32, T)>,
    capacity_flits: u32,
    occupancy: u32,
    peak: u32,
}

impl<T> FlitQueue<T> {
    /// Creates an empty queue holding at most `capacity_flits` flits.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_flits: u32) -> FlitQueue<T> {
        assert!(capacity_flits > 0, "queue capacity must be positive");
        FlitQueue {
            items: VecDeque::new(),
            capacity_flits,
            occupancy: 0,
            peak: 0,
        }
    }

    /// The configured capacity in flits.
    #[inline]
    pub fn capacity_flits(&self) -> u32 {
        self.capacity_flits
    }

    /// Current occupancy in flits.
    #[inline]
    pub fn occupancy_flits(&self) -> u32 {
        self.occupancy
    }

    /// Highest occupancy observed, in flits.
    #[inline]
    pub fn peak_flits(&self) -> u32 {
        self.peak
    }

    /// Number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` if `flits` more flits fit.
    #[inline]
    pub fn can_accept(&self, flits: u32) -> bool {
        self.occupancy + flits <= self.capacity_flits
    }

    /// Appends an item occupying `flits` flits.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] carrying the item if it does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn push(&mut self, flits: u32, item: T) -> Result<(), QueueFull<T>> {
        assert!(flits > 0, "items occupy at least one flit");
        if !self.can_accept(flits) {
            return Err(QueueFull(item));
        }
        self.occupancy += flits;
        self.peak = self.peak.max(self.occupancy);
        self.items.push_back((flits, item));
        Ok(())
    }

    /// Removes and returns the oldest item with its flit count.
    pub fn pop(&mut self) -> Option<(u32, T)> {
        let (flits, item) = self.items.pop_front()?;
        self.occupancy -= flits;
        Some((flits, item))
    }

    /// Borrows the oldest item with its flit count.
    pub fn peek(&self) -> Option<(u32, &T)> {
        self.items.front().map(|(f, item)| (*f, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full_and_returns_item() {
        let mut q = BoundedQueue::new(1);
        q.push("a").unwrap();
        let err = q.push("b").unwrap_err();
        assert_eq!(err.0, "b");
        assert!(q.is_full());
        assert_eq!(q.free(), 0);
    }

    #[test]
    fn stats_track_peak_and_total() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.peak_occupancy(), 2);
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn peek_and_iter_do_not_consume() {
        let mut q = BoundedQueue::new(2);
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.peek(), Some(&10));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn flit_queue_accounts_in_flits() {
        let mut q = FlitQueue::new(12);
        q.push(9, 'a').unwrap();
        q.push(3, 'b').unwrap();
        assert!(q.is_full_for(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(), Some((9, &'a')));
        assert_eq!(q.pop(), Some((9, 'a')));
        assert_eq!(q.occupancy_flits(), 3);
        assert_eq!(q.peak_flits(), 12);
    }

    impl<T> FlitQueue<T> {
        fn is_full_for(&self, flits: u32) -> bool {
            !self.can_accept(flits)
        }
    }

    #[test]
    fn flit_queue_rejects_overflow_and_returns_item() {
        let mut q = FlitQueue::new(4);
        q.push(3, 1).unwrap();
        let err = q.push(2, 2).unwrap_err();
        assert_eq!(err.0, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn flit_queue_rejects_zero_flit_items() {
        let mut q = FlitQueue::new(4);
        let _ = q.push(0, ());
    }
}
