//! # hmc-noc
//!
//! Network-on-chip building blocks for the logic layer of a 3D-stacked
//! memory: bounded FIFOs, round-robin arbiters, credit-based flow control
//! and an input-queued crossbar [`SwitchCore`].
//!
//! The reproduced paper's central claim is that this layer — not the DRAM —
//! dominates the HMC's loaded latency behaviour: "the characteristics and
//! contention of this internal NoC play an integral role in the overall
//! performance of the HMC" (Section I). Every mechanism the paper blames
//! for latency variation (arbitration conflicts, buffer occupancy,
//! head-of-line blocking, credit stalls) is explicit and observable here.
//!
//! ```
//! use hmc_des::{Delay, Time};
//! use hmc_noc::{SwitchConfig, SwitchCore, SwitchEntry};
//!
//! let cfg = SwitchConfig {
//!     inputs: 4,
//!     outputs: 4,
//!     input_capacity_flits: 32,
//!     hop_latency: Delay::from_ns(2),
//!     flit_time: Delay::from_ps(800),
//! };
//! let mut sw: SwitchCore<u64> = SwitchCore::new(cfg, &[64, 64, 64, 64]);
//! sw.try_enqueue(0, SwitchEntry { output: 3, flits: 1, payload: 42 }).unwrap();
//! assert_eq!(sw.service(Time::ZERO)[0].payload, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod credit;
mod queue;
mod switch;

pub use arbiter::RoundRobinArbiter;
pub use credit::Credits;
pub use queue::{BoundedQueue, FlitQueue, QueueFull};
pub use switch::{Departure, Departures, SwitchConfig, SwitchCore, SwitchEntry, SwitchFull};
