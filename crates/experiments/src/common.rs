//! Shared experiment plumbing: scales, parallel sweeps, run helpers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hmc_sim::des::EngineStats;
use hmc_sim::prelude::*;

/// How much work an experiment performs.
///
/// `Quick` reproduces every figure's shape in seconds (sampled sweeps,
/// shorter measurement windows); `Full` runs the paper-sized sweeps
/// (e.g. all C(16,4) = 1820 vault combinations for Figures 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sweeps for unit tests (shapes remain assertable, runs stay
    /// fast even in debug builds).
    Smoke,
    /// Sampled sweeps, short windows.
    Quick,
    /// Paper-sized sweeps.
    Full,
}

/// Aggregate event-engine counters across every simulation a context ran,
/// summed with atomics so parallel sweep jobs can record concurrently.
/// The sums are order-independent, so the tally is thread-count-invariant
/// like everything else an experiment reports.
#[derive(Debug, Default)]
pub struct EngineTally {
    runs: AtomicU64,
    dispatched: AtomicU64,
    wake_fires: AtomicU64,
    wake_cancels: AtomicU64,
    scratch_spills: AtomicU64,
}

impl EngineTally {
    /// Adds one finished simulation's counters.
    pub fn record(&self, stats: &EngineStats) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.dispatched
            .fetch_add(stats.dispatched, Ordering::Relaxed);
        self.wake_fires
            .fetch_add(stats.wake_fires, Ordering::Relaxed);
        self.wake_cancels
            .fetch_add(stats.wake_cancels, Ordering::Relaxed);
        self.scratch_spills
            .fetch_add(stats.scratch_spills, Ordering::Relaxed);
    }

    /// Clears the tally (the `repro` driver resets it per experiment).
    pub fn reset(&self) {
        self.runs.store(0, Ordering::Relaxed);
        self.dispatched.store(0, Ordering::Relaxed);
        self.wake_fires.store(0, Ordering::Relaxed);
        self.wake_cancels.store(0, Ordering::Relaxed);
        self.scratch_spills.store(0, Ordering::Relaxed);
    }

    /// `(runs, dispatched, wake_fires, wake_cancels, scratch_spills)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.runs.load(Ordering::Relaxed),
            self.dispatched.load(Ordering::Relaxed),
            self.wake_fires.load(Ordering::Relaxed),
            self.wake_cancels.load(Ordering::Relaxed),
            self.scratch_spills.load(Ordering::Relaxed),
        )
    }
}

/// Context shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Work scale.
    pub scale: Scale,
    /// Root seed; every run derives its own deterministic seed from it.
    pub seed: u64,
    /// Worker threads for parallel sweeps (`0` = all available cores,
    /// the default). Results are thread-count-invariant: every job owns
    /// its simulation and its derived seed, and sweep order is restored
    /// after the parallel section — the determinism regressions run the
    /// same sweep at different widths and diff the rendered output.
    pub threads: usize,
    /// Engine-domain budget for each *single* multi-cube simulation
    /// (`FabricSim::with_domains`); `1` — the default — runs every
    /// simulation serially. Reports are domain-count-invariant, which
    /// the determinism regressions check by diffing rendered output
    /// across settings.
    pub domains: usize,
    /// Event-engine counter tally every run helper records into; shared
    /// across clones of this context so sweep jobs all feed one sink.
    pub stats: Arc<EngineTally>,
}

impl ExpContext {
    /// A quick-scale context.
    pub fn quick(seed: u64) -> ExpContext {
        ExpContext {
            scale: Scale::Quick,
            seed,
            threads: 0,
            domains: 1,
            stats: Arc::default(),
        }
    }

    /// A full-scale context.
    pub fn full(seed: u64) -> ExpContext {
        ExpContext {
            scale: Scale::Full,
            seed,
            threads: 0,
            domains: 1,
            stats: Arc::default(),
        }
    }

    /// Runs `f` over `items` on this context's worker-thread budget,
    /// preserving order (see [`parallel_map_with_threads`]).
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        parallel_map_with_threads(items, self.threads, f)
    }

    /// GUPS warmup window.
    pub fn gups_warmup(&self) -> Delay {
        match self.scale {
            Scale::Smoke => Delay::from_us(10),
            Scale::Quick => Delay::from_us(30),
            Scale::Full => Delay::from_us(100),
        }
    }

    /// GUPS measurement window (the paper ran 10 s on silicon; the
    /// simulated system is stationary after warmup, so hundreds of
    /// microseconds give stable averages).
    pub fn gups_measure(&self) -> Delay {
        match self.scale {
            Scale::Smoke => Delay::from_us(40),
            Scale::Quick => Delay::from_us(120),
            Scale::Full => Delay::from_us(400),
        }
    }

    /// Requests per stream port in the high-contention stream experiments
    /// (Figures 9–12).
    pub fn stream_reads(&self) -> usize {
        match self.scale {
            Scale::Smoke => 120,
            Scale::Quick => 400,
            Scale::Full => 1_000,
        }
    }

    /// Stride through the C(16,4) combination list (1 = all 1820).
    pub fn combo_stride(&self) -> usize {
        match self.scale {
            Scale::Smoke => 40,
            Scale::Quick => 7,
            Scale::Full => 1,
        }
    }

    /// Stride through vault ids when averaging "across all vaults"
    /// (Figures 7/8).
    pub fn vault_stride(&self) -> usize {
        match self.scale {
            Scale::Smoke => 8,
            Scale::Quick => 4,
            Scale::Full => 1,
        }
    }

    /// Step through request counts for Figures 7/8.
    pub fn request_count_step(&self, max_n: usize) -> usize {
        match self.scale {
            Scale::Smoke => (max_n / 8).max(1),
            Scale::Quick => (max_n / 12).max(1),
            Scale::Full => (max_n / 55).max(1),
        }
    }

    /// A derived seed for job `index` of a named experiment.
    pub fn seed_for(&self, experiment: &str, index: u64) -> u64 {
        let mut h = self.seed ^ 0x517C_C1B7_2722_0A95;
        for b in experiment.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        h.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Runs `f` over `items` on all available cores, preserving order.
///
/// Each job builds its own `SystemSim`, so jobs share nothing but the
/// read-only closure environment.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with_threads(items, 0, f)
}

/// [`parallel_map`] with an explicit worker count (`0` = all available
/// cores). Results must not depend on the choice — the determinism
/// regressions run the same sweep at different widths and diff the output.
///
/// Worker cores are debited from the shared [`hmc_des::pool`] budget, so
/// any `--domains` parallelism *inside* a job sees an exhausted budget
/// and multiplexes instead of oversubscribing. A worker that drains the
/// item queue parks its core back into the budget before the sweep
/// joins, letting a still-running job's domain lease steal it.
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        hmc_des::pool::budget_total()
    } else {
        threads
    }
    .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let lease = hmc_des::pool::demand(threads);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let items = &items;
    let f = &f;
    let next = &next;
    let slots_ref = &slots;
    let lease_ref = &lease;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                let mut claimed = 0usize;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if claimed > 0 {
                        hmc_des::pool::note_steal();
                    }
                    claimed += 1;
                    let r = f(&items[i]);
                    *slots_ref[i].lock().expect("result slot") = Some(r);
                }
                lease_ref.park_one();
            });
        }
    });
    drop(lease);
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("job completed"))
        .collect()
}

/// Runs one GUPS experiment: `ports` active ports, all generating `op`
/// under `pattern`, for the context's warmup + measurement windows.
pub fn gups_run(
    ctx: &ExpContext,
    seed: u64,
    pattern: AccessPattern,
    op: GupsOp,
    ports: usize,
) -> RunReport {
    let mut cfg = SystemConfig::ac510(seed);
    cfg.seed = seed;
    let filter = pattern.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, op); ports];
    let mut sim = SystemSim::new(cfg, specs);
    let report = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());
    report
}

/// Runs one multi-port stream experiment from explicit traces.
pub fn stream_run(ctx: &ExpContext, seed: u64, traces: Vec<Trace>) -> RunReport {
    let mut cfg = SystemConfig::ac510(seed);
    cfg.seed = seed;
    let specs = traces.into_iter().map(PortSpec::stream).collect();
    let mut sim = SystemSim::new(cfg, specs);
    let report = sim.run_streams();
    ctx.stats.record(&sim.engine_stats());
    report
}

/// The four request sizes every figure sweeps.
pub fn paper_sizes() -> [PayloadSize; 4] {
    PayloadSize::PAPER_SWEEP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn derived_seeds_differ_by_experiment_and_index() {
        let ctx = ExpContext::quick(1);
        assert_ne!(ctx.seed_for("fig6", 0), ctx.seed_for("fig6", 1));
        assert_ne!(ctx.seed_for("fig6", 0), ctx.seed_for("fig13", 0));
        let ctx2 = ExpContext::quick(1);
        assert_eq!(ctx.seed_for("a", 3), ctx2.seed_for("a", 3));
    }

    #[test]
    fn scales_differ() {
        let q = ExpContext::quick(0);
        let f = ExpContext::full(0);
        assert!(q.gups_measure() < f.gups_measure());
        assert!(q.combo_stride() > f.combo_stride());
        assert_eq!(f.combo_stride(), 1);
        assert!(q.request_count_step(350) >= 1);
    }
}
