//! Figure 9: quality of service under vault sharing. Four stream ports
//! access four vaults; three stay pinned to one vault while the fourth
//! sweeps every vault. The maximum observed latency spikes when the
//! sweeping port collides with the pinned vault.

use hmc_sim::prelude::*;

use crate::common::{paper_sizes, stream_run, ExpContext};

/// One point of Figure 9: the maximum latency observed with the fourth
/// port on `sweep_vault`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Point {
    /// The vault the fourth port accessed.
    pub sweep_vault: u8,
    /// Request size.
    pub size: PayloadSize,
    /// Maximum latency across all four ports, µs.
    pub max_latency_us: f64,
}

/// Runs the sweep with three ports pinned to `pinned_vault` (the paper
/// shows vault 1 and vault 5).
pub fn run(ctx: &ExpContext, pinned_vault: u8) -> Vec<Fig9Point> {
    assert!(pinned_vault < 16, "vault out of range");
    let mut jobs = Vec::new();
    for sweep in 0..16u8 {
        for size in paper_sizes() {
            jobs.push((sweep, size));
        }
    }
    let ctx = ctx.clone();
    ctx.clone().par_map(jobs, move |&(sweep, size)| {
        let reads = ctx.stream_reads();
        let map = AddressMap::hmc_gen2_default();
        let base = ctx.seed_for(
            "fig9",
            u64::from(pinned_vault) << 24 | u64::from(sweep) << 8 | u64::from(size.bytes()),
        );
        let mut traces = Vec::new();
        for port in 0..4u64 {
            let vault = if port < 3 { pinned_vault } else { sweep };
            traces.push(random_reads_in_vaults(
                &map,
                &[VaultId(vault)],
                size,
                reads,
                base.wrapping_add(port),
            ));
        }
        let report = stream_run(&ctx, base, traces);
        Fig9Point {
            sweep_vault: sweep,
            size,
            max_latency_us: report.max_latency_us(),
        }
    })
}

/// Renders one max-latency column per size, one row per swept vault.
pub fn render(points: &[Fig9Point]) -> Table {
    let sizes = paper_sizes();
    let mut headers = vec!["4th port vault".to_owned()];
    headers.extend(sizes.iter().map(|s| format!("{s} max latency (us)")));
    let mut t = Table::new(headers);
    for sweep in 0..16u8 {
        let mut row = vec![sweep.to_string()];
        for size in sizes {
            let p = points
                .iter()
                .find(|p| p.sweep_vault == sweep && p.size == size)
                .expect("grid is complete");
            row.push(format!("{:.3}", p.max_latency_us));
        }
        t.row(row);
    }
    t
}

/// The paper's headline number: how much higher the maximum latency is
/// when the fourth port collides with the pinned vault, relative to the
/// mean of the non-colliding positions.
pub fn collision_penalty(points: &[Fig9Point], pinned_vault: u8, size: PayloadSize) -> f64 {
    let colliding = points
        .iter()
        .find(|p| p.sweep_vault == pinned_vault && p.size == size)
        .expect("collision point")
        .max_latency_us;
    let others: Vec<f64> = points
        .iter()
        .filter(|p| p.sweep_vault != pinned_vault && p.size == size)
        .map(|p| p.max_latency_us)
        .collect();
    let baseline = others.iter().sum::<f64>() / others.len() as f64;
    colliding / baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    #[test]
    fn collision_raises_max_latency() {
        // Quick scale: the collision penalty is a queue-growth effect at
        // ~96% vault utilization, which needs a few hundred requests per
        // port to emerge from noise.
        let ctx = ExpContext {
            scale: Scale::Quick,
            seed: 9,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let pinned = 5;
        let points = run(&ctx, pinned);
        // Section IV-C: "the maximum observed latency increases up to 40%
        // relative to other accesses" — *up to*, i.e. the large sizes show
        // the full penalty while small packets vary less (~10% at 16 B in
        // Figure 9a). Require a clear penalty for the largest size, no
        // anti-penalty anywhere, and a strong maximum across sizes.
        // In our reproduction the penalty peaks near 10–15% rather than
        // 40%: the modelled stream ports drain responses at 3 GB/s, which
        // keeps even four colliding ports just at the vault's capacity
        // (EXPERIMENTS.md discusses the gap). The structure is what we
        // assert: no anti-penalty anywhere and a clear peak.
        let mut max_penalty: f64 = 0.0;
        for size in paper_sizes() {
            let penalty = collision_penalty(&points, pinned, size);
            // Small packets barely stress the shared vault, so their
            // collision ratio is 1.0 within noise.
            assert!(penalty > 0.95, "anti-penalty for {size}: ratio {penalty}");
            max_penalty = max_penalty.max(penalty);
        }
        assert!(max_penalty > 1.06, "peak penalty too weak: {max_penalty}");
        assert_eq!(render(&points).len(), 16);
    }
}
