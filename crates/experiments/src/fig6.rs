//! Figure 6: read latency vs bidirectional bandwidth for structural
//! access patterns and request sizes under high contention (9 GUPS ports).

use hmc_sim::prelude::*;

use crate::common::{gups_run, paper_sizes, ExpContext};

/// One point of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Point {
    /// Pattern label ("1 bank" … "16 vaults").
    pub pattern: String,
    /// Request size.
    pub size: PayloadSize,
    /// Counted bidirectional bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean read latency, µs.
    pub latency_us: f64,
}

/// Runs the 9 patterns × 4 sizes sweep with all nine ports active.
pub fn run(ctx: &ExpContext) -> Vec<Fig6Point> {
    let mut jobs = Vec::new();
    for pattern in AccessPattern::paper_sweep() {
        for size in paper_sizes() {
            jobs.push((pattern, size));
        }
    }
    let ctx = ctx.clone();
    ctx.clone().par_map(jobs, move |&(pattern, size)| {
        let seed = ctx.seed_for(
            "fig6",
            pattern.total_banks(&AddressMap::hmc_gen2_default()) as u64 * 1000
                + u64::from(size.bytes()),
        );
        let report = gups_run(&ctx, seed, pattern, GupsOp::Read(size), 9);
        Fig6Point {
            pattern: pattern.label(),
            size,
            bandwidth_gbs: report.total_bandwidth_gbs(),
            latency_us: report.mean_latency_us(),
        }
    })
}

/// Renders the sweep as the paper's (bandwidth, latency) series.
pub fn render(points: &[Fig6Point]) -> Table {
    let mut t = Table::new(["pattern", "size", "bandwidth (GB/s)", "latency (us)"]);
    for p in points {
        t.row([
            p.pattern.clone(),
            p.size.to_string(),
            format!("{:.2}", p.bandwidth_gbs),
            format!("{:.3}", p.latency_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{gups_run, Scale};

    /// A reduced Figure 6 (the five points the assertions need) checking
    /// the paper's orderings at smoke scale.
    #[test]
    fn orderings_match_paper() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 42,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let point = |pattern: AccessPattern, bytes: u32| {
            let size = PayloadSize::new(bytes).unwrap();
            let seed = ctx.seed_for("fig6-test", u64::from(bytes));
            let report = gups_run(&ctx, seed, pattern, GupsOp::Read(size), 9);
            (report.total_bandwidth_gbs(), report.mean_latency_us())
        };
        let v16 = AccessPattern::Vaults { count: 16 };
        let v1 = AccessPattern::Vaults { count: 1 };
        let b1 = AccessPattern::Banks {
            vault: VaultId(0),
            count: 1,
        };
        let (bw16_16, lat16_16) = point(v16, 16);
        let (bw16_128, lat16_128) = point(v16, 128);
        let (bw1v_128, _) = point(v1, 128);
        let (bwb1_128, latb1_128) = point(b1, 128);
        // Larger requests move more bandwidth and suffer more latency.
        assert!(bw16_128 > bw16_16);
        assert!(lat16_128 > lat16_16);
        // Less distributed accesses are slower and narrower.
        assert!(latb1_128 > 2.0 * lat16_128);
        assert!(bwb1_128 < 0.5 * bw16_128);
        // The most distributed 128 B pattern reaches the ~23 GB/s link
        // ceiling (±20%); one vault caps well below it.
        assert!(
            (18.0..=28.0).contains(&bw16_128),
            "link ceiling off: {bw16_128}"
        );
        assert!(bw1v_128 < 0.65 * bw16_128);
    }

    #[test]
    fn render_has_one_row_per_point() {
        let points = vec![Fig6Point {
            pattern: "1 bank".to_owned(),
            size: PayloadSize::B16,
            bandwidth_gbs: 1.0,
            latency_us: 2.0,
        }];
        let t = render(&points);
        assert_eq!(t.len(), 1);
        assert!(t.to_ascii().contains("1 bank"));
    }
}
