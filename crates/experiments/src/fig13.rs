//! Figure 13: response bandwidth as a function of the number of active
//! GUPS ports (a proxy for requested bandwidth), per pattern and size.
//! Sloped series are bottleneck-free; flat series have hit a structural
//! limit (bank, vault or link).

use hmc_sim::prelude::*;

use crate::common::{gups_run, paper_sizes, ExpContext};

/// One point of Figure 13.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Point {
    /// Request size.
    pub size: PayloadSize,
    /// Pattern label.
    pub pattern: String,
    /// Active GUPS ports (1–9).
    pub active_ports: u8,
    /// Counted bidirectional bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean latency, µs (used by Figure 14).
    pub latency_us: f64,
}

/// Runs the port sweep: 9 patterns × 4 sizes × 1–9 active ports.
pub fn run(ctx: &ExpContext) -> Vec<Fig13Point> {
    let mut jobs = Vec::new();
    for pattern in AccessPattern::paper_sweep() {
        for size in paper_sizes() {
            for ports in 1..=9u8 {
                jobs.push((pattern, size, ports));
            }
        }
    }
    let ctx = ctx.clone();
    ctx.clone().par_map(jobs, move |&(pattern, size, ports)| {
        let map = AddressMap::hmc_gen2_default();
        let key = pattern.total_banks(&map) as u64 * 10_000
            + u64::from(size.bytes()) * 16
            + u64::from(ports);
        let seed = ctx.seed_for("fig13", key);
        let report = gups_run(&ctx, seed, pattern, GupsOp::Read(size), usize::from(ports));
        Fig13Point {
            size,
            pattern: pattern.label(),
            active_ports: ports,
            bandwidth_gbs: report.total_bandwidth_gbs(),
            latency_us: report.mean_latency_us(),
        }
    })
}

/// Renders one size's panel: rows are port counts, columns are patterns.
pub fn render(points: &[Fig13Point], size: PayloadSize) -> Table {
    let patterns: Vec<String> = AccessPattern::paper_sweep()
        .iter()
        .map(|p| p.label())
        .collect();
    let mut headers = vec!["ports".to_owned()];
    headers.extend(patterns.iter().cloned());
    let mut t = Table::new(headers);
    for ports in 1..=9u8 {
        let mut row = vec![ports.to_string()];
        for pat in &patterns {
            let p = points
                .iter()
                .find(|p| p.size == size && p.active_ports == ports && &p.pattern == pat)
                .expect("grid is complete");
            row.push(format!("{:.2}", p.bandwidth_gbs));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    /// A reduced Figure 13 (subset of the grid) asserting the paper's
    /// slope/flat structure.
    #[test]
    fn bottlenecked_patterns_flatten() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 13,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        // Run just the patterns the assertions need, at 3 port counts, by
        // filtering after the full quick run would be wasteful; instead
        // call gups_run directly.
        let bw = |pattern: AccessPattern, ports: usize, bytes: u32| {
            let size = PayloadSize::new(bytes).unwrap();
            let seed = ctx.seed_for(
                "fig13-test",
                pattern.total_banks(&AddressMap::hmc_gen2_default()) as u64 * 100 + ports as u64,
            );
            gups_run(&ctx, seed, pattern, GupsOp::Read(size), ports).total_bandwidth_gbs()
        };
        // A single bank is bottlenecked immediately: 1 port ≈ 9 ports.
        let one_bank = AccessPattern::Banks {
            vault: VaultId(0),
            count: 1,
        };
        let b1 = bw(one_bank, 1, 128);
        let b9 = bw(one_bank, 9, 128);
        assert!(b9 < b1 * 1.6, "1-bank curve must be flat: {b1} → {b9}");
        // 16 vaults at 128 B keeps scaling over the first ports (each
        // port's response drain adds ~3.3 GB/s), then caps at the link
        // ceiling around 7 ports.
        let v16 = AccessPattern::Vaults { count: 16 };
        let v1 = bw(v16, 1, 128);
        let v5 = bw(v16, 5, 128);
        let v7 = bw(v16, 7, 128);
        let v9 = bw(v16, 9, 128);
        assert!(v5 > v1 * 2.0, "16-vault curve must slope: {v1} → {v5}");
        assert!(v9 < v7 * 1.15, "16-vault curve must cap: {v7} → {v9}");
    }
}
