//! Ext-intercube: address-interleaved cube targeting under blocked vs
//! interleaved fabric address maps.
//!
//! With CUB bits derived from the address (instead of a static per-port
//! cube), one request stream can finally exercise the inter-cube NoC
//! paths the way real chained HMCs do (Hadidi et al., ISPASS 2017). This
//! experiment runs the *same* GUPS draws — uniform random over a
//! one-cube-sized global window — under the two [`CubePolicy`] maps:
//!
//! - **blocked**: the window is exactly cube 0's address range, so every
//!   request terminates at the host-attached cube and the rest of the
//!   fabric idles;
//! - **interleaved**: the cube bits sit just above the block offset, so
//!   the very same footprint spreads over *all* cubes — every remote
//!   request pays pass-through crossbars and cube-to-cube links, and the
//!   per-cube device counters show the spread.
//!
//! The contrast isolates what address interleaving buys (and costs) on a
//! memory network: aggregate bank parallelism across cubes versus fabric
//! hop latency and transit contention on the shared host links.

use hmc_sim::fabric::{FabricConfig, FabricPortSpec, FabricSim, Topology};
use hmc_sim::prelude::*;
use hmc_sim::workloads::GlobalGupsSource;

use crate::common::{ExpContext, Scale};

/// GUPS ports driving each run.
pub fn port_count(ctx: &ExpContext) -> usize {
    match ctx.scale {
        Scale::Smoke => 4,
        Scale::Quick | Scale::Full => 9,
    }
}

/// Cube counts the sweep probes. Powers of two only: the interleaved
/// cube field must be dense for a uniform draw to stay in range.
pub fn cube_counts(ctx: &ExpContext) -> Vec<u8> {
    match ctx.scale {
        Scale::Smoke => vec![2, 4],
        Scale::Quick | Scale::Full => vec![2, 4, 8],
    }
}

/// One measured point of the intercube sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct IntercubePoint {
    /// Topology label ("chain" or "star").
    pub topology: Topology,
    /// Cubes in the fabric.
    pub cubes: u8,
    /// The fabric address map policy.
    pub policy: CubePolicy,
    /// Counted bidirectional bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean request latency, µs.
    pub latency_us: f64,
    /// Cubes whose devices completed at least one recorded request.
    pub cubes_hit: usize,
    /// Share of recorded completions that terminated at cube 0 (%).
    pub cube0_share: f64,
}

fn run_point(
    ctx: &ExpContext,
    topology: Topology,
    cubes: u8,
    policy: CubePolicy,
) -> IntercubePoint {
    let seed = ctx.seed_for(
        "ext-intercube",
        (u64::from(cubes) << 8)
            | (matches!(topology, Topology::Star) as u64) << 4
            | matches!(policy, CubePolicy::Interleaved) as u64,
    );
    let cfg = FabricConfig::ac510(topology, cubes, seed);
    let fabric_map = FabricAddressMap::new(policy, cubes, &cfg.cube.map);
    // One cube's worth of address space: under the blocked map this is
    // exactly cube 0's range; under the interleaved map the identical
    // window spreads across every cube.
    let window = 1u64 << Address::BITS;
    let spec = FabricPortSpec::from_source(
        move |seed| {
            Box::new(GlobalGupsSource::new(
                GupsOp::Read(PayloadSize::B128),
                window,
                &fabric_map,
                seed,
            ))
        },
        CubeId::HOST,
    )
    .with_tags(hmc_sim::GUPS_TAGS)
    .addressed(fabric_map);
    let specs = vec![spec; port_count(ctx)];
    let mut sim = FabricSim::new(cfg, specs).with_domains(ctx.domains);
    let report = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());
    let total: u64 = CubeId::all(cubes).map(|c| report.cube_completions(c)).sum();
    IntercubePoint {
        topology,
        cubes,
        policy,
        bandwidth_gbs: report.total_bandwidth_gbs(),
        latency_us: report.mean_latency_us(),
        cubes_hit: report.cubes_hit(),
        cube0_share: if total > 0 {
            report.cube_completions(CubeId::HOST) as f64 * 100.0 / total as f64
        } else {
            0.0
        },
    }
}

/// Runs the sweep: chain and star, each cube count, both policies.
pub fn run(ctx: &ExpContext) -> Vec<IntercubePoint> {
    let ctx2 = ctx.clone();
    let mut jobs: Vec<(Topology, u8, CubePolicy)> = Vec::new();
    for topology in [Topology::Chain, Topology::Star] {
        for &n in &cube_counts(ctx) {
            for policy in [CubePolicy::Blocked, CubePolicy::Interleaved] {
                jobs.push((topology, n, policy));
            }
        }
    }
    ctx.clone().par_map(jobs, move |&(topology, n, policy)| {
        run_point(&ctx2, topology, n, policy)
    })
}

/// Renders the sweep.
pub fn table(points: &[IntercubePoint]) -> Table {
    let mut t = Table::new([
        "topology",
        "cubes",
        "policy",
        "bandwidth (GB/s)",
        "latency (us)",
        "cubes hit",
        "cube0 share (%)",
    ]);
    for p in points {
        t.row([
            p.topology.label().to_owned(),
            p.cubes.to_string(),
            p.policy.label().to_owned(),
            format!("{:.2}", p.bandwidth_gbs),
            format!("{:.3}", p.latency_us),
            p.cubes_hit.to_string(),
            format!("{:.1}", p.cube0_share),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 2018,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        }
    }

    #[test]
    fn interleaving_spreads_load_blocking_pins_it() {
        let points = run(&smoke());
        assert_eq!(points.len(), 8, "2 topologies x 2 sizes x 2 policies");
        for p in &points {
            assert!(p.bandwidth_gbs > 0.0, "no traffic: {p:?}");
            match p.policy {
                CubePolicy::Blocked => {
                    assert_eq!(p.cubes_hit, 1, "blocked window stays in cube 0: {p:?}");
                    assert!(p.cube0_share > 99.9, "{p:?}");
                }
                CubePolicy::Interleaved => {
                    assert_eq!(
                        p.cubes_hit,
                        usize::from(p.cubes),
                        "interleaving must reach every cube: {p:?}"
                    );
                    // A uniform draw leaves cube 0 roughly 1/n of the
                    // completions.
                    assert!(
                        p.cube0_share < 100.0 / f64::from(p.cubes) + 15.0,
                        "cube 0 over-represented: {p:?}"
                    );
                }
            }
        }
        // Remote hops cost latency on the chain, where interleaving pays
        // up to n−1 pass-through hops. (On a 1-hop star the halved
        // per-cube load can offset the single hop, so no ordering is
        // asserted there.)
        for pair in points.chunks(2) {
            let (blocked, il) = (&pair[0], &pair[1]);
            assert_eq!(blocked.policy, CubePolicy::Blocked);
            assert_eq!(il.policy, CubePolicy::Interleaved);
            if blocked.topology == Topology::Chain {
                assert!(
                    il.latency_us > blocked.latency_us,
                    "remote chain cubes must cost latency: {blocked:?} vs {il:?}"
                );
            }
        }
    }

    #[test]
    fn intercube_is_byte_identical_across_runs_and_thread_counts() {
        let render = |threads: usize| {
            let ctx = ExpContext {
                scale: Scale::Smoke,
                seed: 2018,
                threads,
                domains: 1,
                stats: Default::default(),
            };
            table(&run(&ctx)).to_json()
        };
        let a = render(0);
        let b = render(0);
        let serial = render(1);
        assert_eq!(a, b, "ext-intercube must replay byte-identically");
        assert_eq!(a, serial, "thread count must not affect results");
        assert!(a.contains("\"rows\""), "rendering produced real rows");
    }

    #[test]
    fn table_has_one_row_per_point() {
        let p = IntercubePoint {
            topology: Topology::Chain,
            cubes: 4,
            policy: CubePolicy::Interleaved,
            bandwidth_gbs: 10.0,
            latency_us: 2.0,
            cubes_hit: 4,
            cube0_share: 25.0,
        };
        let t = table(&[p]);
        assert_eq!(t.len(), 1);
        assert!(t.to_ascii().contains("interleaved"));
    }
}
