//! # hmc-experiments
//!
//! Experiment runners that regenerate every table and figure of the
//! reproduced paper (and two extensions), on top of the [`hmc_sim`]
//! full-system simulator. Each module documents which figure it
//! reproduces and what workload the paper used; `EXPERIMENTS` lists the
//! runnable names consumed by the `repro` binary.
//!
//! ```no_run
//! use hmc_experiments::{run_by_name, ExpContext};
//!
//! let outcome = run_by_name("table1", &ExpContext::quick(0)).expect("known name");
//! for (title, table) in &outcome.tables {
//!     println!("# {title}\n{table}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod ext;
pub mod ext_fabric;
pub mod ext_faults;
pub mod ext_intercube;
pub mod ext_mixed;
pub mod ext_offload;
pub mod ext_scale;
pub mod ext_timeline;
pub mod fig10_12;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod probe_chase;
pub mod table1;

pub use common::{ExpContext, Scale};
use hmc_sim::prelude::*;

/// The result of one experiment: named tables ready to print or dump.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Canonical experiment name.
    pub name: &'static str,
    /// Titled tables (one per rendered panel).
    pub tables: Vec<(String, Table)>,
}

/// Canonical experiment names, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10-12",
    "fig13",
    "fig14",
    "ext-ddr",
    "ext-rw",
    "ext-chain",
    "ext-star",
    "probe-chase",
    "ext-offload",
    "ext-intercube",
    "ext-mixed",
    "ext-timeline",
    "ext-faults",
    "ext-scale",
];

/// Resolves aliases (`fig10`, `fig11`, `fig12` share one sweep;
/// underscores work everywhere dashes do).
pub fn canonical_name(name: &str) -> Option<&'static str> {
    let name = name.to_ascii_lowercase().replace('_', "-");
    match name.as_str() {
        "fig10" | "fig11" | "fig12" | "fig10-12" => Some("fig10-12"),
        "fig7-8" | "fig78" => Some("fig7"),
        other => EXPERIMENTS.iter().find(|&&e| e == other).copied(),
    }
}

/// Runs one experiment by (possibly aliased) name. Returns `None` for
/// unknown names.
pub fn run_by_name(name: &str, ctx: &ExpContext) -> Option<Outcome> {
    let canonical = canonical_name(name)?;
    // The tally covers exactly this experiment's simulations; the sums
    // are order-independent so the appended table is thread-invariant.
    ctx.stats.reset();
    let mut outcome = match canonical {
        "table1" => Outcome {
            name: "table1",
            tables: vec![(
                "Table I: HMC request/response read/write sizes (flits)".to_owned(),
                table1::render(),
            )],
        },
        "fig6" => {
            let points = fig6::run(ctx);
            Outcome {
                name: "fig6",
                tables: vec![(
                    "Figure 6: latency vs bidirectional bandwidth (9 ports, read-only)".to_owned(),
                    fig6::render(&points),
                )],
            }
        }
        "fig7" => {
            let points = fig7_8::run(ctx, 55);
            Outcome {
                name: "fig7",
                tables: vec![(
                    "Figure 7: low-load average latency, 1..55 requests".to_owned(),
                    fig7_8::render(&points),
                )],
            }
        }
        "fig8" => {
            let points = fig7_8::run(ctx, 350);
            Outcome {
                name: "fig8",
                tables: vec![(
                    "Figure 8: low-load average latency, 1..350 requests".to_owned(),
                    fig7_8::render(&points),
                )],
            }
        }
        "fig9" => {
            let a = fig9::run(ctx, 1);
            let b = fig9::run(ctx, 5);
            Outcome {
                name: "fig9",
                tables: vec![
                    (
                        "Figure 9a: max latency, 3 ports pinned to vault 1".to_owned(),
                        fig9::render(&a),
                    ),
                    (
                        "Figure 9b: max latency, 3 ports pinned to vault 5".to_owned(),
                        fig9::render(&b),
                    ),
                ],
            }
        }
        "fig10-12" => {
            let data: Vec<fig10_12::CombosData> = crate::common::paper_sizes()
                .iter()
                .map(|&size| fig10_12::run(ctx, size))
                .collect();
            let mut tables = Vec::new();
            for d in &data {
                tables.push((
                    format!(
                        "Figure 10 ({}): latency histogram per vault (normalized)",
                        d.size
                    ),
                    fig10_12::fig10_table(d),
                ));
            }
            tables.push((
                "Figure 11: average latency and std dev across vaults".to_owned(),
                fig10_12::fig11_summary(&data),
            ));
            for d in &data {
                tables.push((
                    format!(
                        "Figure 12 ({}): vault histogram per latency interval (row-normalized)",
                        d.size
                    ),
                    fig10_12::fig12_table(d),
                ));
            }
            Outcome {
                name: "fig10-12",
                tables,
            }
        }
        "fig13" => {
            let points = fig13::run(ctx);
            let tables = crate::common::paper_sizes()
                .iter()
                .map(|&size| {
                    (
                        format!("Figure 13 ({size}): bandwidth vs active ports (GB/s)"),
                        fig13::render(&points, size),
                    )
                })
                .collect();
            Outcome {
                name: "fig13",
                tables,
            }
        }
        "fig14" => {
            let points = fig14::run(ctx);
            Outcome {
                name: "fig14",
                tables: vec![(
                    "Figure 14: estimated outstanding requests (Little's law)".to_owned(),
                    fig14::render(&points),
                )],
            }
        }
        "ext-ddr" => Outcome {
            name: "ext-ddr",
            tables: vec![(
                "Ext-A: DDR4 channel vs HMC stack".to_owned(),
                ext::ddr_comparison(ctx),
            )],
        },
        "ext-rw" => Outcome {
            name: "ext-rw",
            tables: vec![(
                "Ext-B: read/write mix vs per-direction bandwidth".to_owned(),
                ext::rw_mix_table(&ext::rw_mix(ctx)),
            )],
        },
        "ext-chain" => Outcome {
            name: "ext-chain",
            tables: vec![(
                "Ext-C: chained cubes — latency/bandwidth vs hop count".to_owned(),
                ext_fabric::chain_table(&ext_fabric::chain(ctx)),
            )],
        },
        "ext-star" => Outcome {
            name: "ext-star",
            tables: vec![(
                "Ext-D: star of 4 cubes — near/far vault locality".to_owned(),
                ext_fabric::star_table(&ext_fabric::star(ctx)),
            )],
        },
        "probe-chase" => Outcome {
            name: "probe-chase",
            tables: vec![
                (
                    "Probe-chase A: dependent-read latency vs chain hop count (1 walker)"
                        .to_owned(),
                    probe_chase::chain_table(&probe_chase::chain(ctx)),
                ),
                (
                    "Probe-chase B: latency/throughput vs concurrent walkers (1 cube)".to_owned(),
                    probe_chase::walker_table(&probe_chase::walkers(ctx)),
                ),
            ],
        },
        "ext-intercube" => Outcome {
            name: "ext-intercube",
            tables: vec![(
                "Ext-intercube: blocked vs interleaved cube maps (CUB from the address)".to_owned(),
                ext_intercube::table(&ext_intercube::run(ctx)),
            )],
        },
        "ext-faults" => Outcome {
            name: "ext-faults",
            tables: vec![(
                "Ext-faults: BER sweep and degraded links on a saturated interleaved ring"
                    .to_owned(),
                ext_faults::table(&ext_faults::run(ctx)),
            )],
        },
        "ext-scale" => Outcome {
            name: "ext-scale",
            tables: vec![(
                "Ext-scale: 8..64-cube chain/ring/mesh under interleaved GUPS (6-bit CUB)"
                    .to_owned(),
                ext_scale::table(&ext_scale::run(ctx)),
            )],
        },
        "ext-mixed" => Outcome {
            name: "ext-mixed",
            tables: vec![(
                "Ext-mixed: pointer-chase walkers under GUPS background load".to_owned(),
                ext_mixed::table(&ext_mixed::run(ctx)),
            )],
        },
        "ext-timeline" => {
            let points = ext_timeline::run(ctx);
            Outcome {
                name: "ext-timeline",
                tables: vec![
                    (
                        "Ext-timeline A: epoch bandwidth/latency timelines at the fig6 knee"
                            .to_owned(),
                        ext_timeline::timeline_table(&points),
                    ),
                    (
                        "Ext-timeline B: round-trip latency percentiles per port and per cube"
                            .to_owned(),
                        ext_timeline::percentile_table(&points),
                    ),
                ],
            }
        }
        "ext-offload" => Outcome {
            name: "ext-offload",
            tables: vec![
                (
                    "Ext-offload A: NOM-style copy bandwidth vs chain hop count".to_owned(),
                    ext_offload::table(&ext_offload::chain(ctx), false),
                ),
                (
                    "Ext-offload B: copy on the hub vs leaves of a 4-cube star".to_owned(),
                    ext_offload::table(&ext_offload::star(ctx), true),
                ),
                (
                    "Ext-offload C: copy bandwidth vs outstanding-pair window (1 cube)".to_owned(),
                    ext_offload::table(&ext_offload::windows(ctx), false),
                ),
            ],
        },
        _ => unreachable!("canonical names are exhaustive"),
    };
    outcome.tables.push((
        "Engine: event-core counters over this experiment's runs".to_owned(),
        engine_stats_table(ctx),
    ));
    Some(outcome)
}

/// The event-engine counter tally as a one-row table.
fn engine_stats_table(ctx: &ExpContext) -> Table {
    let (runs, dispatched, wake_fires, wake_cancels, scratch_spills) = ctx.stats.snapshot();
    let mut t = Table::new([
        "runs",
        "dispatched",
        "wake_fires",
        "wake_cancels",
        "scratch_spills",
    ]);
    t.row([
        runs.to_string(),
        dispatched.to_string(),
        wake_fires.to_string(),
        wake_cancels.to_string(),
        scratch_spills.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve() {
        assert_eq!(canonical_name("FIG11"), Some("fig10-12"));
        assert_eq!(canonical_name("fig6"), Some("fig6"));
        assert_eq!(canonical_name("probe_chase"), Some("probe-chase"));
        assert_eq!(canonical_name("EXT-OFFLOAD"), Some("ext-offload"));
        assert_eq!(canonical_name("nope"), None);
    }

    #[test]
    fn table1_runs_instantly() {
        let out = run_by_name("table1", &ExpContext::quick(0)).unwrap();
        // The figure table plus the appended engine-counter table.
        assert_eq!(out.tables.len(), 2);
        assert!(out.tables[0].1.to_ascii().contains("2~9 flits"));
        assert!(out.tables[1].0.contains("Engine"));
    }
}
