//! Ext-scale: scale-out past the spec's 8-cube ceiling — {8, 16, 32, 64}
//! cubes in chain, ring and 2-D mesh fabrics under interleaved GUPS.
//!
//! The source paper's thesis is that the NoC, not the DRAM, governs
//! 3D-stacked memory performance; its companion silicon study could only
//! chain up to the 3-bit CUB field's 8 cubes. With the CUB field widened
//! to 6 bits (`DESIGN_CUB64.md`) this sweep asks the scale-out question
//! directly: as the same uniformly interleaved footprint spreads over
//! more cubes, how do the linear-diameter topologies (chain: n−1 hops,
//! ring: n/2) decay compared to the constant-degree mesh (diameter
//! `w+h−2`, 14 at 64 cubes)? Every point drives the host links with the
//! same closed-loop GUPS streams, so bandwidth differences isolate the
//! fabric: hop latency inflates round trips, transit contention eats the
//! shared links near the host, and the per-cube attribution confirms the
//! interleaved map really reaches all 64 cubes.

use hmc_sim::fabric::{FabricConfig, FabricPortSpec, FabricSim, Topology};
use hmc_sim::prelude::*;
use hmc_sim::workloads::GlobalGupsSource;

use crate::common::{ExpContext, Scale};

/// GUPS ports driving each run (the AC-510 firmware's nine would drown
/// the 64-cube points in host-link serialization; four keeps the sweep
/// fabric-bound at every size).
pub const PORTS: usize = 4;

/// The topologies the sweep compares. Star is excluded by construction:
/// a 64-cube hub exceeds the 64-port crossbar ceiling
/// ([`FabricConfig::validate`]).
pub fn topologies() -> [Topology; 3] {
    [Topology::Chain, Topology::Ring, Topology::Mesh2D]
}

/// Cube counts the sweep probes — powers of two up to the widened CUB
/// field's 64.
pub fn cube_counts(ctx: &ExpContext) -> Vec<u8> {
    match ctx.scale {
        Scale::Smoke => vec![8, 64],
        Scale::Quick | Scale::Full => vec![8, 16, 32, 64],
    }
}

/// One measured point of the scale-out sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Fabric topology.
    pub topology: Topology,
    /// Cubes in the fabric.
    pub cubes: u8,
    /// Fabric diameter: the longest shortest-path between any cube pair.
    pub diameter: u32,
    /// Counted bidirectional bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean request latency, µs.
    pub latency_us: f64,
    /// Cubes whose devices completed at least one recorded request.
    pub cubes_hit: usize,
    /// Share of recorded completions that terminated at cube 0 (%).
    pub cube0_share: f64,
}

fn run_point(ctx: &ExpContext, topology: Topology, cubes: u8) -> ScalePoint {
    let topo_idx = topologies()
        .iter()
        .position(|&t| t == topology)
        .expect("sweep topology") as u64;
    let seed = ctx.seed_for("ext-scale", (u64::from(cubes) << 8) | topo_idx);
    let cfg = FabricConfig::ac510(topology, cubes, seed);
    let routes = cfg.routes();
    let diameter = CubeId::all(cubes)
        .flat_map(|a| CubeId::all(cubes).map(move |b| (a, b)))
        .map(|(a, b)| routes.hops(a, b))
        .max()
        .unwrap_or(0);
    let fabric_map = FabricAddressMap::new(CubePolicy::Interleaved, cubes, &cfg.cube.map);
    // One cube's worth of address space, interleaved: the identical
    // footprint spreads across however many cubes the fabric has.
    let window = 1u64 << Address::BITS;
    let spec = FabricPortSpec::from_source(
        move |seed| {
            Box::new(GlobalGupsSource::new(
                GupsOp::Read(PayloadSize::B128),
                window,
                &fabric_map,
                seed,
            ))
        },
        CubeId::HOST,
    )
    .with_tags(hmc_sim::GUPS_TAGS)
    .addressed(fabric_map);
    let specs = vec![spec; PORTS];
    let mut sim = FabricSim::new(cfg, specs).with_domains(ctx.domains);
    let report = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());
    let total: u64 = CubeId::all(cubes).map(|c| report.cube_completions(c)).sum();
    ScalePoint {
        topology,
        cubes,
        diameter,
        bandwidth_gbs: report.total_bandwidth_gbs(),
        latency_us: report.mean_latency_us(),
        cubes_hit: report.cubes_hit(),
        cube0_share: if total > 0 {
            report.cube_completions(CubeId::HOST) as f64 * 100.0 / total as f64
        } else {
            0.0
        },
    }
}

/// Runs the sweep: every topology at every cube count.
pub fn run(ctx: &ExpContext) -> Vec<ScalePoint> {
    let ctx2 = ctx.clone();
    let mut jobs: Vec<(Topology, u8)> = Vec::new();
    for topology in topologies() {
        for &n in &cube_counts(ctx) {
            jobs.push((topology, n));
        }
    }
    ctx.clone()
        .par_map(jobs, move |&(topology, n)| run_point(&ctx2, topology, n))
}

/// Renders the sweep.
pub fn table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new([
        "topology",
        "cubes",
        "diameter",
        "bandwidth (GB/s)",
        "latency (us)",
        "cubes hit",
        "cube0 share (%)",
    ]);
    for p in points {
        t.row([
            p.topology.label().to_owned(),
            p.cubes.to_string(),
            p.diameter.to_string(),
            format!("{:.2}", p.bandwidth_gbs),
            format!("{:.3}", p.latency_us),
            p.cubes_hit.to_string(),
            format!("{:.1}", p.cube0_share),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(domains: usize) -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 2018,
            threads: 0,
            domains,
            stats: Default::default(),
        }
    }

    #[test]
    fn interleaving_reaches_every_cube_at_every_size() {
        let points = run(&smoke(1));
        assert_eq!(points.len(), 6, "3 topologies x 2 smoke sizes");
        for p in &points {
            assert!(p.bandwidth_gbs > 0.0, "no traffic: {p:?}");
            assert_eq!(
                p.cubes_hit,
                usize::from(p.cubes),
                "interleaving must reach every cube: {p:?}"
            );
            // A uniform draw leaves cube 0 roughly 1/n of the completions.
            assert!(
                p.cube0_share < 100.0 / f64::from(p.cubes) + 15.0,
                "cube 0 over-represented: {p:?}"
            );
            let expected_diameter = match (p.topology, p.cubes) {
                (Topology::Chain, n) => u32::from(n) - 1,
                (Topology::Ring, n) => u32::from(n) / 2,
                (Topology::Mesh2D, 8) => 4,   // 2×4 grid
                (Topology::Mesh2D, 64) => 14, // 8×8 grid
                other => panic!("unexpected point {other:?}"),
            };
            assert_eq!(p.diameter, expected_diameter, "{p:?}");
        }
        // The mesh's constant degree must beat the chain's linear
        // diameter where it matters: the 64-cube points.
        let find = |t: Topology| points.iter().find(|p| p.topology == t && p.cubes == 64);
        let (chain, mesh) = (
            find(Topology::Chain).unwrap(),
            find(Topology::Mesh2D).unwrap(),
        );
        assert!(
            mesh.latency_us < chain.latency_us,
            "64-cube mesh must undercut the chain: {mesh:?} vs {chain:?}"
        );
    }

    #[test]
    fn scale_is_byte_identical_across_domains_and_threads() {
        let render = |threads: usize, domains: usize| {
            let ctx = ExpContext {
                scale: Scale::Smoke,
                seed: 2018,
                threads,
                domains,
                stats: Default::default(),
            };
            table(&run(&ctx)).to_json()
        };
        let baseline = render(0, 1);
        assert!(baseline.contains("\"rows\""), "rendering produced rows");
        for (threads, domains) in [(1, 1), (2, 2), (0, 8), (1, 8)] {
            assert_eq!(
                baseline,
                render(threads, domains),
                "threads={threads} domains={domains} diverged"
            );
        }
    }

    #[test]
    fn table_has_one_row_per_point() {
        let p = ScalePoint {
            topology: Topology::Mesh2D,
            cubes: 64,
            diameter: 14,
            bandwidth_gbs: 10.0,
            latency_us: 2.0,
            cubes_hit: 64,
            cube0_share: 1.6,
        };
        let t = table(&[p]);
        assert_eq!(t.len(), 1);
        assert!(t.to_ascii().contains("mesh"));
    }
}
