//! Ext-faults: link-error sweep on a saturated interleaved ring.
//!
//! The fault injector (`hmc-faults`) and the link-retry protocol make
//! the fabric's off-chip links fallible the way real HMC links are: CRC
//! errors force retransmissions that pay real wire time, outage windows
//! stall the wire, and lane failures halve the link width. This
//! experiment measures what that costs end to end. Every scenario runs
//! the *same* address-interleaved GUPS workload on the same ring — the
//! setup that keeps every cube-to-cube link busy — and varies only the
//! fault plan:
//!
//! - a **BER sweep** (1e-7 → 1e-5 per flit) shows bandwidth eroding and
//!   the latency tail (p99/p999) growing as retransmissions steal wire
//!   time from fresh packets;
//! - **burst** and **outage** scenarios concentrate the same error
//!   energy into clumps, which punishes the tail far more than the mean;
//! - the **half-width** scenario is the graceful-degradation cliff: the
//!   protocol keeps every request flowing, at half the fabric bandwidth;
//! - the **dead link** scenario reroutes the ring the long way around a
//!   severed edge — connectivity survives, the detour pays hops.
//!
//! Every row completes all of its requests: faults degrade the fabric,
//! they never lose traffic. The sweep is byte-identical across
//! `--threads` and `--domains`, faults and all.

use hmc_sim::fabric::{
    FabricConfig, FabricPortSpec, FabricSim, FaultPlan, LinkFaultTotals, Topology,
};
use hmc_sim::prelude::*;
use hmc_sim::workloads::GlobalGupsSource;

use crate::common::{ExpContext, Scale};

/// GUPS ports driving each scenario.
pub fn port_count(ctx: &ExpContext) -> usize {
    match ctx.scale {
        Scale::Smoke => 4,
        Scale::Quick | Scale::Full => 9,
    }
}

/// Ring size. Power of two: the interleaved cube field must be dense.
pub fn cube_count(ctx: &ExpContext) -> u8 {
    match ctx.scale {
        Scale::Smoke => 4,
        Scale::Quick | Scale::Full => 8,
    }
}

/// The fault scenarios, as `(label, fault-spec)` pairs in the textual
/// syntax of [`FaultPlan::parse`]. The empty spec is the fault-free
/// baseline; it must stay first (tests and the CI gate key on it).
pub fn scenarios(ctx: &ExpContext) -> Vec<(&'static str, &'static str)> {
    let mut v = vec![
        ("none", ""),
        ("ber=1e-7", "all ber=1e-7"),
        ("ber=1e-6", "all ber=1e-6"),
        ("ber=1e-5", "all ber=1e-5"),
    ];
    if !matches!(ctx.scale, Scale::Smoke) {
        v.push(("ber=1e-6 burst=4", "all ber=1e-6 burst=4"));
        v.push(("ber=1e-6 +outage", "all ber=1e-6 down=40us..50us"));
        v.push(("ber=1e-4 degrade=10", "all ber=1e-4; degrade=10"));
    }
    v.push(("half-width", "all half"));
    v.push(("dead link 0-1", "all ber=1e-7; dead=0-1"));
    v
}

/// One measured fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Scenario label.
    pub label: &'static str,
    /// Counted bidirectional bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean request latency, µs.
    pub latency_us: f64,
    /// 99th-percentile request latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile request latency, µs.
    pub p999_us: f64,
    /// Requests issued / completed (equal: faults never lose traffic).
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Fabric-wide retry-protocol counter sums.
    pub totals: LinkFaultTotals,
}

fn run_point(ctx: &ExpContext, idx: usize, label: &'static str, spec: &str) -> FaultPoint {
    let seed = ctx.seed_for("ext-faults", idx as u64);
    let cubes = cube_count(ctx);
    let cfg = FabricConfig::ac510(Topology::Ring, cubes, seed);
    let fabric_map = FabricAddressMap::new(CubePolicy::Interleaved, cubes, &cfg.cube.map);
    let window = 1u64 << Address::BITS;
    let port = FabricPortSpec::from_source(
        move |seed| {
            Box::new(GlobalGupsSource::new(
                GupsOp::Read(PayloadSize::B128),
                window,
                &fabric_map,
                seed,
            ))
        },
        CubeId::HOST,
    )
    .with_tags(hmc_sim::GUPS_TAGS)
    .addressed(fabric_map);
    let specs = vec![port; port_count(ctx)];
    let hub = Hub::shared(HubConfig {
        epoch: ctx.gups_measure(),
        trace_sample: None,
    });
    let mut sim =
        FabricSim::with_telemetry(cfg, specs, Probe::attached(&hub)).with_domains(ctx.domains);
    if !spec.is_empty() {
        let plan = FaultPlan::parse(seed, spec).expect("scenario spec parses");
        sim = sim.with_faults(plan).expect("scenario plan arms");
    }
    let report = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());
    let tails = hub
        .borrow()
        .aggregate_tail_ps()
        .expect("a saturated run records completions");
    FaultPoint {
        label,
        bandwidth_gbs: report.total_bandwidth_gbs(),
        latency_us: report.mean_latency_us(),
        p99_us: tails[1] as f64 / 1e6,
        p999_us: tails[2] as f64 / 1e6,
        issued: report.ports.iter().map(|p| p.issued).sum(),
        completed: report.ports.iter().map(|p| p.completed).sum(),
        totals: report.link_fault_totals(),
    }
}

/// Runs every scenario.
pub fn run(ctx: &ExpContext) -> Vec<FaultPoint> {
    let ctx2 = ctx.clone();
    let jobs: Vec<(usize, &'static str, &'static str)> = scenarios(ctx)
        .into_iter()
        .enumerate()
        .map(|(i, (label, spec))| (i, label, spec))
        .collect();
    ctx.clone().par_map(jobs, move |&(i, label, spec)| {
        run_point(&ctx2, i, label, spec)
    })
}

/// Renders the sweep.
pub fn table(points: &[FaultPoint]) -> Table {
    let mut t = Table::new([
        "faults",
        "bandwidth (GB/s)",
        "latency (us)",
        "p99 (us)",
        "p999 (us)",
        "crc errors",
        "retries",
        "retx flits",
        "down drops",
        "half-width links",
    ]);
    for p in points {
        t.row([
            p.label.to_owned(),
            format!("{:.2}", p.bandwidth_gbs),
            format!("{:.3}", p.latency_us),
            format!("{:.3}", p.p99_us),
            format!("{:.3}", p.p999_us),
            p.totals.crc_errors.to_string(),
            p.totals.retries.to_string(),
            p.totals.retransmitted_flits.to_string(),
            p.totals.down_drops.to_string(),
            p.totals.degraded_links.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 2018,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        }
    }

    #[test]
    fn faults_degrade_but_never_lose_traffic() {
        let points = run(&smoke());
        assert_eq!(points.len(), scenarios(&smoke()).len());
        for p in &points {
            assert!(p.bandwidth_gbs > 0.0, "no traffic: {p:?}");
            assert_eq!(p.completed, p.issued, "faults lost requests: {p:?}");
            assert_eq!(
                p.totals.retries,
                p.totals.crc_errors + p.totals.down_drops,
                "retry accounting broke: {p:?}"
            );
        }
        let baseline = &points[0];
        assert_eq!(baseline.label, "none");
        assert_eq!(
            baseline.totals,
            LinkFaultTotals::default(),
            "the fault-free row must count zero retries: {baseline:?}"
        );
        let worst = points.iter().find(|p| p.label == "ber=1e-5").unwrap();
        assert!(
            worst.totals.crc_errors > 0,
            "1e-5 BER on a saturated ring must corrupt packets: {worst:?}"
        );
        let half = points.iter().find(|p| p.label == "half-width").unwrap();
        assert!(half.totals.degraded_links > 0, "{half:?}");
        assert!(
            half.bandwidth_gbs < baseline.bandwidth_gbs,
            "half-width lanes must cost bandwidth: {half:?} vs {baseline:?}"
        );
    }

    #[test]
    fn faults_are_byte_identical_across_threads_and_domains() {
        let render = |threads: usize, domains: usize| {
            let ctx = ExpContext {
                scale: Scale::Smoke,
                seed: 2018,
                threads,
                domains,
                stats: Default::default(),
            };
            table(&run(&ctx)).to_json()
        };
        let a = render(0, 1);
        assert_eq!(a, render(0, 1), "ext-faults must replay byte-identically");
        assert_eq!(a, render(1, 1), "thread count must not affect results");
        assert_eq!(a, render(0, 2), "--domains 2 must not affect results");
        assert_eq!(a, render(0, 4), "--domains 4 must not affect results");
        assert!(a.contains("\"rows\""), "rendering produced real rows");
    }

    #[test]
    fn table_has_one_row_per_point() {
        let p = FaultPoint {
            label: "ber=1e-6",
            bandwidth_gbs: 9.5,
            latency_us: 2.5,
            p99_us: 6.0,
            p999_us: 9.0,
            issued: 1000,
            completed: 1000,
            totals: LinkFaultTotals {
                crc_errors: 12,
                down_drops: 0,
                retries: 12,
                retransmitted_flits: 80,
                degraded_links: 0,
            },
        };
        let t = table(&[p]);
        assert_eq!(t.len(), 1);
        assert!(t.to_ascii().contains("ber=1e-6"));
    }
}
