//! Figure 14: estimated outstanding requests at the saturated points of
//! two- and four-bank access patterns, via Little's law. The paper uses
//! the rough linearity in bank count to infer that the vault controller
//! keeps one queue per bank.

use hmc_sim::prelude::*;

use crate::common::{gups_run, paper_sizes, ExpContext};

/// One bar of Figure 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Point {
    /// Request size.
    pub size: PayloadSize,
    /// Banks in the pattern (2 or 4).
    pub banks: u8,
    /// Little's-law estimate of outstanding requests at saturation — the
    /// quantity the paper computes from its black-box measurements.
    pub outstanding: f64,
    /// Peak requests resident in the target vault controller — the
    /// white-box confirmation of the per-bank queue structure the paper
    /// infers (only a simulator can report this directly).
    pub vault_peak: usize,
}

/// Runs the saturated (9-port) runs for the 2- and 4-bank patterns.
pub fn run(ctx: &ExpContext) -> Vec<Fig14Point> {
    let mut jobs = Vec::new();
    for &banks in &[2u8, 4u8] {
        for size in paper_sizes() {
            jobs.push((banks, size));
        }
    }
    let ctx = ctx.clone();
    ctx.clone().par_map(jobs, move |&(banks, size)| {
        let pattern = AccessPattern::Banks {
            vault: VaultId(0),
            count: banks,
        };
        let seed = ctx.seed_for("fig14", u64::from(banks) << 16 | u64::from(size.bytes()));
        let report = gups_run(&ctx, seed, pattern, GupsOp::Read(size), 9);
        Fig14Point {
            size,
            banks,
            outstanding: report.estimated_outstanding(),
            vault_peak: report.device.per_vault_peak_outstanding[0],
        }
    })
}

/// Mean outstanding across sizes for the given bank count.
pub fn average_outstanding(points: &[Fig14Point], banks: u8) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.banks == banks)
        .map(|p| p.outstanding)
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// Renders the figure: one row per size plus the average row. The first
/// two value columns are the paper's black-box Little's-law estimates;
/// the last two are the simulator's white-box vault-resident peaks, which
/// exhibit the per-bank linearity the paper infers.
pub fn render(points: &[Fig14Point]) -> Table {
    let mut t = Table::new([
        "request size",
        "2 banks (Little)",
        "4 banks (Little)",
        "2 banks (vault peak)",
        "4 banks (vault peak)",
    ]);
    for size in paper_sizes() {
        let get = |banks: u8| {
            points
                .iter()
                .find(|p| p.size == size && p.banks == banks)
                .expect("grid is complete")
        };
        t.row([
            size.to_string(),
            format!("{:.0}", get(2).outstanding),
            format!("{:.0}", get(4).outstanding),
            get(2).vault_peak.to_string(),
            get(4).vault_peak.to_string(),
        ]);
    }
    t.row([
        "Average".to_owned(),
        format!("{:.0}", average_outstanding(points, 2)),
        format!("{:.0}", average_outstanding(points, 4)),
        format!("{:.0}", average_vault_peak(points, 2)),
        format!("{:.0}", average_vault_peak(points, 4)),
    ]);
    t
}

/// Mean vault-resident peak across sizes for the given bank count.
pub fn average_vault_peak(points: &[Fig14Point], banks: u8) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.banks == banks)
        .map(|p| p.vault_peak as f64)
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    #[test]
    fn outstanding_grows_with_bank_count_and_caps_at_tags() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 14,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let points = run(&ctx);
        let two = average_outstanding(&points, 2);
        let four = average_outstanding(&points, 4);
        // The paper's inference: more banks → proportionally more resident
        // requests (288 → 535, a 1.86× ratio). In the reproduction the
        // Little's-law estimate grows more weakly (shared buffers dilute
        // it; see EXPERIMENTS.md) but must still grow, and both stay under
        // the tag ceiling.
        assert!(four > two * 1.05, "no occupancy growth: {two} → {four}");
        assert!(two < 600.0 && four < 600.0, "outstanding exceeds tag pool");
        assert!(two > 100.0, "2-bank occupancy too small: {two}");
        // The white-box view shows the per-bank queue structure directly:
        // vault-resident peaks scale nearly 2× from 2 to 4 banks.
        let peak2 = average_vault_peak(&points, 2);
        let peak4 = average_vault_peak(&points, 4);
        assert!(
            peak4 > peak2 * 1.55,
            "vault occupancy must scale with bank count: {peak2} → {peak4}"
        );
        assert_eq!(render(&points).len(), 5);
    }
}
