//! Ext-mixed: closed-loop pointer-chase walkers under open-loop GUPS
//! background load — the mixed contention study.
//!
//! The companion study's key diagnostic (a dependent-read chase, where no
//! overlap hides the round trip) is run here *while* GUPS ports hammer
//! the same far cube of a chain. Every chase hop must cross the same
//! pass-through crossbars and cube-to-cube links the background load
//! saturates, so the chase's mean latency directly measures the queueing
//! the NoC adds under load — per source, via
//! [`RunReport::source_summary`], since the chase and the GUPS ports
//! share one fabric but report separately.

use hmc_sim::fabric::{FabricConfig, FabricPortSpec, FabricSim};
use hmc_sim::prelude::*;
use hmc_sim::workloads::PointerChase;

use crate::common::{ExpContext, Scale};

/// Cubes in the chain (the chase and the background load both target the
/// far cube).
pub fn chain_cubes(ctx: &ExpContext) -> u8 {
    match ctx.scale {
        Scale::Smoke => 2,
        Scale::Quick | Scale::Full => 4,
    }
}

/// Background GUPS port counts the sweep probes.
pub fn background_ports(ctx: &ExpContext) -> Vec<usize> {
    match ctx.scale {
        Scale::Smoke => vec![0, 4],
        Scale::Quick | Scale::Full => vec![0, 2, 4, 8],
    }
}

/// Chase walkers on the probe port.
pub const WALKERS: u16 = 2;

/// One measured point of the mixed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedPoint {
    /// Background GUPS ports running alongside the chase.
    pub background: usize,
    /// Chase reads completed inside the measurement window.
    pub chase_reads: u64,
    /// Mean dependent-read round trip of the chase, ns.
    pub chase_latency_ns: f64,
    /// Mean latency of the background GUPS requests, µs (0 with no
    /// background).
    pub gups_latency_us: f64,
    /// Bidirectional bandwidth moved by the background ports, GB/s.
    pub gups_bandwidth_gbs: f64,
}

/// Runs the sweep: one chase port plus 0..N background GUPS ports, all
/// targeting the far cube of the chain.
pub fn run(ctx: &ExpContext) -> Vec<MixedPoint> {
    let ctx2 = ctx.clone();
    let cubes = chain_cubes(ctx);
    ctx.clone().par_map(background_ports(ctx), move |&bg| {
        let cfg = FabricConfig::chain(ctx2.seed_for("ext-mixed", bg as u64), cubes);
        let far = CubeId(cubes - 1);
        let map = cfg.cube.map;
        let vaults: Vec<VaultId> = (0..map.geometry().vaults).map(VaultId).collect();
        // Effectively unbounded: the measurement window, not the hop
        // budget, ends the chase.
        let hops = u64::MAX / 2;
        let chase = FabricPortSpec::from_source(
            move |seed| {
                Box::new(PointerChase::new(
                    &map,
                    &vaults,
                    PayloadSize::B64,
                    WALKERS,
                    hops,
                    seed,
                ))
            },
            far,
        )
        .with_tags(WALKERS);
        let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
        let mut specs = vec![chase];
        specs.extend(vec![
            FabricPortSpec::gups(
                filter,
                GupsOp::Read(PayloadSize::B128),
                far
            );
            bg
        ]);
        let mut sim = FabricSim::new(cfg, specs).with_domains(ctx2.domains);
        let report = sim.run_gups(ctx2.gups_warmup(), ctx2.gups_measure());
        ctx2.stats.record(&sim.engine_stats());
        let mut point = MixedPoint {
            background: bg,
            chase_reads: 0,
            chase_latency_ns: 0.0,
            gups_latency_us: 0.0,
            gups_bandwidth_gbs: 0.0,
        };
        for (label, _issued, _completed, latency) in report.source_summary() {
            match label {
                "chase" => {
                    point.chase_reads = latency.count();
                    point.chase_latency_ns = latency.mean_ns();
                }
                "gups" => {
                    point.gups_latency_us = latency.mean_ns() / 1e3;
                }
                _ => {}
            }
        }
        point.gups_bandwidth_gbs = report.source_bandwidth_gbs("gups");
        point
    })
}

/// Renders the sweep.
pub fn table(points: &[MixedPoint]) -> Table {
    let mut t = Table::new([
        "background ports",
        "chase reads",
        "chase latency (ns)",
        "gups latency (us)",
        "gups bandwidth (GB/s)",
    ]);
    for p in points {
        t.row([
            p.background.to_string(),
            p.chase_reads.to_string(),
            format!("{:.0}", p.chase_latency_ns),
            format!("{:.3}", p.gups_latency_us),
            format!("{:.2}", p.gups_bandwidth_gbs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 2018,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        }
    }

    #[test]
    fn background_load_slows_the_chase() {
        let points = run(&smoke());
        assert_eq!(points.len(), 2);
        let unloaded = &points[0];
        let loaded = &points[points.len() - 1];
        assert_eq!(unloaded.background, 0);
        assert!(unloaded.chase_reads > 0, "chase moved: {unloaded:?}");
        assert_eq!(
            unloaded.gups_bandwidth_gbs, 0.0,
            "no background, no gups traffic"
        );
        assert!(loaded.gups_bandwidth_gbs > 0.0, "{loaded:?}");
        assert!(
            loaded.chase_latency_ns > unloaded.chase_latency_ns,
            "contention must slow the dependent chase: {points:?}"
        );
        assert!(
            loaded.chase_reads < unloaded.chase_reads,
            "a slower chase completes fewer hops in the window: {points:?}"
        );
    }

    #[test]
    fn mixed_is_byte_identical_across_runs_and_thread_counts() {
        let render = |threads: usize| {
            let ctx = ExpContext {
                scale: Scale::Smoke,
                seed: 2018,
                threads,
                domains: 1,
                stats: Default::default(),
            };
            table(&run(&ctx)).to_json()
        };
        let a = render(0);
        let b = render(0);
        let serial = render(1);
        assert_eq!(a, b, "ext-mixed must replay byte-identically");
        assert_eq!(a, serial, "thread count must not affect results");
        assert!(a.contains("\"rows\""), "rendering produced real rows");
    }

    #[test]
    fn table_has_one_row_per_point() {
        let p = MixedPoint {
            background: 4,
            chase_reads: 100,
            chase_latency_ns: 1500.0,
            gups_latency_us: 3.0,
            gups_bandwidth_gbs: 12.0,
        };
        assert_eq!(table(&[p]).len(), 1);
    }
}
