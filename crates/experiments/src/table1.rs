//! Table I: request/response sizes in flits. Regenerated directly from
//! the packet layer (no simulation), as a consistency check between the
//! implementation and the specification.

use hmc_sim::prelude::*;

/// Renders Table I from the packet-layer encoding.
pub fn render() -> Table {
    let mut t = Table::new(["type", "read", "write"]);
    let sizes: Vec<PayloadSize> = (1..=8)
        .map(|n| PayloadSize::new(n * 16).expect("legal size"))
        .collect();
    let span = |vals: Vec<u32>| {
        let lo = *vals.iter().min().expect("nonempty");
        let hi = *vals.iter().max().expect("nonempty");
        if lo == hi {
            format!("{lo} flit{}", if lo == 1 { "" } else { "s" })
        } else {
            format!("{lo}~{hi} flits")
        }
    };
    t.row([
        "request".to_owned(),
        span(
            sizes
                .iter()
                .map(|&s| RequestKind::Read { size: s }.request_flits())
                .collect(),
        ),
        span(
            sizes
                .iter()
                .map(|&s| RequestKind::Write { size: s }.request_flits())
                .collect(),
        ),
    ]);
    t.row([
        "response".to_owned(),
        span(
            sizes
                .iter()
                .map(|&s| RequestKind::Read { size: s }.response_flits())
                .collect(),
        ),
        span(
            sizes
                .iter()
                .map(|&s| RequestKind::Write { size: s }.response_flits())
                .collect(),
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerates_table_1() {
        let csv = render().to_csv();
        assert!(csv.contains("request,1 flit,2~9 flits"));
        assert!(csv.contains("response,2~9 flits,1 flit"));
    }
}
