//! Figures 7 and 8: low-contention average latency as a function of the
//! number of read requests in a stream, for each request size.
//!
//! The stream firmware replays `n` random reads confined to the 16 banks
//! of one vault; the experiment repeats this for each vault and reports
//! the average latency across vaults (Section IV-B).

use hmc_sim::prelude::*;

use crate::common::{paper_sizes, stream_run, ExpContext};

/// One point of Figure 7/8.
#[derive(Debug, Clone, PartialEq)]
pub struct LowLoadPoint {
    /// Requests in the stream.
    pub n_requests: usize,
    /// Request size.
    pub size: PayloadSize,
    /// Mean latency across sampled vaults, µs.
    pub latency_us: f64,
}

/// Runs the sweep for `n ∈ {1, 1+step, …, max_n}` (1 is always included).
/// Figure 7 is `run(ctx, 55)`; Figure 8 is `run(ctx, 350)`.
pub fn run(ctx: &ExpContext, max_n: usize) -> Vec<LowLoadPoint> {
    let step = ctx.request_count_step(max_n);
    let mut counts = vec![1usize];
    let mut n = step;
    while n <= max_n {
        if n > 1 {
            counts.push(n);
        }
        n += step;
    }
    let mut jobs = Vec::new();
    for &n in &counts {
        for size in paper_sizes() {
            jobs.push((n, size));
        }
    }
    let ctx = ctx.clone();
    ctx.clone().par_map(jobs, move |&(n, size)| {
        let vaults: Vec<u8> = (0..16u8).step_by(ctx.vault_stride()).collect();
        let mut acc = 0.0;
        for &v in &vaults {
            let seed = ctx.seed_for(
                "fig7_8",
                (n as u64) << 16 | u64::from(size.bytes()) << 8 | u64::from(v),
            );
            let map = AddressMap::hmc_gen2_default();
            let trace = random_reads_in_banks(&map, VaultId(v), 16, size, n, seed);
            let report = stream_run(&ctx, seed, vec![trace]);
            acc += report.mean_latency_us();
        }
        LowLoadPoint {
            n_requests: n,
            size,
            latency_us: acc / vaults.len() as f64,
        }
    })
}

/// Renders one latency column per size, one row per request count.
pub fn render(points: &[LowLoadPoint]) -> Table {
    let sizes = paper_sizes();
    let mut headers = vec!["requests".to_owned()];
    headers.extend(sizes.iter().map(|s| format!("{s} latency (us)")));
    let mut t = Table::new(headers);
    let mut counts: Vec<usize> = points.iter().map(|p| p.n_requests).collect();
    counts.sort_unstable();
    counts.dedup();
    for n in counts {
        let mut row = vec![n.to_string()];
        for size in sizes {
            let p = points
                .iter()
                .find(|p| p.n_requests == n && p.size == size)
                .expect("grid is complete");
            row.push(format!("{:.3}", p.latency_us));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    #[test]
    fn figure7_shape_holds() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 7,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let points = run(&ctx, 55);
        let at = |n: usize, bytes: u32| {
            points
                .iter()
                .find(|p| p.n_requests == n && p.size.bytes() == bytes)
                .expect("point exists")
                .latency_us
        };
        // A single request sees the no-load round trip (~0.7 µs),
        // independent of size (±15%).
        for bytes in [16, 32, 64, 128] {
            let lat = at(1, bytes);
            assert!((0.55..=0.85).contains(&lat), "no-load {bytes}B = {lat}");
        }
        // Latency grows with stream depth, faster for larger requests.
        let n = points.iter().map(|p| p.n_requests).max().unwrap();
        assert!(at(n, 16) > at(1, 16));
        assert!(at(n, 128) > at(n, 16), "big requests queue longer");
        // Paper anchors: ≈1.1 µs for 16 B and ≈2.2 µs for 128 B at n=55;
        // accept a generous band since n is sampled.
        assert!((0.8..=1.6).contains(&at(n, 16)), "16B end {}", at(n, 16));
        assert!((1.2..=3.2).contains(&at(n, 128)), "128B end {}", at(n, 128));
    }

    #[test]
    fn figure8_saturates_after_linear_region() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 8,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let points = run(&ctx, 350);
        let series: Vec<&LowLoadPoint> = points.iter().filter(|p| p.size.bytes() == 128).collect();
        let first = series.first().unwrap().latency_us;
        let last = series.last().unwrap().latency_us;
        assert!(last > 2.0 * first, "latency must rise under load");
        // Saturation: the last two sampled points differ by <15%, while
        // the first interval grows much faster.
        let n = series.len();
        let tail_growth = series[n - 1].latency_us / series[n - 2].latency_us;
        assert!(tail_growth < 1.15, "tail still rising: {tail_growth}");
    }
}
