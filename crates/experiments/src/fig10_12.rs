//! Figures 10–12: the four-vault combination sweep.
//!
//! Every C(16,4) combination of vaults is exercised by four stream ports
//! (one vault each); the run's average latency is then associated with
//! each vault of the combination. Figure 10 shows the per-vault latency
//! histograms; Figure 11 the mean and standard deviation per request
//! size; Figure 12 the transpose (which vaults contribute to each latency
//! interval).

use hmc_sim::prelude::*;

use crate::common::{stream_run, ExpContext};

/// Number of histogram bins, matching the paper's nine latency intervals.
pub const BINS: usize = 9;

/// The combination-sweep samples for one request size.
#[derive(Debug, Clone, PartialEq)]
pub struct CombosData {
    /// Request size.
    pub size: PayloadSize,
    /// For each vault, the average latencies (ns) of every sampled
    /// combination containing it.
    pub per_vault_ns: Vec<Vec<f64>>,
    /// Combinations sampled.
    pub combos_run: usize,
}

/// Runs the combination sweep for one request size.
pub fn run(ctx: &ExpContext, size: PayloadSize) -> CombosData {
    let combos: Vec<Vec<VaultId>> = vault_combinations(16, 4)
        .step_by(ctx.combo_stride())
        .collect();
    let ctx_copy = ctx.clone();
    let averages: Vec<f64> = ctx.clone().par_map(combos.clone(), move |combo| {
        let reads = ctx_copy.stream_reads();
        let map = AddressMap::hmc_gen2_default();
        let mut key = u64::from(size.bytes());
        for v in combo {
            key = key << 4 | u64::from(v.0);
        }
        let seed = ctx_copy.seed_for("fig10", key);
        let traces: Vec<Trace> = combo
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                random_reads_in_vaults(&map, &[v], size, reads, seed.wrapping_add(i as u64))
            })
            .collect();
        let report = stream_run(ctx, seed, traces);
        report.mean_latency_ns()
    });
    let mut per_vault_ns: Vec<Vec<f64>> = vec![Vec::new(); 16];
    for (combo, avg) in combos.iter().zip(&averages) {
        for v in combo {
            per_vault_ns[v.index()].push(*avg);
        }
    }
    CombosData {
        size,
        per_vault_ns,
        combos_run: combos.len(),
    }
}

/// The shared latency range of a data set (global min/max across vaults).
fn shared_range(data: &CombosData) -> hmc_sim::stats::SharedRange {
    let mut range = hmc_sim::stats::SharedRange::new();
    for samples in &data.per_vault_ns {
        for &x in samples {
            range.observe(x);
        }
    }
    range
}

/// Figure 10: one row per vault, nine bins, each cell the fraction of the
/// vault's samples falling in that latency interval.
pub fn fig10_table(data: &CombosData) -> Table {
    let range = shared_range(data);
    let template = range.histogram(BINS).expect("sweep produced samples");
    let mut headers = vec!["vault".to_owned()];
    for b in 0..BINS {
        headers.push(format!("{:.0}ns", template.bin_center(b)));
    }
    // Out-of-range samples clamp to the edge bins (see
    // `hmc_stats::Histogram`); the tally is reported so a nonzero count
    // is visible rather than silently folded into the edges. With the
    // shared range derived from the samples themselves it stays 0.
    headers.push("clamped".to_owned());
    let mut t = Table::new(headers);
    for (v, samples) in data.per_vault_ns.iter().enumerate() {
        let mut h = range.histogram(BINS).expect("range nonempty");
        for &x in samples {
            h.record(x);
        }
        let mut row = vec![v.to_string()];
        row.extend(h.normalized().iter().map(|f| format!("{f:.3}")));
        row.push(h.clamped().to_string());
        t.row(row);
    }
    t
}

/// Figure 11 rows: `(size, mean µs, σ ns)` across all samples of each
/// size's sweep.
pub fn fig11_summary(data_per_size: &[CombosData]) -> Table {
    let mut t = Table::new(["size", "avg latency (us)", "std dev (ns)"]);
    for data in data_per_size {
        let mut s = Summary::new();
        for samples in &data.per_vault_ns {
            for &x in samples {
                s.record(x);
            }
        }
        t.row([
            data.size.to_string(),
            format!("{:.3}", s.mean() / 1e3),
            format!("{:.1}", s.population_std_dev()),
        ]);
    }
    t
}

/// The `(mean_ns, std_dev_ns)` of one size's sweep (Figure 11's series).
pub fn latency_moments(data: &CombosData) -> (f64, f64) {
    let mut s = Summary::new();
    for samples in &data.per_vault_ns {
        for &x in samples {
            s.record(x);
        }
    }
    (s.mean(), s.population_std_dev())
}

/// Figure 12: transpose of Figure 10 — one row per latency interval, one
/// column per vault, normalized by the row maximum.
pub fn fig12_table(data: &CombosData) -> Table {
    let range = shared_range(data);
    let template = range.histogram(BINS).expect("sweep produced samples");
    // counts[bin][vault]
    let mut counts = vec![vec![0u64; 16]; BINS];
    for (v, samples) in data.per_vault_ns.iter().enumerate() {
        let mut h = range.histogram(BINS).expect("range nonempty");
        for &x in samples {
            h.record(x);
        }
        for (b, &c) in h.bin_counts().iter().enumerate() {
            counts[b][v] = c;
        }
    }
    let mut headers = vec!["latency".to_owned()];
    headers.extend((0..16).map(|v| format!("v{v}")));
    let mut t = Table::new(headers);
    for (b, row_counts) in counts.iter().enumerate() {
        let max = row_counts.iter().copied().max().unwrap_or(0).max(1);
        let mut row = vec![format!("{:.0}ns", template.bin_center(b))];
        row.extend(
            row_counts
                .iter()
                .map(|&c| format!("{:.3}", c as f64 / max as f64)),
        );
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{ExpContext, Scale};

    fn tiny_ctx() -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 10,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        }
    }

    /// One reduced sweep exercised end to end; checks sample bookkeeping
    /// and the Figure 11 variance claim (larger requests vary more).
    #[test]
    fn sweep_bookkeeping_and_variance_ordering() {
        let ctx = tiny_ctx();
        let small = run(&ctx, PayloadSize::B16);
        let large = run(&ctx, PayloadSize::B128);
        // Every combination contributes to exactly 4 vaults.
        let total_small: usize = small.per_vault_ns.iter().map(Vec::len).sum();
        assert_eq!(total_small, small.combos_run * 4);
        // Stride-40 sampling of 1820 combos.
        assert_eq!(small.combos_run, 1820usize.div_ceil(40));
        // Figure 11: larger requests are slower; both sweeps show spread.
        // (The σ *ordering* needs the full combination sweep to stand out
        // from sampling noise; the quick/full `repro fig11` run reports
        // it, and EXPERIMENTS.md records the measured values.)
        let (mean16, sd16) = latency_moments(&small);
        let (mean128, sd128) = latency_moments(&large);
        assert!(mean128 > mean16, "mean ordering: {mean16} vs {mean128}");
        assert!(sd16 > 0.0 && sd128 > 0.0, "no spread: {sd16} / {sd128}");
        // Tables render with the right geometry.
        let f10 = fig10_table(&small);
        assert_eq!(f10.len(), 16);
        let f12 = fig12_table(&small);
        assert_eq!(f12.len(), BINS);
        let f11 = fig11_summary(&[small, large]);
        assert_eq!(f11.len(), 2);
    }
}
