//! Extension experiments on multi-cube memory networks.
//!
//! - **Ext-chain**: latency and bandwidth versus hop count on a daisy
//!   chain of 1–8 cubes, the configuration the paper's companion study
//!   ("Demystifying the Characteristics of 3D-Stacked Memories", ISPASS
//!   2017) measures on chaining-capable silicon. Unloaded read latency
//!   must grow monotonically with hop count: every hop adds a
//!   pass-through crossbar traversal and a link flight in each direction.
//! - **Ext-star**: near/far vault locality under a star of four cubes —
//!   the hub (cube 0) is one crossbar away while the leaves sit behind a
//!   fabric hop, so the same vault-level access pattern costs measurably
//!   more on a leaf, and hub-bound and leaf-bound traffic contend in the
//!   hub's pass-through crossbar.

use hmc_sim::fabric::{FabricConfig, FabricPortSpec, FabricSim};
use hmc_sim::prelude::*;

use crate::common::{ExpContext, Scale};

/// One point of the chain sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPoint {
    /// Cubes in the chain.
    pub cubes: u8,
    /// Fabric hops between host cube and target cube.
    pub hops: u32,
    /// Unloaded read round trip to the far cube, ns.
    pub unloaded_ns: f64,
    /// Mean latency under nine saturating GUPS ports, µs.
    pub loaded_us: f64,
    /// Counted bidirectional bandwidth under the same load, GB/s.
    pub bandwidth_gbs: f64,
}

/// The cube counts a context sweeps.
pub fn chain_lengths(ctx: &ExpContext) -> Vec<u8> {
    match ctx.scale {
        Scale::Smoke => vec![1, 2, 4],
        Scale::Quick | Scale::Full => (1..=8).collect(),
    }
}

/// Runs the chain sweep: all traffic targets the cube at the far end.
pub fn chain(ctx: &ExpContext) -> Vec<ChainPoint> {
    chain_for_lengths(ctx, chain_lengths(ctx))
}

/// Runs the chain experiment for an explicit list of chain lengths — the
/// scale-driven sweep restricted to chosen points (used by the scheduler
/// determinism regression, which replays the 4-cube chain alone).
pub fn chain_for_lengths(ctx: &ExpContext, lengths: Vec<u8>) -> Vec<ChainPoint> {
    let ctx = ctx.clone();
    ctx.clone().par_map(lengths, move |&n| {
        let far = CubeId(n - 1);
        let mk = || FabricConfig::chain(ctx.seed_for("ext-chain", u64::from(n)), n);

        // Unloaded: one read in flight at a time, via a stream port.
        let cfg = mk();
        let trace = hmc_sim::workloads::random_reads_in_banks(
            &cfg.cube.map,
            VaultId(0),
            16,
            PayloadSize::B64,
            1,
            ctx.seed_for("ext-chain-unloaded", u64::from(n)),
        );
        let mut sim =
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, far)]).with_domains(ctx.domains);
        let unloaded = sim.run_streams().mean_latency_ns();
        ctx.stats.record(&sim.engine_stats());

        // Loaded: nine GUPS ports of 128 B reads over all vaults.
        let cfg = mk();
        let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
        let specs = vec![FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B128), far); 9];
        let mut sim = FabricSim::new(cfg, specs).with_domains(ctx.domains);
        let report = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
        ctx.stats.record(&sim.engine_stats());

        ChainPoint {
            cubes: n,
            hops: u32::from(n - 1),
            unloaded_ns: unloaded,
            loaded_us: report.mean_latency_us(),
            bandwidth_gbs: report.total_bandwidth_gbs(),
        }
    })
}

/// Renders the chain sweep.
pub fn chain_table(points: &[ChainPoint]) -> Table {
    let mut t = Table::new([
        "cubes",
        "hops",
        "unloaded latency (ns)",
        "loaded latency (us)",
        "bandwidth (GB/s)",
    ]);
    for p in points {
        t.row([
            p.cubes.to_string(),
            p.hops.to_string(),
            format!("{:.0}", p.unloaded_ns),
            format!("{:.3}", p.loaded_us),
            format!("{:.2}", p.bandwidth_gbs),
        ]);
    }
    t
}

/// One row of the star experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct StarPoint {
    /// The target cube.
    pub cube: u8,
    /// Fabric hops from the host to it.
    pub hops: u32,
    /// Unloaded read round trip, ns.
    pub unloaded_ns: f64,
    /// Mean latency of this cube's ports with all cubes loaded, µs.
    pub loaded_us: f64,
    /// Bandwidth moved by this cube's ports in the loaded run, GB/s.
    pub bandwidth_gbs: f64,
}

/// Cubes in the star experiment (hub + three leaves).
pub const STAR_CUBES: u8 = 4;

/// Runs the star experiment: per-cube unloaded probes, then one loaded
/// run with two GUPS ports per cube so near (hub) and far (leaf) traffic
/// contend in the hub's pass-through crossbar.
pub fn star(ctx: &ExpContext) -> Vec<StarPoint> {
    let seed = ctx.seed_for("ext-star", 0);
    let routes = FabricConfig::star(seed, STAR_CUBES).routes();

    // Unloaded probes, one per target cube.
    let ctx2 = ctx.clone();
    let unloaded: Vec<f64> = ctx.clone().par_map((0..STAR_CUBES).collect(), move |&c| {
        let cfg = FabricConfig::star(ctx2.seed_for("ext-star", 1), STAR_CUBES);
        let trace = hmc_sim::workloads::random_reads_in_banks(
            &cfg.cube.map,
            VaultId(0),
            16,
            PayloadSize::B64,
            1,
            ctx2.seed_for("ext-star-unloaded", u64::from(c)),
        );
        let mut sim = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(c))])
            .with_domains(ctx2.domains);
        let unloaded = sim.run_streams().mean_latency_ns();
        ctx2.stats.record(&sim.engine_stats());
        unloaded
    });

    // Loaded: two 128 B GUPS ports per cube, all vaults.
    let cfg = FabricConfig::star(seed, STAR_CUBES);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
    let specs: Vec<FabricPortSpec> = (0..STAR_CUBES)
        .flat_map(|c| {
            vec![FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B128), CubeId(c)); 2]
        })
        .collect();
    let mut sim = FabricSim::new(cfg, specs).with_domains(ctx.domains);
    let report = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());

    (0..STAR_CUBES)
        .map(|c| StarPoint {
            cube: c,
            hops: routes.hops(CubeId(0), CubeId(c)),
            unloaded_ns: unloaded[usize::from(c)],
            loaded_us: report.cube_latency(CubeId(c)).mean_ns() / 1e3,
            bandwidth_gbs: report.cube_bandwidth_gbs(CubeId(c)),
        })
        .collect()
}

/// Renders the star experiment.
pub fn star_table(points: &[StarPoint]) -> Table {
    let mut t = Table::new([
        "cube",
        "hops",
        "unloaded latency (ns)",
        "loaded latency (us)",
        "bandwidth (GB/s)",
    ]);
    for p in points {
        t.row([
            format!("cube{}{}", p.cube, if p.cube == 0 { " (hub)" } else { "" }),
            p.hops.to_string(),
            format!("{:.0}", p.unloaded_ns),
            format!("{:.3}", p.loaded_us),
            format!("{:.2}", p.bandwidth_gbs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_latency_grows_monotonically_with_hops() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 30,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let points = chain(&ctx);
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].unloaded_ns > pair[0].unloaded_ns,
                "unloaded latency must grow with hops: {:?}",
                points
            );
            assert!(
                pair[1].loaded_us > 0.0 && pair[1].bandwidth_gbs > 0.0,
                "loaded run produced no traffic"
            );
        }
        // The per-hop increment is at least two SerDes flights (~110 ns).
        let d = points[1].unloaded_ns - points[0].unloaded_ns;
        assert!(d > 110.0, "first hop adds only {d} ns");
    }

    #[test]
    fn ext_chain_rendering_is_byte_identical_across_runs() {
        // Guards the two-level scheduler swap: the 4-cube ext-chain point
        // (host wakeups, transit crossbars, fabric links, credit
        // notifications all active) must render to byte-identical JSON on
        // every run. Any hidden ordering or iteration nondeterminism in
        // the engine, the timer wheel, or the wake bookkeeping would
        // perturb latencies and break this.
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 2018,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let a = chain_table(&chain_for_lengths(&ctx, vec![4])).to_json();
        let b = chain_table(&chain_for_lengths(&ctx, vec![4])).to_json();
        assert_eq!(a, b, "ext-chain (4 cubes) must replay byte-identically");
        assert!(a.contains("\"rows\""), "rendering produced real rows");
    }

    #[test]
    fn star_leaves_are_slower_than_the_hub() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 31,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let points = star(&ctx);
        assert_eq!(points.len(), usize::from(STAR_CUBES));
        let hub = &points[0];
        assert_eq!(hub.hops, 0);
        for leaf in &points[1..] {
            assert_eq!(leaf.hops, 1);
            assert!(
                leaf.unloaded_ns > hub.unloaded_ns + 110.0,
                "leaf {leaf:?} not a hop slower than hub {hub:?}"
            );
            assert!(
                leaf.loaded_us > hub.loaded_us,
                "loaded leaf latency must exceed hub: {leaf:?} vs {hub:?}"
            );
        }
    }

    #[test]
    fn tables_have_one_row_per_point() {
        let p = ChainPoint {
            cubes: 2,
            hops: 1,
            unloaded_ns: 900.0,
            loaded_us: 2.0,
            bandwidth_gbs: 20.0,
        };
        assert_eq!(chain_table(&[p]).len(), 1);
        let s = StarPoint {
            cube: 0,
            hops: 0,
            unloaded_ns: 700.0,
            loaded_us: 1.5,
            bandwidth_gbs: 10.0,
        };
        let t = star_table(&[s]);
        assert_eq!(t.len(), 1);
        assert!(t.to_ascii().contains("hub"));
    }
}
