//! Ext-timeline: the Figure 6 saturation knee as *timelines*.
//!
//! Figure 6 reports one (bandwidth, latency) point per run — the steady
//! state, averaged over the whole measurement window. This extension
//! re-runs the knee's two endpoints — nine ports at low load (shallow
//! tag pools, few outstanding requests) and at saturation (the full
//! 64-tag pools) — with the telemetry hub attached and reports what the
//! averages hide: per-epoch bandwidth and mean-latency timelines, and the
//! full latency *distribution* (p50/p99/p999 per source port and per
//! cube) from the hub's mergeable quantile sketches.
//!
//! Everything here is derived from one deterministic simulation per
//! point, so the rendered tables are byte-identical across runs and
//! `--threads` settings.

use hmc_sim::prelude::*;

use crate::common::ExpContext;

/// One epoch of a point's completion timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Epoch index (0 = start of the measurement window).
    pub epoch: usize,
    /// Requests completed in the epoch.
    pub completed: u64,
    /// Counted round-trip bandwidth over the epoch, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean round-trip latency of the epoch's completions, ns.
    pub mean_latency_ns: f64,
}

/// Tail latencies of one sketch: `(p50, p99, p999)` in picoseconds.
pub type TailPs = [u64; 3];

/// One load point of the timeline experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Point label (`low` / `saturated`).
    pub label: &'static str,
    /// Tag-pool size per port (the load axis, as in Figures 7/8).
    pub tags: u16,
    /// Epoch width, µs.
    pub epoch_us: f64,
    /// The completion timeline, one row per epoch (the tail rows past
    /// the measurement window hold the drain of in-flight requests).
    pub rows: Vec<EpochRow>,
    /// Per-source-port round-trip tails, ascending port id.
    pub source_tails: Vec<(u16, TailPs)>,
    /// Per-cube round-trip tails, ascending cube id.
    pub cube_tails: Vec<(u8, TailPs)>,
}

/// Epoch width per scale: long enough to smooth FPGA-cycle granularity,
/// short enough that every scale's measurement window spans several
/// epochs.
fn epoch_width(ctx: &ExpContext) -> Delay {
    match ctx.scale {
        crate::Scale::Smoke => Delay::from_us(5),
        crate::Scale::Quick => Delay::from_us(10),
        crate::Scale::Full => Delay::from_us(20),
    }
}

/// Builds the telemetry-on system for one point and runs it: nine GUPS
/// ports of 128 B reads over all vaults, `tags` outstanding requests per
/// port.
fn run_point(ctx: &ExpContext, label: &'static str, tags: u16) -> TimelinePoint {
    let seed = ctx.seed_for("ext-timeline", u64::from(tags));
    let mut cfg = SystemConfig::ac510(seed);
    cfg.seed = seed;
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)).with_tags(tags); 9];
    let epoch = epoch_width(ctx);
    let hub = Hub::shared(HubConfig {
        epoch,
        trace_sample: None,
    });
    let mut sim = SystemSim::with_telemetry(cfg, specs, Probe::attached(&hub));
    let _ = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());
    let hub = hub.borrow();
    let epoch_ps = hub.epoch_ps() as f64;
    let rows = (0..hub.epochs())
        .map(|e| {
            let completed = hub.completion_count().get(e);
            let bytes = hub.completion_bytes().get(e);
            let lat_ps = hub.completion_latency_ps().get(e);
            EpochRow {
                epoch: e,
                completed,
                // bytes per picosecond is terabytes per second.
                bandwidth_gbs: bytes as f64 / epoch_ps * 1000.0,
                mean_latency_ns: if completed == 0 {
                    0.0
                } else {
                    lat_ps as f64 / completed as f64 / 1000.0
                },
            }
        })
        .collect();
    let source_tails = hub
        .source_sketches()
        .keys()
        .map(|&s| (s, hub.source_tail_ps(s).expect("sketch has samples")))
        .collect();
    let cube_tails = hub
        .cube_sketches()
        .keys()
        .map(|&c| (c, hub.cube_tail_ps(c).expect("sketch has samples")))
        .collect();
    TimelinePoint {
        label,
        tags,
        epoch_us: epoch_ps / 1e6,
        rows,
        source_tails,
        cube_tails,
    }
}

/// Runs the two knee endpoints. Serial on purpose: each point owns a
/// single-threaded telemetry hub, and two runs don't need a sweep.
pub fn run(ctx: &ExpContext) -> Vec<TimelinePoint> {
    vec![
        run_point(ctx, "low", 2),
        run_point(ctx, "saturated", hmc_sim::GUPS_TAGS),
    ]
}

/// The per-epoch bandwidth/latency timeline table.
pub fn timeline_table(points: &[TimelinePoint]) -> Table {
    let mut t = Table::new([
        "point",
        "epoch",
        "t (us)",
        "completed",
        "bandwidth (GB/s)",
        "mean latency (ns)",
    ]);
    for p in points {
        for r in &p.rows {
            t.row([
                p.label.to_owned(),
                r.epoch.to_string(),
                format!("{:.1}", r.epoch as f64 * p.epoch_us),
                r.completed.to_string(),
                format!("{:.3}", r.bandwidth_gbs),
                format!("{:.1}", r.mean_latency_ns),
            ]);
        }
    }
    t
}

/// The latency-percentile table: one row per source port and per cube.
pub fn percentile_table(points: &[TimelinePoint]) -> Table {
    let mut t = Table::new(["point", "group", "id", "p50 (ns)", "p99 (ns)", "p999 (ns)"]);
    let ns = |ps: u64| format!("{:.3}", ps as f64 / 1000.0);
    for p in points {
        for &(port, [p50, p99, p999]) in &p.source_tails {
            t.row([
                p.label.to_owned(),
                "port".to_owned(),
                port.to_string(),
                ns(p50),
                ns(p99),
                ns(p999),
            ]);
        }
        for &(cube, [p50, p99, p999]) in &p.cube_tails {
            t.row([
                p.label.to_owned(),
                "cube".to_owned(),
                cube.to_string(),
                ns(p50),
                ns(p99),
                ns(p999),
            ]);
        }
    }
    t
}

/// One designated saturated run with the sampled packet tracer on.
/// Returns `(chrome_trace_json, traced_slices)`. This is an *extra* run —
/// the sweep outputs of whatever experiments were requested are not
/// perturbed by tracing.
pub fn traced_run(ctx: &ExpContext, sample: u64) -> (String, usize) {
    let seed = ctx.seed_for("ext-timeline", 9);
    let mut cfg = SystemConfig::ac510(seed);
    cfg.seed = seed;
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
    let specs = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128)); 9];
    let hub = Hub::shared(HubConfig {
        epoch: epoch_width(ctx),
        trace_sample: Some(sample.max(1)),
    });
    let mut sim = SystemSim::with_telemetry(cfg, specs, Probe::attached(&hub));
    let _ = sim.run_gups(ctx.gups_warmup(), ctx.gups_measure());
    ctx.stats.record(&sim.engine_stats());
    let hub = hub.borrow();
    (hub.trace_json(), hub.traced_slices())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    fn smoke(threads: usize) -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 77,
            threads,
            domains: 1,
            stats: Default::default(),
        }
    }

    #[test]
    fn knee_shows_in_the_timelines() {
        let points = run(&smoke(0));
        assert_eq!(points.len(), 2);
        let (low, sat) = (&points[0], &points[1]);
        assert!(low.rows.len() >= 2, "low point spans epochs");
        assert!(sat.rows.len() >= 2, "saturated point spans epochs");
        // Saturation: more bandwidth and a fatter latency tail.
        let peak = |p: &TimelinePoint| {
            p.rows
                .iter()
                .map(|r| r.bandwidth_gbs)
                .fold(0.0f64, f64::max)
        };
        assert!(peak(sat) > 2.0 * peak(low));
        let p99 = |p: &TimelinePoint| p.cube_tails[0].1[1];
        assert!(p99(sat) > p99(low));
        // Tails are ordered within every sketch.
        for p in &points {
            for &(_, [a, b, c]) in &p.source_tails {
                assert!(a <= b && b <= c);
            }
            for &(_, [a, b, c]) in &p.cube_tails {
                assert!(a <= b && b <= c);
            }
        }
        assert_eq!(sat.source_tails.len(), 9);
    }

    #[test]
    fn rendered_tables_are_thread_invariant() {
        let a = run(&smoke(1));
        let b = run(&smoke(2));
        assert_eq!(timeline_table(&a).to_ascii(), timeline_table(&b).to_ascii());
        assert_eq!(
            percentile_table(&a).to_ascii(),
            percentile_table(&b).to_ascii()
        );
    }

    #[test]
    fn traced_run_emits_valid_chrome_json() {
        let (json, slices) = traced_run(&smoke(0), 32);
        assert!(slices > 0, "sampling captured packets");
        hmc_sim::stats::validate_json(&json).expect("well-formed trace JSON");
        assert!(json.starts_with("{\"traceEvents\":["));
    }
}
