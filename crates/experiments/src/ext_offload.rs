//! Ext-offload: NOM-style near-memory copy streams over memory networks.
//!
//! NOM ("Network-On-Memory: Inter-Bank Data Transfer in Highly-Banked
//! Memories", Rezaei et al., 2020) starts from the observation that a
//! host-mediated copy between banks of the *same* memory crosses the NoC
//! twice per block: a read round trip followed by a dependent write round
//! trip. The closed-loop [`OffloadSource`] reproduces exactly that loop —
//! paired read→dependent-write bursts between two vaults — so this
//! experiment measures what NOM's in-memory network would eliminate:
//!
//! - **Chain sweep** — the copied region lives in the far cube of a 1–4
//!   cube chain: every block pays the fabric twice in each direction, so
//!   effective copy bandwidth collapses with hop count.
//! - **Star sweep** — the same copy on the hub versus a leaf of a 4-cube
//!   star.
//! - **Window sweep** — outstanding copy pairs 1→32 on a single cube: how
//!   much of the NoC round trip pipelining can hide.

use hmc_sim::fabric::{FabricConfig, FabricPortSpec, FabricSim};
use hmc_sim::prelude::*;
use hmc_sim::workloads::OffloadSource;
use hmc_sim::RunReport;

use crate::common::{ExpContext, Scale};
use crate::ext_fabric::STAR_CUBES;

/// Blocks copied per offload run.
pub fn copy_blocks(ctx: &ExpContext) -> u64 {
    match ctx.scale {
        Scale::Smoke => 150,
        Scale::Quick => 500,
        Scale::Full => 2_000,
    }
}

/// Default outstanding-pair window.
pub const DEFAULT_WINDOW: u16 = 16;

/// Block size of every copy in this experiment — shared between the
/// source spec and the copied-bytes accounting.
pub const COPY_SIZE: PayloadSize = PayloadSize::B128;

/// One offload measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadPoint {
    /// The cube holding both copy regions.
    pub cube: u8,
    /// Fabric hops between the host and that cube.
    pub hops: u32,
    /// Outstanding-pair window.
    pub window: u16,
    /// Payload actually copied, MB.
    pub copied_mb: f64,
    /// Effective copy bandwidth (copied payload / elapsed), GB/s.
    pub copy_gbs: f64,
    /// Mean per-request latency across the reads and dependent writes, µs.
    pub latency_us: f64,
}

fn point_from(report: &RunReport, cube: u8, hops: u32, window: u16, blocks: u64) -> OffloadPoint {
    let payload_bytes = blocks * u64::from(COPY_SIZE.bytes());
    let elapsed_ps = report.elapsed.as_ps() as f64;
    OffloadPoint {
        cube,
        hops,
        window,
        copied_mb: payload_bytes as f64 / 1e6,
        copy_gbs: if elapsed_ps > 0.0 {
            payload_bytes as f64 * 1e3 / elapsed_ps
        } else {
            0.0
        },
        latency_us: report.mean_latency_us(),
    }
}

/// Builds the copy spec: vault 0 → vault 8 of the target cube,
/// [`COPY_SIZE`] blocks.
fn offload_spec(map: AddressMap, cube: CubeId, blocks: u64, window: u16) -> FabricPortSpec {
    FabricPortSpec::from_source(
        move |_| {
            Box::new(OffloadSource::new(
                &map,
                VaultId(0),
                VaultId(8),
                COPY_SIZE,
                blocks,
                window,
            ))
        },
        cube,
    )
}

/// Chain lengths the offload sweep probes.
pub fn offload_chain_lengths(ctx: &ExpContext) -> Vec<u8> {
    match ctx.scale {
        Scale::Smoke => vec![1, 2, 4],
        Scale::Quick | Scale::Full => (1..=4).collect(),
    }
}

/// Runs the chain sweep: the copy lives in the far cube.
pub fn chain(ctx: &ExpContext) -> Vec<OffloadPoint> {
    let ctx = ctx.clone();
    let blocks = copy_blocks(&ctx);
    ctx.clone().par_map(offload_chain_lengths(&ctx), move |&n| {
        let cfg = FabricConfig::chain(ctx.seed_for("ext-offload-chain", u64::from(n)), n);
        let map = cfg.cube.map;
        let far = CubeId(n - 1);
        let mut sim = FabricSim::new(cfg, vec![offload_spec(map, far, blocks, DEFAULT_WINDOW)])
            .with_domains(ctx.domains);
        let report = sim.run_streams();
        ctx.stats.record(&sim.engine_stats());
        point_from(&report, n - 1, u32::from(n - 1), DEFAULT_WINDOW, blocks)
    })
}

/// Runs the star sweep: the copy on the hub, then on each leaf.
pub fn star(ctx: &ExpContext) -> Vec<OffloadPoint> {
    let ctx = ctx.clone();
    let blocks = copy_blocks(&ctx);
    ctx.clone().par_map((0..STAR_CUBES).collect(), move |&c| {
        let cfg = FabricConfig::star(
            ctx.seed_for("ext-offload-star", 1 + u64::from(c)),
            STAR_CUBES,
        );
        let hops = cfg.routes().hops(CubeId(0), CubeId(c));
        let map = cfg.cube.map;
        let mut sim = FabricSim::new(
            cfg,
            vec![offload_spec(map, CubeId(c), blocks, DEFAULT_WINDOW)],
        )
        .with_domains(ctx.domains);
        let report = sim.run_streams();
        ctx.stats.record(&sim.engine_stats());
        point_from(&report, c, hops, DEFAULT_WINDOW, blocks)
    })
}

/// Window values the pipelining sweep probes.
pub fn window_values(ctx: &ExpContext) -> Vec<u16> {
    match ctx.scale {
        Scale::Smoke => vec![1, 4, 16],
        Scale::Quick | Scale::Full => vec![1, 2, 4, 8, 16, 32],
    }
}

/// Runs the window sweep on a single cube.
pub fn windows(ctx: &ExpContext) -> Vec<OffloadPoint> {
    let ctx = ctx.clone();
    let blocks = copy_blocks(&ctx);
    ctx.clone().par_map(window_values(&ctx), move |&w| {
        let cfg = FabricConfig::single(
            DeviceConfig::ac510_hmc(),
            HostConfig::ac510_default(),
            ctx.seed_for("ext-offload-window", u64::from(w)),
        );
        let map = cfg.cube.map;
        let mut sim = FabricSim::new(cfg, vec![offload_spec(map, CubeId(0), blocks, w)])
            .with_domains(ctx.domains);
        let report = sim.run_streams();
        ctx.stats.record(&sim.engine_stats());
        point_from(&report, 0, 0, w, blocks)
    })
}

/// Renders offload points.
pub fn table(points: &[OffloadPoint], star_labels: bool) -> Table {
    let mut t = Table::new([
        "cube",
        "hops",
        "window",
        "copied (MB)",
        "copy bandwidth (GB/s)",
        "mean latency (us)",
    ]);
    for p in points {
        let cube = if star_labels && p.cube == 0 {
            format!("cube{} (hub)", p.cube)
        } else {
            format!("cube{}", p.cube)
        };
        t.row([
            cube,
            p.hops.to_string(),
            p.window.to_string(),
            format!("{:.3}", p.copied_mb),
            format!("{:.3}", p.copy_gbs),
            format!("{:.3}", p.latency_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 33,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        }
    }

    #[test]
    fn copy_bandwidth_collapses_with_hop_count() {
        let points = chain(&smoke());
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].copy_gbs < pair[0].copy_gbs,
                "copy bandwidth must fall with hops: {points:?}"
            );
            assert!(
                pair[1].latency_us > pair[0].latency_us,
                "copy latency must grow with hops: {points:?}"
            );
        }
    }

    #[test]
    fn star_leaves_copy_slower_than_the_hub() {
        let points = star(&smoke());
        assert_eq!(points.len(), usize::from(STAR_CUBES));
        let hub = &points[0];
        assert_eq!(hub.hops, 0);
        for leaf in &points[1..] {
            assert_eq!(leaf.hops, 1);
            assert!(
                leaf.copy_gbs < hub.copy_gbs,
                "leaf copy must be slower than hub: {leaf:?} vs {hub:?}"
            );
        }
    }

    #[test]
    fn wider_windows_pipeline_the_copy() {
        let points = windows(&smoke());
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].copy_gbs > pair[0].copy_gbs,
                "a wider window must raise copy bandwidth: {points:?}"
            );
        }
    }

    #[test]
    fn table_has_one_row_per_point() {
        let p = OffloadPoint {
            cube: 0,
            hops: 0,
            window: 16,
            copied_mb: 0.02,
            copy_gbs: 1.0,
            latency_us: 1.5,
        };
        let t = table(std::slice::from_ref(&p), true);
        assert_eq!(t.len(), 1);
        assert!(t.to_ascii().contains("hub"));
        assert!(!table(&[p], false).to_ascii().contains("hub"));
    }
}
