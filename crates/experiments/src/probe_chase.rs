//! Probe-chase: pointer-chasing latency probes over memory networks.
//!
//! The companion study ("Demystifying the Characteristics of 3D-Stacked
//! Memories", ISPASS 2017) uses pointer chasing as its key latency
//! diagnostic: every access depends on the previous one's *data*, so no
//! overlap hides the round trip. The closed-loop [`PointerChase`] source
//! reproduces that probe on the simulated stack:
//!
//! - **Chain sweep** — a single walker chases through the far cube of a
//!   1–8 cube daisy chain: the per-hop latency penalty of memory-network
//!   depth, measured the way silicon would measure it.
//! - **Walker sweep** — N concurrent walkers on one cube: how much
//!   memory-level parallelism the stack can actually overlap before
//!   chains start queueing on each other (the MLP curve).

use hmc_sim::fabric::{FabricConfig, FabricPortSpec, FabricSim};
use hmc_sim::prelude::*;
use hmc_sim::workloads::PointerChase;

use crate::common::{parallel_map_with_threads, ExpContext, Scale};
use crate::ext_fabric::chain_lengths;

/// Dependent reads per walker in a chase run.
pub fn chain_len(ctx: &ExpContext) -> u64 {
    match ctx.scale {
        Scale::Smoke => 24,
        Scale::Quick => 64,
        Scale::Full => 256,
    }
}

/// One point of the chain sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainChasePoint {
    /// Cubes in the chain.
    pub cubes: u8,
    /// Fabric hops between the host cube and the probed cube.
    pub hops: u32,
    /// Mean dependent-read round trip, ns (single walker: unloaded).
    pub latency_ns: f64,
    /// Reads completed by the probe.
    pub reads: u64,
}

/// Runs the chain sweep: one walker chasing through the far cube.
pub fn chain(ctx: &ExpContext) -> Vec<ChainChasePoint> {
    chain_with_threads(ctx, ctx.threads)
}

/// The chain sweep with an explicit worker-thread count (`0` = all
/// cores) — exercised by the cross-thread determinism regression.
pub fn chain_with_threads(ctx: &ExpContext, threads: usize) -> Vec<ChainChasePoint> {
    let ctx = ctx.clone();
    let hops = chain_len(&ctx);
    parallel_map_with_threads(chain_lengths(&ctx), threads, move |&n| {
        let far = CubeId(n - 1);
        let cfg = FabricConfig::chain(ctx.seed_for("probe-chase", u64::from(n)), n);
        let map = cfg.cube.map;
        let vaults: Vec<VaultId> = (0..map.geometry().vaults).map(VaultId).collect();
        let seed = ctx.seed_for("probe-chase-walk", u64::from(n));
        let spec = FabricPortSpec::from_source(
            move |_| {
                Box::new(PointerChase::new(
                    &map,
                    &vaults,
                    PayloadSize::B64,
                    1,
                    hops,
                    seed,
                ))
            },
            far,
        );
        let mut sim = FabricSim::new(cfg, vec![spec]).with_domains(ctx.domains);
        let report = sim.run_streams();
        ctx.stats.record(&sim.engine_stats());
        ChainChasePoint {
            cubes: n,
            hops: u32::from(n - 1),
            latency_ns: report.mean_latency_ns(),
            reads: report.total_reads(),
        }
    })
}

/// Renders the chain sweep.
pub fn chain_table(points: &[ChainChasePoint]) -> Table {
    let mut t = Table::new(["cubes", "hops", "chase latency (ns)", "reads"]);
    for p in points {
        t.row([
            p.cubes.to_string(),
            p.hops.to_string(),
            format!("{:.0}", p.latency_ns),
            p.reads.to_string(),
        ]);
    }
    t
}

/// One point of the walker (memory-level-parallelism) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerPoint {
    /// Concurrent walkers.
    pub walkers: u16,
    /// Mean dependent-read round trip, ns.
    pub latency_ns: f64,
    /// Aggregate chase throughput, million dependent reads per second.
    pub mreads_per_s: f64,
}

/// Walker counts the context sweeps.
pub fn walker_counts(ctx: &ExpContext) -> Vec<u16> {
    match ctx.scale {
        Scale::Smoke => vec![1, 4, 16],
        Scale::Quick | Scale::Full => vec![1, 2, 4, 8, 16, 32, 64],
    }
}

/// Runs the walker sweep on a single cube: every walker chases all
/// vaults, `chain_len` hops each.
pub fn walkers(ctx: &ExpContext) -> Vec<WalkerPoint> {
    let ctx = ctx.clone();
    let hops = chain_len(&ctx);
    parallel_map_with_threads(walker_counts(&ctx), ctx.threads, move |&w| {
        let cfg = SystemConfig::ac510(ctx.seed_for("probe-chase-mlp", u64::from(w)));
        let map = cfg.device.map;
        let vaults: Vec<VaultId> = (0..map.geometry().vaults).map(VaultId).collect();
        let spec = PortSpec::from_source(move |seed| {
            Box::new(PointerChase::new(
                &map,
                &vaults,
                PayloadSize::B64,
                w,
                hops,
                seed,
            ))
        })
        .with_tags(w.max(1));
        let mut sim = SystemSim::new(cfg, vec![spec]);
        let report = sim.run_streams();
        ctx.stats.record(&sim.engine_stats());
        let reads = report.total_reads();
        let elapsed_ps = report.elapsed.as_ps() as f64;
        WalkerPoint {
            walkers: w,
            latency_ns: report.mean_latency_ns(),
            mreads_per_s: if elapsed_ps > 0.0 {
                reads as f64 * 1e6 / elapsed_ps
            } else {
                0.0
            },
        }
    })
}

/// Renders the walker sweep.
pub fn walker_table(points: &[WalkerPoint]) -> Table {
    let mut t = Table::new(["walkers", "chase latency (ns)", "throughput (M deps/s)"]);
    for p in points {
        t.row([
            p.walkers.to_string(),
            format!("{:.0}", p.latency_ns),
            format!("{:.2}", p.mreads_per_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpContext {
        ExpContext {
            scale: Scale::Smoke,
            seed: 2018,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        }
    }

    #[test]
    fn chase_latency_is_monotone_in_chain_hop_count() {
        let points = chain(&smoke());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.reads, chain_len(&smoke()), "every hop completed");
        }
        for pair in points.windows(2) {
            assert!(
                pair[1].latency_ns > pair[0].latency_ns,
                "chase latency must grow with hop count: {points:?}"
            );
        }
        // Each hop costs at least two extra SerDes flights (~110 ns).
        let d = points[1].latency_ns - points[0].latency_ns;
        assert!(d > 110.0, "first hop adds only {d} ns");
    }

    #[test]
    fn chain_probe_is_byte_identical_across_runs_and_thread_counts() {
        // The closed-loop pipeline must replay byte-identically: two runs
        // on all cores, and one on a single worker, must render to the
        // same JSON. Any ordering nondeterminism in feedback delivery or
        // the sweep scheduling would perturb latencies and break this.
        let a = chain_table(&chain_with_threads(&smoke(), 0)).to_json();
        let b = chain_table(&chain_with_threads(&smoke(), 0)).to_json();
        let serial = chain_table(&chain_with_threads(&smoke(), 1)).to_json();
        assert_eq!(a, b, "probe-chase must replay byte-identically");
        assert_eq!(a, serial, "thread count must not affect results");
        assert!(a.contains("\"rows\""), "rendering produced real rows");
    }

    #[test]
    fn walkers_trade_latency_for_throughput() {
        let points = walkers(&smoke());
        assert_eq!(points.len(), 3);
        let first = &points[0];
        let last = &points[points.len() - 1];
        assert!(
            last.mreads_per_s > first.mreads_per_s,
            "more walkers must raise aggregate chase throughput: {points:?}"
        );
        assert!(
            last.latency_ns >= first.latency_ns * 0.98,
            "per-read latency must not shrink under contention: {points:?}"
        );
    }

    #[test]
    fn tables_have_one_row_per_point() {
        let c = ChainChasePoint {
            cubes: 2,
            hops: 1,
            latency_ns: 900.0,
            reads: 64,
        };
        assert_eq!(chain_table(&[c]).len(), 1);
        let w = WalkerPoint {
            walkers: 4,
            latency_ns: 800.0,
            mreads_per_s: 5.0,
        };
        assert_eq!(walker_table(&[w]).len(), 1);
    }
}
