//! Extension experiments beyond the paper's figures.
//!
//! - **Ext-A (DDR baseline)**: quantifies the paper's Section IV-B remark
//!   that the packet-switched HMC has higher unloaded latency than
//!   traditional DDRx, and contrasts peak random-access throughput.
//! - **Ext-B (read/write mix)**: the Section IV-F discussion — reads only
//!   fill the response direction and writes only the request direction,
//!   so mixed traffic uses the bidirectional links best.

use hmc_sim::ddr::DdrChannel;
use hmc_sim::prelude::*;

use crate::common::{gups_run, stream_run, ExpContext};

/// Ext-A: DDR4 channel vs the simulated HMC stack.
pub fn ddr_comparison(ctx: &ExpContext) -> Table {
    // HMC no-load: a single in-flight request through the whole stack.
    let map = AddressMap::hmc_gen2_default();
    let seed = ctx.seed_for("ext-ddr", 0);
    let trace = random_reads_in_banks(&map, VaultId(0), 16, PayloadSize::B64, 1, seed);
    let hmc_no_load = stream_run(ctx, seed, vec![trace]).mean_latency_ns();
    // HMC peak: 9 GUPS ports, 128 B reads over all vaults.
    let hmc_peak = gups_run(
        ctx,
        ctx.seed_for("ext-ddr", 1),
        AccessPattern::Vaults { count: 16 },
        GupsOp::Read(PayloadSize::B128),
        9,
    );
    // DDR: same spirit — one client for latency, many for bandwidth.
    let ddr = DdrChannel::ddr4_2400();
    let ddr_no_load = ddr.no_load_latency().as_ns_f64();
    let ddr_peak = DdrChannel::ddr4_2400().run_closed_loop(64, 50_000, 64, seed);

    let mut t = Table::new([
        "system",
        "no-load latency (ns)",
        "peak random bandwidth (GB/s)",
    ]);
    t.row([
        "HMC (full measured stack)".to_owned(),
        format!("{hmc_no_load:.0}"),
        format!(
            "{:.1} (counted bidirectional)",
            hmc_peak.total_bandwidth_gbs()
        ),
    ]);
    t.row([
        "HMC (data payload only)".to_owned(),
        format!("{hmc_no_load:.0}"),
        format!("{:.1}", hmc_peak.total_bandwidth_gbs() * 128.0 / 160.0),
    ]);
    t.row([
        "DDR4-2400 channel".to_owned(),
        format!("{ddr_no_load:.0}"),
        format!("{:.1}", ddr_peak.data_gb_per_s),
    ]);
    t
}

/// One row of the read/write mix sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RwMixPoint {
    /// Percentage of writes.
    pub write_percent: u8,
    /// Request-direction traffic, GB/s.
    pub request_gbs: f64,
    /// Response-direction traffic, GB/s.
    pub response_gbs: f64,
    /// Counted bidirectional bandwidth, GB/s.
    pub total_gbs: f64,
}

/// Ext-B: sweep the write percentage at 128 B over all vaults.
pub fn rw_mix(ctx: &ExpContext) -> Vec<RwMixPoint> {
    let mixes: Vec<u8> = vec![0, 25, 50, 75, 100];
    let ctx = ctx.clone();
    ctx.clone().par_map(mixes, move |&write_percent| {
        let seed = ctx.seed_for("ext-rw", u64::from(write_percent));
        let op = GupsOp::Mix {
            size: PayloadSize::B128,
            write_percent,
        };
        let report = gups_run(&ctx, seed, AccessPattern::Vaults { count: 16 }, op, 9);
        let reads = report.total_reads() as f64;
        let writes = report.total_writes() as f64;
        let rd = RequestKind::Read {
            size: PayloadSize::B128,
        };
        let wr = RequestKind::Write {
            size: PayloadSize::B128,
        };
        let elapsed_ps = report.elapsed.as_ps() as f64;
        let request_bytes = reads * rd.request_bytes() as f64 + writes * wr.request_bytes() as f64;
        let response_bytes =
            reads * rd.response_bytes() as f64 + writes * wr.response_bytes() as f64;
        RwMixPoint {
            write_percent,
            request_gbs: request_bytes * 1e3 / elapsed_ps,
            response_gbs: response_bytes * 1e3 / elapsed_ps,
            total_gbs: report.total_bandwidth_gbs(),
        }
    })
}

/// Renders the mix sweep.
pub fn rw_mix_table(points: &[RwMixPoint]) -> Table {
    let mut t = Table::new([
        "writes (%)",
        "request dir (GB/s)",
        "response dir (GB/s)",
        "total (GB/s)",
    ]);
    for p in points {
        t.row([
            p.write_percent.to_string(),
            format!("{:.2}", p.request_gbs),
            format!("{:.2}", p.response_gbs),
            format!("{:.2}", p.total_gbs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    #[test]
    fn ddr_beats_hmc_on_latency_loses_on_counted_bandwidth() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 20,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let table = ddr_comparison(&ctx);
        let csv = table.to_csv();
        // Structure only; the quantitative claims live in the module's
        // integration test via the underlying models.
        assert_eq!(table.len(), 3);
        assert!(csv.contains("DDR4-2400"));
    }

    #[test]
    fn mixed_traffic_balances_directions() {
        let ctx = ExpContext {
            scale: Scale::Smoke,
            seed: 21,
            threads: 0,
            domains: 1,
            stats: Default::default(),
        };
        let points = rw_mix(&ctx);
        let at = |wp: u8| {
            points
                .iter()
                .find(|p| p.write_percent == wp)
                .expect("mix point")
        };
        // Pure reads: response-heavy. Pure writes: request-heavy.
        assert!(at(0).response_gbs > 4.0 * at(0).request_gbs);
        assert!(at(100).request_gbs > 4.0 * at(100).response_gbs);
        // Section IV-F argues a balanced mix uses the bidirectional links
        // best. In our model the host controller's per-packet pacing, not
        // link direction, binds first, so the balanced mix lands near the
        // extremes rather than far above them (EXPERIMENTS.md discusses
        // the gap). Sanity-check it stays in that neighbourhood and that
        // each direction stays below its per-direction effective capacity.
        let balanced = at(50).total_gbs;
        let best_extreme = at(0).total_gbs.max(at(100).total_gbs);
        assert!(
            balanced > best_extreme * 0.8,
            "mix collapsed: {balanced} vs {best_extreme}"
        );
        for p in &points {
            assert!(
                p.request_gbs < 21.5,
                "request dir above capacity: {}",
                p.request_gbs
            );
            assert!(
                p.response_gbs < 21.5,
                "response dir above capacity: {}",
                p.response_gbs
            );
        }
    }
}
