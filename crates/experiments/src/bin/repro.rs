//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--json] [--seed N] [--threads N] [--domains N] [--out DIR] <experiment...|all|--list>
//! ```
//!
//! By default each experiment's tables print as ASCII. With `--json` the
//! run emits one JSON document on stdout — an array of experiment
//! outcomes, each table as `{"title", "headers", "rows"}` — so results
//! can be consumed by scripts without scraping. `--out DIR` additionally
//! writes one CSV per table (plus one JSON file per experiment when
//! `--json` is given).

use std::path::PathBuf;
use std::process::ExitCode;

use hmc_experiments::{canonical_name, run_by_name, ExpContext, Outcome, Scale, EXPERIMENTS};
use hmc_sim::stats::json_escape;

struct Args {
    scale: Scale,
    seed: u64,
    /// Worker threads for parallel sweeps (`0` = all cores). Results are
    /// thread-count-invariant; this only trades wall-clock for cores.
    threads: usize,
    /// Engine domains per multi-cube simulation (`1` = serial). Results
    /// are domain-count-invariant; the CI determinism smoke diffs them.
    domains: usize,
    out: Option<PathBuf>,
    names: Vec<String>,
    list: bool,
    json: bool,
    /// Write a Chrome `trace_event` JSON of one designated traced run.
    trace_out: Option<PathBuf>,
    /// Trace every Nth issued request of the designated run.
    trace_sample: u64,
    /// Validate a JSON file (e.g. an exported trace) and exit.
    validate_json: Option<PathBuf>,
    /// Wall-clock watchdog: if the run outlives this many seconds, trip
    /// the scheduler watchdog and exit 3 with a progress diagnostic.
    deadline: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Quick,
        seed: 2018,
        threads: 0,
        domains: 1,
        out: None,
        names: Vec::new(),
        list: false,
        json: false,
        trace_out: None,
        trace_sample: 64,
        validate_json: None,
        deadline: None,
    };
    let mut scale_flag: Option<&'static str> = None;
    let mut set_scale = |args: &mut Args, flag: &'static str, scale| -> Result<(), String> {
        if let Some(prev) = scale_flag.replace(flag) {
            if prev != flag {
                return Err(format!("conflicting flags {prev} and {flag}"));
            }
        }
        args.scale = scale;
        Ok(())
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => set_scale(&mut args, "--full", Scale::Full)?,
            "--quick" => set_scale(&mut args, "--quick", Scale::Quick)?,
            "--list" => args.list = true,
            "--json" => args.json = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--domains" => {
                let v = it.next().ok_or("--domains needs a value")?;
                args.domains = v.parse().map_err(|e| format!("bad domain count: {e}"))?;
                if args.domains == 0 {
                    return Err("--domains must be >= 1".to_owned());
                }
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(PathBuf::from(v));
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a path")?;
                args.trace_out = Some(PathBuf::from(v));
            }
            "--trace-sample" => {
                let v = it.next().ok_or("--trace-sample needs a value")?;
                args.trace_sample = v.parse().map_err(|e| format!("bad sample rate: {e}"))?;
                if args.trace_sample == 0 {
                    return Err("--trace-sample must be >= 1".to_owned());
                }
            }
            "--deadline" => {
                let v = it.next().ok_or("--deadline needs a value in seconds")?;
                args.deadline = Some(v.parse().map_err(|e| format!("bad deadline: {e}"))?);
                if args.deadline == Some(0) {
                    return Err("--deadline must be >= 1 second".to_owned());
                }
            }
            "--validate-json" => {
                let v = it.next().ok_or("--validate-json needs a path")?;
                args.validate_json = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            name if !name.starts_with('-') => args.names.push(name.to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: repro [--full] [--json] [--seed N] [--threads N] [--domains N] [--out DIR] \
         [--deadline SECS] [--trace-out PATH [--trace-sample N]] <experiment...|all|--list>"
    );
    eprintln!("       repro --validate-json PATH");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    eprintln!("aliases: fig10 fig11 fig12 (one combined sweep)");
    eprintln!("--threads N: worker threads for sweeps (0 = all cores; results are identical)");
    eprintln!(
        "--domains N: conservative-parallel engine domains per multi-cube simulation \
         (default 1 = serial; results are identical)"
    );
    eprintln!(
        "--trace-out PATH: export one designated traced run as Chrome trace_event JSON \
         (open in chrome://tracing or Perfetto); --trace-sample N traces every Nth request \
         (default 64)"
    );
    eprintln!("--validate-json PATH: check that PATH holds one well-formed JSON value and exit");
    eprintln!(
        "--deadline SECS: wall-clock watchdog; a run that outlives it is tripped \
         (domain barriers poisoned) and exits 3 with a progress diagnostic"
    );
}

fn sanitize(title: &str) -> String {
    title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

/// One experiment outcome as a JSON object.
fn outcome_json(outcome: &Outcome) -> String {
    let tables: Vec<String> = outcome
        .tables
        .iter()
        .map(|(title, table)| {
            // Splice the table's own {"headers":...,"rows":...} fields
            // into an object that also carries the title.
            let body = table.to_json();
            format!(
                "{{\"title\":\"{}\",{}",
                json_escape(title),
                body.strip_prefix('{').expect("table JSON is an object")
            )
        })
        .collect();
    format!(
        "{{\"name\":\"{}\",\"tables\":[{}]}}",
        json_escape(outcome.name),
        tables.join(",")
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    if args.list {
        for name in EXPERIMENTS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.validate_json {
        let doc = match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match hmc_sim::stats::validate_json(&doc) {
            Ok(()) => {
                println!("{}: valid JSON ({} bytes)", path.display(), doc.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    if args.names.is_empty() && args.trace_out.is_none() {
        usage();
        return ExitCode::from(2);
    }
    let mut names: Vec<String> = Vec::new();
    for n in &args.names {
        if n == "all" {
            names.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
        } else if canonical_name(n).is_some() {
            names.push(n.clone());
        } else {
            eprintln!("error: unknown experiment {n:?}");
            usage();
            return ExitCode::from(2);
        }
    }
    names.dedup();
    // Fail fast on an unwritable trace path: better a one-line error now
    // than after minutes of sweeps.
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("error: cannot create trace file {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    // The watchdog guard lives for the rest of main; the drop on a normal
    // exit disarms it.
    let _watchdog = args.deadline.map(|secs| {
        hmc_sim::fabric::watchdog::Deadline::arm(std::time::Duration::from_secs(secs), move || {
            let (rounds, windows) = hmc_sim::fabric::watchdog::progress();
            eprintln!(
                "error: --deadline {secs}s exceeded; watchdog tripped after \
                 {rounds} scheduler rounds / {windows} lookahead windows"
            );
            std::process::exit(3);
        })
    });
    let ctx = ExpContext {
        scale: args.scale,
        seed: args.seed,
        threads: args.threads,
        domains: args.domains,
        stats: Default::default(),
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut json_outcomes: Vec<String> = Vec::new();
    for name in names {
        let start = std::time::Instant::now();
        let outcome = run_by_name(&name, &ctx).expect("validated above");
        if args.json {
            let doc = outcome_json(&outcome);
            if let Some(dir) = &args.out {
                let path = dir.join(format!("{}.json", outcome.name));
                if let Err(e) = std::fs::write(&path, &doc) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            json_outcomes.push(doc);
        } else {
            for (title, table) in &outcome.tables {
                println!("## {title}\n");
                println!("{table}");
            }
        }
        if let Some(dir) = &args.out {
            for (title, table) in &outcome.tables {
                let path = dir.join(format!("{}_{}.csv", outcome.name, sanitize(title)));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!(
            "[{}] done in {:.1}s",
            outcome.name,
            start.elapsed().as_secs_f64()
        );
    }
    if args.json {
        println!("[{}]", json_outcomes.join(","));
    }
    if let Some(path) = &args.trace_out {
        // One extra, designated traced run — tracing never perturbs the
        // sweeps above.
        let start = std::time::Instant::now();
        let (doc, slices) = hmc_experiments::ext_timeline::traced_run(&ctx, args.trace_sample);
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[trace] {} slices (1/{} sampling) -> {} in {:.1}s",
            slices,
            args.trace_sample,
            path.display(),
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
