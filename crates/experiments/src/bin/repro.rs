//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--seed N] [--out DIR] <experiment...|all|--list>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use hmc_experiments::{canonical_name, run_by_name, ExpContext, Scale, EXPERIMENTS};

struct Args {
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    names: Vec<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Quick,
        seed: 2018,
        out: None,
        names: Vec::new(),
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => args.scale = Scale::Full,
            "--quick" => args.scale = Scale::Quick,
            "--list" => args.list = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            name if !name.starts_with('-') => args.names.push(name.to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!("usage: repro [--full] [--seed N] [--out DIR] <experiment...|all|--list>");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    eprintln!("aliases: fig10 fig11 fig12 (one combined sweep)");
}

fn sanitize(title: &str) -> String {
    title
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    if args.list {
        for name in EXPERIMENTS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if args.names.is_empty() {
        usage();
        return ExitCode::from(2);
    }
    let mut names: Vec<String> = Vec::new();
    for n in &args.names {
        if n == "all" {
            names.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
        } else if canonical_name(n).is_some() {
            names.push(n.clone());
        } else {
            eprintln!("error: unknown experiment {n:?}");
            usage();
            return ExitCode::from(2);
        }
    }
    names.dedup();
    let ctx = ExpContext { scale: args.scale, seed: args.seed };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for name in names {
        let start = std::time::Instant::now();
        let outcome = run_by_name(&name, &ctx).expect("validated above");
        for (title, table) in &outcome.tables {
            println!("## {title}\n");
            println!("{table}");
            if let Some(dir) = &args.out {
                let path = dir.join(format!("{}_{}.csv", outcome.name, sanitize(title)));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!("[{}] done in {:.1}s", outcome.name, start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
