//! Regression: `--threads 2 --domains 2` on a 2-core budget composes
//! instead of oversubscribing.
//!
//! The sweep layer *demands* its two workers, draining the budget; every
//! domain lease underneath must then be granted zero extra workers and
//! multiplex both domains onto its sweep thread. Before the shared pool,
//! the same invocation spawned 2 × 2 threads onto the 2 cores.
//!
//! The budget is process-global and pinned before first use, so this
//! test lives in its own integration-test binary.

use hmc_experiments::common::parallel_map_with_threads;
use hmc_sim::des::pool;
use hmc_sim::prelude::*;

fn run_one(seed: u64, domains: usize) -> (String, u64) {
    let cfg = FabricConfig::chain(seed, 2);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
    let specs: Vec<FabricPortSpec> = (0..2)
        .map(|c| FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B64), CubeId(c)))
        .collect();
    let mut sim = FabricSim::new(cfg, specs).with_domains(domains);
    let report = sim.run_gups(Delay::from_us(2), Delay::from_us(6));
    (format!("{report:?}"), sim.sched_stats().workers)
}

#[test]
fn sweep_threads_and_domain_workers_share_one_two_core_budget() {
    assert!(
        pool::pin_budget_for_tests(2),
        "budget pinned before any lease"
    );

    // A 2-wide sweep of 4 jobs, each a 2-domain parallel run.
    let jobs: Vec<u64> = vec![3, 5, 7, 11];
    let swept = parallel_map_with_threads(jobs.clone(), 2, |&seed| run_one(seed, 2));

    // The budget is the ceiling: no job may ever see more domain workers
    // than the machine has cores, sweep threads included. (A job *may*
    // see 2 if its sibling sweep worker already drained the queue and
    // parked its core — that is the work-stealing handoff, not a leak.)
    for (i, (_, workers)) in swept.iter().enumerate() {
        assert!(
            (1..=2).contains(workers),
            "job {i}: {workers} domain workers on a 2-core budget"
        );
    }
    // The first two jobs are claimed while both sweep workers still hold
    // their cores, so their domain leases must have been granted nothing
    // and multiplexed both domains onto the one sweep thread.
    assert_eq!(
        swept[0].1, 1,
        "job 0 leased extra workers while the sweep held every core"
    );
    assert_eq!(
        swept[1].1, 1,
        "job 1 leased extra workers while the sweep held every core"
    );

    // Budget intact after the sweep: a fresh parallel run can lease an
    // extra worker again (2 cores, 2 domains → caller + 1 leased).
    let (_, workers) = run_one(13, 2);
    assert_eq!(workers, 2, "cores returned to the budget after the sweep");

    // And the multiplexed runs are byte-identical to their serial twins
    // — the budget shapes scheduling, never results.
    for (&seed, (report, _)) in jobs.iter().zip(&swept) {
        let (serial, serial_workers) = run_one(seed, 1);
        assert_eq!(serial_workers, 0, "serial runs report no sched stats");
        assert_eq!(&serial, report, "seed {seed}: results depend on budget");
    }

    // The sweep workers parked their cores on queue drain.
    assert!(pool::stats().parks >= 2, "sweep workers parked");
}
