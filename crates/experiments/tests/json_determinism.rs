//! In-process determinism regressions for the experiment harness.
//!
//! The scratch-buffer refactor reuses buffers across runs *within one
//! process*: the first run grows every `InlineVec` to the workload's peak
//! burst and later runs reuse that capacity. These tests pin down that the
//! reuse is observably pure — the second rendering of an experiment is
//! byte-identical to the first — and that the sweep worker-thread count
//! (the `repro --threads` knob) never leaks into results.

use hmc_experiments::{run_by_name, ExpContext, Scale};

/// Renders one experiment to its JSON document (the `repro --json` shape,
/// minus the outer array).
fn render_json(name: &str, ctx: &ExpContext) -> String {
    let outcome = run_by_name(name, ctx).expect("known experiment");
    let tables: Vec<String> = outcome
        .tables
        .iter()
        .map(|(title, table)| format!("{title}:{}", table.to_json()))
        .collect();
    tables.join("\n")
}

#[test]
fn fig6_json_is_byte_identical_across_in_process_reruns() {
    // First run: scratch buffers cold (every spill allocates). Second
    // run: buffers warm. Any behavioral difference between those two
    // states — a stale element surviving a `clear`, a drain reordering —
    // would perturb latencies and break byte equality.
    let ctx = ExpContext {
        scale: Scale::Smoke,
        seed: 2018,
        threads: 0,
        domains: 1,
        stats: Default::default(),
    };
    let cold = render_json("fig6", &ctx);
    let warm = render_json("fig6", &ctx);
    assert!(cold.contains("\"rows\""), "fig6 rendered real rows");
    assert_eq!(
        cold, warm,
        "scratch-buffer reuse must be observably pure across in-process runs"
    );
}

#[test]
fn thread_count_does_not_affect_results() {
    // The documented `--threads` contract: sweeps split across any number
    // of workers render byte-identically to the serial sweep.
    let ctx = |threads: usize| ExpContext {
        scale: Scale::Smoke,
        seed: 2018,
        threads,
        domains: 1,
        stats: Default::default(),
    };
    let serial = render_json("fig6", &ctx(1));
    let parallel = render_json("fig6", &ctx(0));
    let two = render_json("fig6", &ctx(2));
    assert_eq!(serial, parallel, "all-cores sweep must equal serial sweep");
    assert_eq!(serial, two, "two-worker sweep must equal serial sweep");
}

#[test]
fn timeline_percentile_rows_are_thread_invariant() {
    // The telemetry path end to end: epoch series and quantile sketches
    // must render byte-identically whatever the sweep worker count —
    // the sketch merge is elementwise, so shard order cannot show.
    let ctx = |threads: usize| ExpContext {
        scale: Scale::Smoke,
        seed: 2018,
        threads,
        domains: 1,
        stats: Default::default(),
    };
    let serial = render_json("ext-timeline", &ctx(1));
    let two = render_json("ext-timeline", &ctx(2));
    let all = render_json("ext-timeline", &ctx(0));
    assert!(serial.contains("p999"), "percentile table rendered");
    assert_eq!(serial, two, "two-worker run must equal serial run");
    assert_eq!(serial, all, "all-cores run must equal serial run");
}
