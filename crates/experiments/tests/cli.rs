//! CLI robustness: bad invocations must exit nonzero with a one-line
//! message — never panic, never succeed silently.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn conflicting_scale_flags_exit_nonzero_with_one_line_error() {
    let out = repro(&["--full", "--quick", "table1"]);
    assert!(!out.status.success(), "conflicting flags must fail");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("conflicting flags --full and --quick"),
        "stderr: {err}"
    );
    assert!(!err.contains("panicked"), "must not panic: {err}");
    // Order-independent.
    let out = repro(&["--quick", "--full", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    // A repeated flag is not a conflict.
    let out = repro(&["--quick", "--quick", "table1"]);
    assert!(out.status.success(), "repeating one scale flag is fine");
}

#[test]
fn bad_flag_values_exit_nonzero_without_panicking() {
    for args in [
        &["--seed", "notanumber", "table1"][..],
        &["--threads", "-1", "table1"][..],
        &["--seed"][..],
        &["--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "args {args:?}: {err}");
        assert!(!err.contains("panicked"), "args {args:?}: {err}");
    }
}

#[test]
fn unknown_experiment_exits_nonzero_and_list_names_the_new_ones() {
    let out = repro(&["no-such-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");

    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["ext-intercube", "ext-mixed", "probe-chase"] {
        assert!(stdout.lines().any(|l| l == name), "missing {name}");
    }
}

#[test]
fn trace_and_validate_flags_are_checked() {
    // --trace-sample must be a positive count.
    for args in [
        &["--trace-sample", "0", "fig6"][..],
        &["--trace-sample", "x", "fig6"][..],
        &["--trace-out"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }

    // --validate-json accepts exactly well-formed documents.
    let dir = std::env::temp_dir();
    let good = dir.join(format!("repro_cli_good_{}.json", std::process::id()));
    let bad = dir.join(format!("repro_cli_bad_{}.json", std::process::id()));
    std::fs::write(&good, "{\"traceEvents\":[{\"ph\":\"X\"}]}").unwrap();
    std::fs::write(&bad, "{\"traceEvents\":[").unwrap();
    let out = repro(&["--validate-json", good.to_str().unwrap()]);
    assert!(out.status.success(), "well-formed JSON must validate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid JSON"), "{stdout}");
    let out = repro(&["--validate-json", bad.to_str().unwrap()]);
    assert!(!out.status.success(), "truncated JSON must fail");
    let out = repro(&["--validate-json", "/no/such/file.json"]);
    assert!(!out.status.success(), "missing file must fail");
    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();

    let out = repro(&["--list"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().any(|l| l == "ext-timeline"));
    assert!(stdout.lines().any(|l| l == "ext-faults"));
}

#[test]
fn unwritable_trace_path_fails_fast_with_one_line_error() {
    // The path check runs before any experiment: a bad path must fail in
    // milliseconds, not after the sweep.
    let start = std::time::Instant::now();
    let out = repro(&["--trace-out", "/no/such/dir/trace.json", "fig6"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error: cannot create trace file"), "{err}");
    assert_eq!(err.lines().count(), 1, "one-line error, got: {err}");
    assert!(!err.contains("panicked"), "{err}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "path validation must not wait for the experiment"
    );
}

#[test]
fn deadline_flag_is_validated() {
    for args in [
        &["--deadline", "0", "table1"][..],
        &["--deadline", "soon", "table1"][..],
        &["--deadline"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "args {args:?}: {err}");
        assert!(!err.contains("panicked"), "args {args:?}: {err}");
    }
}

#[test]
fn exceeded_deadline_trips_the_watchdog_and_exits_3() {
    // `all` at quick scale runs for well over a second; a 1 s deadline
    // must cut it short with the progress diagnostic. --domains 2 puts
    // real phase barriers in flight for the watchdog to poison.
    let out = repro(&["--deadline", "1", "--domains", "2", "--json", "all"]);
    assert_eq!(out.status.code(), Some(3), "watchdog exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--deadline 1s exceeded; watchdog tripped after"),
        "{err}"
    );
    assert!(err.contains("scheduler rounds"), "{err}");
    assert!(err.contains("lookahead windows"), "{err}");
}
