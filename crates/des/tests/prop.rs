//! Property tests for the event kernel: ordering, FIFO tie-breaking and
//! determinism under arbitrary schedules — including schedules that
//! straddle the two-level scheduler's wheel/far boundary and timers that
//! race messages.

use hmc_des::{Component, Ctx, Delay, Engine, Time, WakeToken};
use proptest::prelude::*;

/// Records every delivery as `(time_ps, payload)`.
struct Recorder {
    log: Vec<(u64, u32)>,
}

impl Component<u32> for Recorder {
    fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
        self.log.push((ctx.now().as_ps(), msg));
    }
}

/// A component that forwards each message to a peer after a fixed delay,
/// decrementing the payload until it reaches zero.
struct Forwarder {
    peer: Option<hmc_des::ComponentId>,
    delay_ps: u64,
    received: u64,
}

impl Component<u32> for Forwarder {
    fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
        self.received += 1;
        if msg > 0 {
            let to = self.peer.expect("peer wired");
            ctx.send(Delay::from_ps(self.delay_ps), to, msg - 1);
        }
    }
}

fn run_schedule(events: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut e: Engine<u32> = Engine::new();
    let id = e.add_component(Box::new(Recorder { log: Vec::new() }));
    for &(t, payload) in events {
        e.schedule(Time::from_ps(t), id, payload);
    }
    e.run_to_quiescence();
    e.component::<Recorder>(id)
        .expect("recorder present")
        .log
        .clone()
}

proptest! {
    /// Deliveries are sorted by timestamp, and equal timestamps preserve
    /// insertion order.
    #[test]
    fn delivery_order_is_time_then_fifo(events in prop::collection::vec((0u64..10_000, 0u32..1000), 0..300)) {
        let log = run_schedule(&events);
        prop_assert_eq!(log.len(), events.len());
        // Expected order: stable sort of the input by timestamp.
        let mut expected = events.clone();
        let mut indexed: Vec<(usize, (u64, u32))> = expected.drain(..).enumerate().collect();
        indexed.sort_by_key(|&(i, (t, _))| (t, i));
        let expected: Vec<(u64, u32)> = indexed.into_iter().map(|(_, ev)| ev).collect();
        prop_assert_eq!(log, expected);
    }

    /// Two engines fed the same schedule produce identical logs.
    #[test]
    fn identical_schedules_are_deterministic(events in prop::collection::vec((0u64..10_000, 0u32..1000), 0..200)) {
        prop_assert_eq!(run_schedule(&events), run_schedule(&events));
    }

    /// A ping chain of `n` hops with per-hop delay `d` quiesces at exactly
    /// `n * d` and delivers `n + 1` messages.
    #[test]
    fn ping_chain_advances_clock_linearly(hops in 0u32..200, delay_ps in 1u64..10_000) {
        let mut e: Engine<u32> = Engine::new();
        let a = e.add_component(Box::new(Forwarder { peer: None, delay_ps, received: 0 }));
        let b = e.add_component(Box::new(Forwarder { peer: None, delay_ps, received: 0 }));
        e.component_mut::<Forwarder>(a).unwrap().peer = Some(b);
        e.component_mut::<Forwarder>(b).unwrap().peer = Some(a);
        e.schedule(Time::ZERO, a, hops);
        let dispatched = e.run_to_quiescence();
        prop_assert_eq!(dispatched, u64::from(hops) + 1);
        prop_assert_eq!(e.now().as_ps(), u64::from(hops) * delay_ps);
        let ra = e.component::<Forwarder>(a).unwrap().received;
        let rb = e.component::<Forwarder>(b).unwrap().received;
        prop_assert_eq!(ra + rb, u64::from(hops) + 1);
    }

    /// The two-level scheduler orders events exactly as one global heap
    /// would, even when timestamps span the wheel horizon (~1 µs) so that
    /// events flow through the far heap, migrate into the wheel, and wrap
    /// the ring multiple times.
    #[test]
    fn wheel_and_far_heap_preserve_global_order(
        near in prop::collection::vec((0u64..2_000_000, 0u32..1000), 0..150),
        far in prop::collection::vec((2_000_000u64..50_000_000, 0u32..1000), 0..150),
    ) {
        let mut events = near;
        events.extend(far);
        let log = run_schedule(&events);
        prop_assert_eq!(log.len(), events.len());
        let mut indexed: Vec<(usize, (u64, u32))> = events.into_iter().enumerate().collect();
        indexed.sort_by_key(|&(i, (t, _))| (t, i));
        let expected: Vec<(u64, u32)> = indexed.into_iter().map(|(_, ev)| ev).collect();
        prop_assert_eq!(log, expected);
    }

    /// A component that re-arms a timer after every wake sees exactly the
    /// deadlines it asked for, in order, regardless of message traffic
    /// around them; cancelled deadlines never fire.
    #[test]
    fn timers_fire_in_order_and_cancel_cleanly(
        periods in prop::collection::vec(1u64..20_000, 1..40),
        cancel_each in any::<bool>(),
    ) {
        struct Chain {
            periods: Vec<u64>,
            next: usize,
            token: Option<WakeToken>,
            fired_at: Vec<u64>,
            cancel_each: bool,
        }
        impl Chain {
            fn arm(&mut self, ctx: &mut Ctx<'_, u32>) {
                if let Some(&p) = self.periods.get(self.next) {
                    self.next += 1;
                    if self.cancel_each {
                        // Arm a decoy, cancel it, then arm the real one:
                        // the decoy must be invisible.
                        let decoy = ctx.wake_after(Delay::from_ps(p / 2 + 1));
                        assert!(ctx.cancel_wake(decoy));
                    }
                    self.token = Some(ctx.wake_after(Delay::from_ps(p)));
                }
            }
        }
        impl Component<u32> for Chain {
            fn on_message(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
                if self.token.is_none() {
                    self.arm(ctx);
                }
            }
            fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, u32>) {
                assert_eq!(Some(token), self.token);
                self.fired_at.push(ctx.now().as_ps());
                self.arm(ctx);
            }
        }
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Chain {
            periods: periods.clone(),
            next: 0,
            token: None,
            fired_at: Vec::new(),
            cancel_each,
        }));
        e.schedule(Time::ZERO, id, 0);
        // Message noise that must not perturb the timer chain.
        for i in 0..10u64 {
            e.schedule(Time::from_ps(i * 3_333), id, 0);
        }
        e.run_to_quiescence();
        let mut expected = Vec::new();
        let mut t = 0u64;
        for p in &periods {
            t += p;
            expected.push(t);
        }
        let fired = e.component::<Chain>(id).unwrap().fired_at.clone();
        prop_assert_eq!(fired, expected);
        let stats = e.stats();
        prop_assert_eq!(stats.wake_fires, periods.len() as u64);
        prop_assert_eq!(stats.wake_cancels, if cancel_each { periods.len() as u64 } else { 0 });
        prop_assert_eq!(stats.pending, 0);
    }

    /// `run_until` never advances past the horizon and never drops events:
    /// splitting a run at an arbitrary horizon yields the same final log.
    #[test]
    fn run_until_is_prefix_stable(events in prop::collection::vec((0u64..10_000, 0u32..1000), 1..200), split in 0u64..10_000) {
        let whole = run_schedule(&events);

        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Recorder { log: Vec::new() }));
        for &(t, payload) in &events {
            e.schedule(Time::from_ps(t), id, payload);
        }
        e.run_until(Time::from_ps(split));
        prop_assert!(e.now().as_ps() <= split.max(e.now().as_ps()));
        e.run_to_quiescence();
        let log = e.component::<Recorder>(id).unwrap().log.clone();
        prop_assert_eq!(log, whole);
    }
}

/// Mirror-model property: an [`hmc_des::InlineVec`] must behave exactly
/// like a `Vec` across interleaved pushes (spilling past the inline
/// capacity), pops, clears, indexed reads, iteration and drains.
mod inline_vec_matches_vec {
    use hmc_des::InlineVec;
    use proptest::prelude::*;

    /// `0..4` = push value, `4` = pop, `5` = clear, `6` = drain.
    fn apply(ops: &[(u8, u32)]) {
        let mut iv: InlineVec<u32, 4> = InlineVec::new();
        let mut model: Vec<u32> = Vec::new();
        for &(op, val) in ops {
            match op {
                0..=3 => {
                    iv.push(val);
                    model.push(val);
                }
                4 => assert_eq!(iv.pop(), model.pop()),
                5 => {
                    iv.clear();
                    model.clear();
                }
                _ => {
                    let drained: Vec<u32> = iv.drain().collect();
                    let expected: Vec<u32> = std::mem::take(&mut model);
                    assert_eq!(drained, expected, "drain yields front-to-back");
                }
            }
            // Full-state equivalence after every operation.
            assert_eq!(iv.len(), model.len());
            assert_eq!(iv.is_empty(), model.is_empty());
            assert_eq!(iv.spilled(), model.len() > 4);
            let via_iter: Vec<u32> = iv.iter().copied().collect();
            assert_eq!(via_iter, model, "iteration preserves order");
            for (i, expected) in model.iter().enumerate() {
                assert_eq!(iv.get(i), Some(expected));
                assert_eq!(&iv[i], expected);
            }
            assert_eq!(iv.get(model.len()), None);
        }
        // Post-script: a partially consumed drain drops the rest and
        // leaves the vector reusable.
        iv.clear();
        for v in 0..10u32 {
            iv.push(v);
        }
        {
            let mut d = iv.drain();
            assert_eq!(d.next(), Some(0));
            assert_eq!(d.next(), Some(1));
        }
        assert!(iv.is_empty(), "dropping a drain empties the vector");
        iv.push(7);
        assert_eq!(iv.iter().copied().collect::<Vec<_>>(), vec![7]);
    }

    proptest! {
        #[test]
        fn mirrors_vec(ops in prop::collection::vec((0u8..7, 0u32..1000), 0..200)) {
            apply(&ops);
        }
    }
}

/// The wake-slot table must hand out distinct live tokens, survive heavy
/// arm/cancel churn, and never fire a cancelled timer — the invariants the
/// old `HashSet` bookkeeping provided, now under slot reuse.
mod wake_slot_reuse {
    use hmc_des::{Component, Ctx, Engine, Time, WakeToken};
    use proptest::prelude::*;

    /// Arms one wake per scripted deadline, cancelling every other one;
    /// records fires.
    struct Churner {
        deadlines: Vec<(u64, bool)>,
        armed: Vec<(WakeToken, bool)>,
        fires: Vec<u64>,
    }

    impl Component<u8> for Churner {
        fn on_message(&mut self, _msg: u8, ctx: &mut Ctx<'_, u8>) {
            for &(at, keep) in &self.deadlines {
                let token = ctx.wake_at(ctx.now() + hmc_des::Delay::from_ps(at));
                self.armed.push((token, keep));
            }
            let to_cancel: Vec<WakeToken> = self
                .armed
                .iter()
                .filter(|&&(_, keep)| !keep)
                .map(|&(t, _)| t)
                .collect();
            for t in to_cancel {
                assert!(ctx.cancel_wake(t), "live token cancels exactly once");
                assert!(!ctx.cancel_wake(t), "second cancel reports dead");
            }
        }
        fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, u8>) {
            assert!(
                self.armed.iter().any(|&(t, keep)| t == token && keep),
                "only kept tokens fire"
            );
            self.fires.push(ctx.now().as_ps());
        }
    }

    proptest! {
        #[test]
        fn cancelled_timers_never_fire(deadlines in prop::collection::vec((1u64..50_000, any::<bool>()), 0..120)) {
            let kept = deadlines.iter().filter(|&&(_, keep)| keep).count() as u64;
            let cancelled = deadlines.len() as u64 - kept;
            let mut e: Engine<u8> = Engine::new();
            let id = e.add_component(Box::new(Churner {
                deadlines: deadlines.clone(),
                armed: Vec::new(),
                fires: Vec::new(),
            }));
            e.schedule(Time::ZERO, id, 0);
            e.run_to_quiescence();
            let stats = e.stats();
            prop_assert_eq!(stats.wake_fires, kept);
            prop_assert_eq!(stats.wake_cancels, cancelled);
            prop_assert_eq!(stats.pending, 0);
            let fires = &e.component::<Churner>(id).unwrap().fires;
            prop_assert_eq!(fires.len() as u64, kept);
            prop_assert!(fires.windows(2).all(|w| w[0] <= w[1]), "fires in time order");
        }
    }
}
