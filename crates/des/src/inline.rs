//! [`InlineVec`]: a small-vector used as the reusable scratch buffer of
//! every per-event hot path, plus the thread-local allocation counters
//! that let the test suite *assert* the zero-allocation property.
//!
//! The simulator's service loops (`SwitchCore::service_into`, `LinkTx`
//! drains, the host's event relay, the device's fixpoint) produce short
//! bursts of outputs — usually zero to a handful, rarely more. Returning a
//! fresh `Vec` per call puts a heap round trip on every dispatched event.
//! An `InlineVec<T, N>` stores the first `N` elements inline (no heap);
//! only bursts beyond `N` **spill** into an internal `Vec`, and a spilled
//! buffer keeps its heap capacity across [`InlineVec::clear`] /
//! [`InlineVec::drain`], so a long-lived scratch buffer allocates at most
//! a bounded number of times over a whole run — independent of how many
//! events it carries.
//!
//! Every allocation made by any `InlineVec` (first spill or heap regrowth)
//! increments a thread-local counter, surfaced as
//! [`EngineStats::scratch_spills`](crate::EngineStats::scratch_spills):
//! a counter that grows with run *length* rather than with burst *shape*
//! is a hot-path allocation regression, and tier-1 tests fail on it.
//!
//! The implementation is `unsafe`-free (the crate forbids `unsafe`):
//! inline slots are `Option<T>`, which costs a discriminant per slot but
//! keeps the type available to every payload the simulator moves.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Allocations performed by `InlineVec`s on this thread (first spill
    /// to heap or regrowth of a spilled buffer).
    static SPILL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Total `InlineVec` heap allocations on this thread so far; engines
/// snapshot it at creation and report the delta (see
/// [`EngineStats::scratch_spills`](crate::EngineStats::scratch_spills)).
pub fn spill_allocs() -> u64 {
    SPILL_ALLOCS.with(|c| c.get())
}

fn count_spill_alloc() {
    SPILL_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// A vector storing its first `N` elements inline and spilling the rest
/// to the heap, tuned for reuse as a scratch buffer (see the
/// [module docs](self)).
///
/// # Examples
///
/// ```
/// use hmc_des::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// for i in 0..6 {
///     v.push(i); // 4 inline, 2 spilled
/// }
/// assert_eq!(v.len(), 6);
/// assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
/// let drained: Vec<u32> = v.drain().collect();
/// assert_eq!(drained, vec![0, 1, 2, 3, 4, 5]);
/// assert!(v.is_empty());
/// ```
pub struct InlineVec<T, const N: usize> {
    /// The first `min(len, N)` elements. `Option` instead of
    /// `MaybeUninit` keeps the crate free of `unsafe`.
    inline: [Option<T>; N],
    /// Elements `N..len`, in order. Keeps its capacity across
    /// [`InlineVec::clear`], so one spilled burst does not mean one
    /// allocation per subsequent burst.
    spill: Vec<T>,
    len: usize,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty vector. Allocation-free.
    pub fn new() -> InlineVec<T, N> {
        InlineVec {
            inline: std::array::from_fn(|_| None),
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if elements live on the heap (the buffer spilled).
    #[inline]
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            if self.spill.len() == self.spill.capacity() {
                count_spill_alloc();
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.len >= N {
            self.spill.pop()
        } else {
            self.inline[self.len].take()
        }
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            self.inline[index].as_ref()
        } else {
            self.spill.get(index - N)
        }
    }

    /// Removes every element. Spilled heap capacity is retained — the
    /// property that makes a reused scratch buffer allocation-free in
    /// steady state.
    pub fn clear(&mut self) {
        for slot in self.inline.iter_mut().take(self.len.min(N)) {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }

    /// Iterates the elements in order. Allocation-free.
    pub fn iter(&self) -> Iter<'_, T, N> {
        Iter {
            vec: self,
            front: 0,
        }
    }

    /// Removes and yields every element in order. Dropping the iterator
    /// early drops the remaining elements; either way the vector is left
    /// empty with its spilled heap capacity retained. Allocation-free.
    pub fn drain(&mut self) -> Drain<'_, T, N> {
        // Spilled elements are yielded via `pop`; reversing once up front
        // turns pops into front-to-back order without moving out by index.
        self.spill.reverse();
        Drain {
            vec: self,
            front: 0,
        }
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        self.get(index)
            .unwrap_or_else(|| panic!("index {index} out of bounds (len {})", self.len))
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> InlineVec<T, N> {
        let mut out = InlineVec::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(mut self) -> Self::IntoIter {
        // As in `drain`: reversing the spill turns pops into front-to-back
        // order without per-element moves out of the middle.
        self.spill.reverse();
        IntoIter {
            vec: self,
            front: 0,
        }
    }
}

/// Owning iterator for [`InlineVec`].
pub struct IntoIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    front: usize,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.front >= self.vec.len {
            return None;
        }
        let i = self.front;
        self.front += 1;
        if i < N {
            self.vec.inline[i].take()
        } else {
            self.vec.spill.pop()
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T, N>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Borrowing iterator for [`InlineVec`]; see [`InlineVec::iter`].
pub struct Iter<'a, T, const N: usize> {
    vec: &'a InlineVec<T, N>,
    front: usize,
}

impl<'a, T, const N: usize> Iterator for Iter<'a, T, N> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let item = self.vec.get(self.front)?;
        self.front += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.vec.len - self.front.min(self.vec.len);
        (rest, Some(rest))
    }
}

impl<T, const N: usize> ExactSizeIterator for Iter<'_, T, N> {}

/// Draining iterator for [`InlineVec`]; see [`InlineVec::drain`].
///
/// The spill vec is reversed when the drain is created, so popping its
/// tail yields front-to-back order.
pub struct Drain<'a, T, const N: usize> {
    vec: &'a mut InlineVec<T, N>,
    front: usize,
}

impl<T, const N: usize> Iterator for Drain<'_, T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.front >= self.vec.len {
            return None;
        }
        let i = self.front;
        self.front += 1;
        if i < N {
            self.vec.inline[i].take()
        } else {
            self.vec.spill.pop()
        }
    }
}

impl<T, const N: usize> Drop for Drain<'_, T, N> {
    fn drop(&mut self) {
        self.vec.clear();
    }
}
