//! The event engine: a deterministic, single-threaded discrete-event loop
//! over a two-level scheduler (near-horizon timer wheel + far heap), with
//! first-class cancellable component timers.

use std::fmt;

use crate::inline;
use crate::time::{Delay, Time};
use crate::wheel::{Entry, EventQueue};

/// The high bit that marks an explicitly *keyed* event sequence number
/// (see [`Ctx::send_keyed_at`]).
///
/// Ordinary pushes draw their tie-break sequence from a monotone per-engine
/// counter starting at zero, so every ordinary sequence number is far below
/// `2^63` in any realistic run. Keyed events carry a caller-chosen sequence
/// with this bit set, which gives two guarantees at equal timestamps:
/// keyed events sort **after** every ordinary event, and keyed events sort
/// among themselves in **key order** — independent of push order and of
/// which engine they were pushed into. That push-order independence is what
/// lets a partitioned (multi-engine) simulation inject cross-partition
/// events at synchronization barriers and still dispatch in exactly the
/// order the single-engine run would have used.
pub const KEYED_EVENT_BIT: u64 = 1 << 63;

/// Identifies a component registered with an [`Engine`].
///
/// Ids are dense indices assigned in registration order, which makes wiring
/// tables (`Vec<ComponentId>`) cheap and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// The dense index of this component.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

/// Identifies one armed timer wakeup, returned by [`Ctx::wake_at`].
///
/// A token is valid for exactly one fire: it can be cancelled with
/// [`Ctx::cancel_wake`] any time before its deadline is dispatched, and a
/// component re-arms by requesting a fresh token.
///
/// Internally a token is a `(slot, generation)` pair into the engine's
/// wake-slot table: slots are recycled once their timer fires or its
/// cancellation is reaped, and the generation disambiguates reuse, so
/// arming, cancelling and reaping are all O(1) array operations with no
/// hashing and no steady-state allocation. A token value repeats only
/// after 2³² arms of one slot — beyond any realistic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WakeToken(u64);

impl WakeToken {
    #[inline]
    fn new(slot: u32, generation: u32) -> WakeToken {
        WakeToken((u64::from(generation) << 32) | u64::from(slot))
    }

    #[inline]
    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// State of one wake-slot table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeState {
    /// Recyclable; the slot index is on the free list.
    Free,
    /// Armed and queued; will fire unless cancelled.
    Armed,
    /// Cancelled while queued; reaped silently when it surfaces.
    Cancelled,
}

/// One entry of the wake-slot table (see [`WakeToken`]).
#[derive(Debug, Clone, Copy)]
struct WakeSlot {
    generation: u32,
    state: WakeState,
}

/// A simulated hardware block that reacts to timestamped messages.
///
/// Handlers receive a [`Ctx`] through which they may schedule further
/// messages (to themselves or to other components) at the current time or
/// later, and arm or cancel timer wakeups ([`Ctx::wake_at`] /
/// [`Ctx::cancel_wake`]). Handlers must not block and must not assume any
/// ordering between messages carrying the same timestamp other than the
/// engine's FIFO guarantee (messages scheduled earlier are delivered
/// earlier).
pub trait Component<M>: AsAnyComponent {
    /// Reacts to `msg`, delivered at time `ctx.now()`.
    fn on_message(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Reacts to a timer wakeup armed earlier via [`Ctx::wake_at`].
    ///
    /// The default implementation ignores the wakeup; components that arm
    /// timers override it (usually via [`crate::AutoWake`]).
    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, M>) {
        let _ = (token, ctx);
    }

    /// A short human-readable name used in panics and debug output.
    fn name(&self) -> &str {
        "component"
    }
}

/// What a scheduled event delivers.
enum EventKind<M> {
    /// An ordinary message for [`Component::on_message`].
    Msg(M),
    /// A timer fire for [`Component::on_wake`].
    Wake(WakeToken),
}

/// One scheduled event: the queue orders by `(time, seq)` so delivery is in
/// timestamp order with FIFO tie-breaking — the source of the engine's
/// determinism.
struct Scheduled<M> {
    target: ComponentId,
    kind: EventKind<M>,
}

/// The part of the engine visible to a handler while it runs: the clock and
/// the event queue. Split from the component storage so a component can be
/// borrowed mutably while it schedules new events.
struct EngineCore<M> {
    time: Time,
    seq: u64,
    queue: EventQueue<Scheduled<M>>,
    dispatched: u64,
    /// The wake-slot table: O(1), hash-free timer bookkeeping indexed by
    /// [`WakeToken::slot`]. Grows to the peak number of simultaneously
    /// armed timers and is then allocation-free.
    wake_slots: Vec<WakeSlot>,
    /// Indices of [`WakeState::Free`] slots.
    free_slots: Vec<u32>,
    /// Queue entries belonging to cancelled (not yet reaped) timers.
    cancelled_pending: usize,
    wake_fires: u64,
    wake_cancels: u64,
}

impl<M> EngineCore<M> {
    fn push(&mut self, time: Time, target: ComponentId, kind: EventKind<M>) {
        debug_assert!(time >= self.time, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        debug_assert!(seq < KEYED_EVENT_BIT, "ordinary sequence space exhausted");
        self.queue.push(Entry {
            time,
            seq,
            item: Scheduled { target, kind },
        });
    }

    /// Pushes an event whose tie-break sequence is the caller-chosen `key`
    /// (bit 63 set; see [`KEYED_EVENT_BIT`]). Does not consume an ordinary
    /// sequence number, so keyed pushes leave ordinary FIFO order intact.
    fn push_keyed(&mut self, time: Time, target: ComponentId, key: u64, kind: EventKind<M>) {
        debug_assert!(time >= self.time, "cannot schedule into the past");
        debug_assert!(key >= KEYED_EVENT_BIT, "keys carry KEYED_EVENT_BIT");
        self.queue.push(Entry {
            time,
            seq: key,
            item: Scheduled { target, kind },
        });
    }

    fn arm_wake(&mut self, at: Time, target: ComponentId) -> WakeToken {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.wake_slots.push(WakeSlot {
                generation: 0,
                state: WakeState::Free,
            });
            (self.wake_slots.len() - 1) as u32
        });
        let entry = &mut self.wake_slots[slot as usize];
        debug_assert_eq!(entry.state, WakeState::Free, "free list holds free slots");
        entry.state = WakeState::Armed;
        let token = WakeToken::new(slot, entry.generation);
        self.push(at, target, EventKind::Wake(token));
        token
    }

    fn cancel_wake(&mut self, token: WakeToken) -> bool {
        match self.wake_slots.get_mut(token.slot()) {
            Some(slot)
                if slot.generation == token.generation() && slot.state == WakeState::Armed =>
            {
                slot.state = WakeState::Cancelled;
                self.cancelled_pending += 1;
                self.wake_cancels += 1;
                true
            }
            _ => false,
        }
    }

    /// Retires `token`'s slot after its queue entry surfaced (fired or
    /// reaped): bumps the generation and recycles the slot.
    fn retire_wake(&mut self, token: WakeToken) {
        let slot = &mut self.wake_slots[token.slot()];
        slot.generation = slot.generation.wrapping_add(1);
        slot.state = WakeState::Free;
        self.free_slots.push(token.slot() as u32);
    }
}

/// Handler-side view of the engine: read the clock, schedule messages, arm
/// timers.
pub struct Ctx<'a, M> {
    core: &'a mut EngineCore<M>,
    self_id: ComponentId,
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.core.time
    }

    /// The id of the component currently handling a message.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `to` after `delay`.
    ///
    /// A `delay` of [`Delay::ZERO`] delivers at the current timestamp, after
    /// every message already queued for this timestamp (FIFO).
    #[inline]
    pub fn send(&mut self, delay: Delay, to: ComponentId, msg: M) {
        let at = self.core.time + delay;
        self.core.push(at, to, EventKind::Msg(msg));
    }

    /// Schedules `msg` for delivery to the current component after `delay`.
    #[inline]
    pub fn send_self(&mut self, delay: Delay, msg: M) {
        let id = self.self_id;
        self.send(delay, id, msg);
    }

    /// Schedules `msg` for delivery to `to` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past.
    #[inline]
    pub fn send_at(&mut self, at: Time, to: ComponentId, msg: M) {
        self.core.push(at, to, EventKind::Msg(msg));
    }

    /// Schedules `msg` for delivery to `to` at the absolute instant `at`
    /// with an explicit tie-break `key` instead of the engine's FIFO
    /// counter (see [`KEYED_EVENT_BIT`]).
    ///
    /// At equal timestamps a keyed event is delivered after every
    /// FIFO-ordered event and keyed events are delivered in ascending key
    /// order, regardless of push order. Callers own key uniqueness; a
    /// duplicate `(at, key)` pair leaves the relative order of the two
    /// duplicates unspecified.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past or `key` lacks
    /// [`KEYED_EVENT_BIT`].
    #[inline]
    pub fn send_keyed_at(&mut self, at: Time, to: ComponentId, key: u64, msg: M) {
        self.core.push_keyed(at, to, key, EventKind::Msg(msg));
    }

    /// Arms a timer: the current component's [`Component::on_wake`] runs at
    /// the absolute instant `at` with the returned token, unless the token
    /// is cancelled first.
    ///
    /// Within one timestamp, wakeups obey the same FIFO rule as messages.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past.
    #[inline]
    pub fn wake_at(&mut self, at: Time) -> WakeToken {
        let id = self.self_id;
        self.core.arm_wake(at, id)
    }

    /// Arms a timer `delay` from now; see [`Ctx::wake_at`].
    #[inline]
    pub fn wake_after(&mut self, delay: Delay) -> WakeToken {
        let at = self.core.time + delay;
        let id = self.self_id;
        self.core.arm_wake(at, id)
    }

    /// Cancels an armed timer. Returns `true` if the token was live (its
    /// wakeup will not be delivered); `false` if it already fired or was
    /// already cancelled. Cancellation is O(1): the queue entry is skipped
    /// — without dispatching or advancing the clock — when it surfaces.
    #[inline]
    pub fn cancel_wake(&mut self, token: WakeToken) -> bool {
        self.core.cancel_wake(token)
    }
}

/// Counters describing an engine run; useful for benchmarking the kernel and
/// asserting that experiments did real work (or, for the event-driven host
/// refactor, that they *avoided* work: idle-skip wakeups cut `dispatched`
/// by an order of magnitude on low-load sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total events dispatched to components (messages plus timer fires;
    /// cancelled timers are not dispatched and not counted).
    pub dispatched: u64,
    /// Events still queued (e.g. after `run_until` stopped at a horizon),
    /// excluding cancelled-but-unreaped timers.
    pub pending: usize,
    /// Timer wakeups delivered to [`Component::on_wake`].
    pub wake_fires: u64,
    /// Timer wakeups cancelled before firing.
    pub wake_cancels: u64,
    /// Heap allocations performed by [`crate::InlineVec`] scratch buffers
    /// on this thread since the engine was created (first spill of a
    /// buffer, or regrowth of an already-spilled one). The zero-allocation
    /// hot-path property the tier-1 suite asserts is that this stays
    /// *bounded* as a run grows: a reused scratch buffer allocates at most
    /// a handful of times while it grows to the workload's peak burst, and
    /// never again in steady state. Meaningful only when the engine runs
    /// on the thread that created it (which the single-threaded engine
    /// requires anyway).
    pub scratch_spills: u64,
}

/// A deterministic discrete-event engine over message type `M`.
///
/// Events live in a two-level scheduler: a bucketed timer wheel absorbs the
/// dense near-horizon traffic in O(1) per event, and a binary heap holds
/// the sparse far tail (see [`crate::wheel`]-level docs in the source).
/// Delivery order is exactly `(timestamp, insertion order)`, identical to a
/// single global heap.
///
/// # Examples
///
/// ```
/// use hmc_des::{Component, Ctx, Delay, Engine, Time};
///
/// struct Echo {
///     seen: u32,
/// }
///
/// impl Component<u32> for Echo {
///     fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
///         self.seen += msg;
///         if msg > 0 {
///             ctx.send_self(Delay::from_ns(1), msg - 1);
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// let id = engine.add_component(Box::new(Echo { seen: 0 }));
/// engine.schedule(Time::ZERO, id, 3);
/// engine.run_to_quiescence();
/// assert_eq!(engine.component::<Echo>(id).unwrap().seen, 3 + 2 + 1);
/// ```
pub struct Engine<M> {
    core: EngineCore<M>,
    components: Vec<Option<Box<dyn Component<M>>>>,
    names: Vec<String>,
    /// [`inline::spill_allocs`] at creation; `stats()` reports the delta.
    spill_baseline: u64,
    /// Timestamp of the most recently dispatched event ([`Time::ZERO`]
    /// before any dispatch). Unlike [`Engine::now`], never dragged forward
    /// by a finite [`Engine::run_until`] horizon.
    last_dispatched: Time,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine with the clock at [`Time::ZERO`].
    pub fn new() -> Engine<M> {
        Engine::with_capacity(0)
    }

    /// Creates an empty engine pre-sized for `components` registrations,
    /// so the registry never regrows during wiring. Simulations that know
    /// their component count up front (a fabric knows its cube count)
    /// should prefer this over [`Engine::new`].
    pub fn with_capacity(components: usize) -> Engine<M> {
        Engine {
            core: EngineCore {
                time: Time::ZERO,
                seq: 0,
                queue: EventQueue::new(),
                dispatched: 0,
                wake_slots: Vec::with_capacity(components.max(8)),
                free_slots: Vec::with_capacity(components.max(8)),
                cancelled_pending: 0,
                wake_fires: 0,
                wake_cancels: 0,
            },
            components: Vec::with_capacity(components),
            names: Vec::with_capacity(components),
            spill_baseline: inline::spill_allocs(),
            last_dispatched: Time::ZERO,
        }
    }

    /// Registers a component and returns its id.
    pub fn add_component(&mut self, component: Box<dyn Component<M>>) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.names.push(component.name().to_owned());
        self.components.push(Some(component));
        id
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.core.time
    }

    /// The number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Schedules `msg` for delivery to `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current time.
    pub fn schedule(&mut self, at: Time, to: ComponentId, msg: M) {
        self.core.push(at, to, EventKind::Msg(msg));
    }

    /// Schedules `msg` for delivery to `to` after `delay` from now.
    pub fn schedule_after(&mut self, delay: Delay, to: ComponentId, msg: M) {
        let at = self.core.time + delay;
        self.core.push(at, to, EventKind::Msg(msg));
    }

    /// Schedules `msg` at `at` with an explicit tie-break key (the engine
    /// entry point of [`Ctx::send_keyed_at`]; same ordering contract).
    /// Used to inject cross-partition events at synchronization barriers:
    /// injection order does not matter, the key decides.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current time or `key`
    /// lacks [`KEYED_EVENT_BIT`].
    pub fn schedule_keyed(&mut self, at: Time, to: ComponentId, key: u64, msg: M) {
        self.core.push_keyed(at, to, key, EventKind::Msg(msg));
    }

    /// The timestamp of the earliest queued event, or `None` when the
    /// queue is empty. Cancelled-but-unreaped timers are counted (their
    /// entries still surface, silently), so the reported bound is
    /// conservative: the next *observable* dispatch is at or after it.
    pub fn next_event_time(&mut self) -> Option<Time> {
        self.core.queue.peek_time()
    }

    /// The timestamp of the most recently dispatched event, or
    /// [`Time::ZERO`] if nothing was dispatched. Unlike [`Engine::now`],
    /// a finite [`Engine::run_until`] horizon never drags this forward,
    /// so it answers "when did the simulation last do real work" even
    /// under windowed execution.
    #[inline]
    pub fn last_dispatched_at(&self) -> Time {
        self.last_dispatched
    }

    /// Runs until the queue is empty. Returns the number of events
    /// dispatched by this call. The clock is left at the last dispatched
    /// event's timestamp (see [`Engine::run_until`]).
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Runs until the queue is empty or the next event is strictly after
    /// `horizon`. Returns the number of events dispatched by this call.
    ///
    /// # Clock semantics
    ///
    /// For a finite `horizon` the clock always ends exactly at `horizon`
    /// (even if the queue drained earlier), so repeated `run_until` calls
    /// advance the clock in lockstep with the caller's horizon. As the
    /// single documented exception, `run_until(Time::MAX)` — the
    /// quiescence form — leaves the clock at the **last dispatched
    /// event's timestamp**: advancing to `Time::MAX` would destroy the
    /// run's "when did the simulation finish" reading and make every
    /// subsequent `Time` addition overflow. With an empty queue and
    /// `horizon == Time::MAX` the clock does not move at all. In both
    /// cases [`EngineStats::pending`] reports 0 after the call; cancelled
    /// timers never advance the clock.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let before = self.core.dispatched;
        while let Some(head_time) = self.core.queue.peek_time() {
            if head_time > horizon {
                break;
            }
            let ev = self.core.queue.pop().expect("peeked event vanished");
            let token = match ev.item.kind {
                EventKind::Wake(token) => {
                    let state = self.core.wake_slots[token.slot()].state;
                    debug_assert_ne!(state, WakeState::Free, "queued wake has a live slot");
                    self.core.retire_wake(token);
                    if state == WakeState::Cancelled {
                        // Cancelled before firing: reap silently. The clock
                        // must not advance for an event nobody observes.
                        self.core.cancelled_pending -= 1;
                        continue;
                    }
                    self.core.wake_fires += 1;
                    Some(token)
                }
                EventKind::Msg(_) => None,
            };
            debug_assert!(ev.time >= self.core.time, "event queue went backwards");
            self.core.time = ev.time;
            self.last_dispatched = ev.time;
            self.core.dispatched += 1;
            let slot = ev.item.target.index();
            let mut component = self.components[slot]
                .take()
                .unwrap_or_else(|| panic!("{} dispatched re-entrantly", self.names[slot]));
            let mut ctx = Ctx {
                core: &mut self.core,
                self_id: ev.item.target,
            };
            match ev.item.kind {
                EventKind::Msg(msg) => component.on_message(msg, &mut ctx),
                EventKind::Wake(_) => {
                    component.on_wake(token.expect("wake carries its token"), &mut ctx);
                }
            }
            self.components[slot] = Some(component);
        }
        if self.core.time < horizon && horizon != Time::MAX {
            self.core.time = horizon;
        }
        self.core.dispatched - before
    }

    /// Borrows a component by id, downcast to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    pub fn component<T: 'static>(&self, id: ComponentId) -> Option<&T>
    where
        M: 'static,
    {
        self.components
            .get(id.index())?
            .as_deref()
            .and_then(|c| c.as_any().downcast_ref())
    }

    /// Mutably borrows a component by id, downcast to its concrete type.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T>
    where
        M: 'static,
    {
        self.components
            .get_mut(id.index())?
            .as_deref_mut()
            .and_then(|c| c.as_any_mut().downcast_mut())
    }

    /// Counters for this engine.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            dispatched: self.core.dispatched,
            pending: self.core.queue.len() - self.core.cancelled_pending,
            wake_fires: self.core.wake_fires,
            wake_cancels: self.core.wake_cancels,
            scratch_spills: inline::spill_allocs() - self.spill_baseline,
        }
    }

    /// Excludes `n` scratch-spill allocations from this engine's
    /// [`EngineStats::scratch_spills`]. The spill counter is thread-local
    /// and each engine baselines it at construction, which attributes
    /// spills exactly while an engine has its thread to itself; a caller
    /// that multiplexes several engines onto one thread must charge each
    /// section's spills to the engine that ran it and declare them
    /// foreign to the others via this method, or the per-engine counts
    /// (and their sum) inflate.
    pub fn absorb_foreign_spills(&mut self, n: u64) {
        self.spill_baseline += n;
    }
}

/// Object-safe downcasting support for components.
///
/// Blanket-implemented for every `'static` type, so implementing
/// [`Component`] requires nothing extra; used by [`Engine::component`] /
/// [`Engine::component_mut`] to recover concrete component types (e.g. to
/// read final statistics after a run).
pub trait AsAnyComponent {
    /// `self` as [`std::any::Any`].
    fn as_any(&self) -> &dyn std::any::Any;
    /// `self` as mutable [`std::any::Any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: 'static> AsAnyComponent for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        hits: Vec<(u64, u32)>,
    }

    impl Component<u32> for Counter {
        fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.hits.push((ctx.now().as_ps(), msg));
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ps(30), id, 3);
        e.schedule(Time::from_ps(10), id, 1);
        e.schedule(Time::from_ps(20), id, 2);
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        assert_eq!(c.hits, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        for i in 0..100 {
            e.schedule(Time::from_ps(5), id, i);
        }
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        let payloads: Vec<u32> = c.hits.iter().map(|&(_, m)| m).collect();
        assert_eq!(payloads, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_and_near_events_interleave_in_order() {
        // Mix events across wheel buckets and beyond the wheel horizon
        // (the far heap) — delivery must still be globally time-ordered.
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_us(100), id, 4);
        e.schedule(Time::from_ns(1), id, 1);
        e.schedule(Time::from_us(2), id, 3);
        e.schedule(Time::from_ns(500), id, 2);
        e.schedule(Time::from_ms(5), id, 5);
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        let payloads: Vec<u32> = c.hits.iter().map(|&(_, m)| m).collect();
        assert_eq!(payloads, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ps(10), id, 1);
        e.schedule(Time::from_ps(20), id, 2);
        let n = e.run_until(Time::from_ps(15));
        assert_eq!(n, 1);
        assert_eq!(e.now(), Time::from_ps(15));
        assert_eq!(e.stats().pending, 1);
        e.run_to_quiescence();
        assert_eq!(e.component::<Counter>(id).unwrap().hits.len(), 2);
    }

    #[test]
    fn run_until_time_max_leaves_clock_at_last_event() {
        // The documented quiescence invariant: a Time::MAX horizon does
        // not drag the clock to the sentinel.
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ns(7), id, 1);
        let n = e.run_until(Time::MAX);
        assert_eq!(n, 1);
        assert_eq!(e.now(), Time::from_ns(7));
        assert_eq!(e.stats().pending, 0);
    }

    #[test]
    fn run_until_time_max_on_empty_queue_moves_nothing() {
        let mut e: Engine<u32> = Engine::new();
        let _ = e.add_component(Box::new(Counter { hits: vec![] }));
        assert_eq!(e.run_until(Time::MAX), 0);
        assert_eq!(e.now(), Time::ZERO);
        assert_eq!(e.stats().pending, 0);
        // A finite horizon, by contrast, always advances the clock.
        assert_eq!(e.run_until(Time::from_ns(3)), 0);
        assert_eq!(e.now(), Time::from_ns(3));
    }

    #[test]
    fn keyed_events_sort_after_fifo_and_in_key_order() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        let t = Time::from_ps(50);
        // Keys pushed in descending order, interleaved with FIFO pushes:
        // dispatch must be FIFO events first, then ascending key order.
        e.schedule_keyed(t, id, KEYED_EVENT_BIT | 30, 103);
        e.schedule(t, id, 1);
        e.schedule_keyed(t, id, KEYED_EVENT_BIT | 10, 101);
        e.schedule(t, id, 2);
        e.schedule_keyed(t, id, KEYED_EVENT_BIT | 20, 102);
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        let payloads: Vec<u32> = c.hits.iter().map(|&(_, m)| m).collect();
        assert_eq!(payloads, vec![1, 2, 101, 102, 103]);
    }

    #[test]
    fn keyed_order_is_push_order_independent() {
        // The same (time, key) set pushed in two different orders, split
        // across engine/ctx entry points, dispatches identically.
        let run = |flip: bool| {
            let mut e: Engine<u32> = Engine::new();
            let id = e.add_component(Box::new(Counter { hits: vec![] }));
            let keys = [7u64, 3, 9, 1];
            let order: Vec<u64> = if flip {
                keys.iter().rev().copied().collect()
            } else {
                keys.to_vec()
            };
            for k in order {
                e.schedule_keyed(Time::from_ns(1), id, KEYED_EVENT_BIT | k, k as u32);
            }
            e.run_to_quiescence();
            e.component::<Counter>(id).unwrap().hits.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn keyed_pushes_leave_fifo_sequence_untouched() {
        // A keyed push between two ordinary pushes must not perturb their
        // FIFO tie-break (keyed pushes consume no ordinary sequence).
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ps(5), id, 1);
        e.schedule_keyed(Time::from_ps(5), id, KEYED_EVENT_BIT | 1, 99);
        e.schedule(Time::from_ps(5), id, 2);
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        let payloads: Vec<u32> = c.hits.iter().map(|&(_, m)| m).collect();
        assert_eq!(payloads, vec![1, 2, 99]);
    }

    #[test]
    fn next_event_time_reports_the_head() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        assert_eq!(e.next_event_time(), None);
        e.schedule(Time::from_ns(4), id, 0);
        e.schedule(Time::from_ns(2), id, 0);
        assert_eq!(e.next_event_time(), Some(Time::from_ns(2)));
        e.run_until(Time::from_ns(3));
        assert_eq!(e.next_event_time(), Some(Time::from_ns(4)));
        e.run_to_quiescence();
        assert_eq!(e.next_event_time(), None);
    }

    #[test]
    fn last_dispatched_ignores_horizon_drag() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ns(2), id, 0);
        e.run_until(Time::from_ns(10));
        assert_eq!(e.now(), Time::from_ns(10), "finite horizon drags the clock");
        assert_eq!(
            e.last_dispatched_at(),
            Time::from_ns(2),
            "last dispatch is the real work timestamp"
        );
        e.run_until(Time::from_ns(20));
        assert_eq!(
            e.last_dispatched_at(),
            Time::from_ns(2),
            "idle windows change nothing"
        );
    }

    /// Arms a wake on the first message; records fires.
    struct Sleeper {
        token: Option<WakeToken>,
        at: Time,
        fires: Vec<u64>,
        cancel_on_message: bool,
    }

    impl Component<u32> for Sleeper {
        fn on_message(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            match self.token {
                None => self.token = Some(ctx.wake_at(self.at)),
                Some(t) if self.cancel_on_message => {
                    assert!(ctx.cancel_wake(t));
                    self.token = None;
                }
                Some(_) => {}
            }
        }
        fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, u32>) {
            assert_eq!(Some(token), self.token);
            self.fires.push(ctx.now().as_ps());
        }
    }

    #[test]
    fn wake_at_fires_at_the_deadline() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Sleeper {
            token: None,
            at: Time::from_ns(9),
            fires: vec![],
            cancel_on_message: false,
        }));
        e.schedule(Time::ZERO, id, 0);
        e.run_to_quiescence();
        assert_eq!(e.component::<Sleeper>(id).unwrap().fires, vec![9_000]);
        assert_eq!(e.stats().wake_fires, 1);
        assert_eq!(e.now(), Time::from_ns(9));
    }

    #[test]
    fn cancelled_wake_never_fires_and_moves_no_clock() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Sleeper {
            token: None,
            at: Time::from_ns(9),
            fires: vec![],
            cancel_on_message: true,
        }));
        e.schedule(Time::ZERO, id, 0);
        e.schedule(Time::from_ns(1), id, 0);
        e.run_to_quiescence();
        assert!(e.component::<Sleeper>(id).unwrap().fires.is_empty());
        assert_eq!(e.stats().wake_fires, 0);
        assert_eq!(e.stats().wake_cancels, 1);
        assert_eq!(e.now(), Time::from_ns(1), "reaped timer left clock alone");
        assert_eq!(e.stats().pending, 0);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        struct LateCancel {
            token: Option<WakeToken>,
        }
        impl Component<u32> for LateCancel {
            fn on_message(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
                match self.token {
                    None => self.token = Some(ctx.wake_after(Delay::from_ns(1))),
                    Some(t) => assert!(!ctx.cancel_wake(t), "token already fired"),
                }
            }
        }
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(LateCancel { token: None }));
        e.schedule(Time::ZERO, id, 0);
        e.schedule(Time::from_ns(5), id, 0);
        e.run_to_quiescence();
        assert_eq!(e.stats().wake_fires, 1);
        assert_eq!(e.stats().wake_cancels, 0);
    }

    #[test]
    fn wakes_and_messages_share_the_fifo_order() {
        // A wake armed before a same-timestamp message fires first; armed
        // after, it fires second.
        struct Interleave {
            log: Vec<&'static str>,
        }
        impl Component<u32> for Interleave {
            fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
                self.log.push("msg");
                if msg == 1 {
                    // Arm a wake for the SAME timestamp as an already-queued
                    // message: the message was pushed first, so it leads.
                    ctx.wake_at(ctx.now() + Delay::from_ns(1));
                }
            }
            fn on_wake(&mut self, _token: WakeToken, _ctx: &mut Ctx<'_, u32>) {
                self.log.push("wake");
            }
        }
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Interleave { log: vec![] }));
        e.schedule(Time::ZERO, id, 1);
        e.schedule(Time::from_ns(1), id, 0);
        e.run_to_quiescence();
        assert_eq!(
            e.component::<Interleave>(id).unwrap().log,
            vec!["msg", "msg", "wake"]
        );
    }
}
