//! The event engine: a deterministic, single-threaded discrete-event loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{Delay, Time};

/// Identifies a component registered with an [`Engine`].
///
/// Ids are dense indices assigned in registration order, which makes wiring
/// tables (`Vec<ComponentId>`) cheap and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// The dense index of this component.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

/// A simulated hardware block that reacts to timestamped messages.
///
/// Handlers receive a [`Ctx`] through which they may schedule further
/// messages (to themselves or to other components) at the current time or
/// later. Handlers must not block and must not assume any ordering between
/// messages carrying the same timestamp other than the engine's FIFO
/// guarantee (messages scheduled earlier are delivered earlier).
pub trait Component<M>: AsAnyComponent {
    /// Reacts to `msg`, delivered at time `ctx.now()`.
    fn on_message(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// A short human-readable name used in panics and debug output.
    fn name(&self) -> &str {
        "component"
    }
}

/// One scheduled message. Ordered by `(time, seq)` so the queue pops in
/// timestamp order with FIFO tie-breaking — the source of the engine's
/// determinism.
struct Scheduled<M> {
    time: Time,
    seq: u64,
    target: ComponentId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The part of the engine visible to a handler while it runs: the clock and
/// the event queue. Split from the component storage so a component can be
/// borrowed mutably while it schedules new events.
struct EngineCore<M> {
    time: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    dispatched: u64,
}

impl<M> EngineCore<M> {
    fn push(&mut self, time: Time, target: ComponentId, msg: M) {
        debug_assert!(time >= self.time, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time,
            seq,
            target,
            msg,
        }));
    }
}

/// Handler-side view of the engine: read the clock, schedule messages.
pub struct Ctx<'a, M> {
    core: &'a mut EngineCore<M>,
    self_id: ComponentId,
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.core.time
    }

    /// The id of the component currently handling a message.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `to` after `delay`.
    ///
    /// A `delay` of [`Delay::ZERO`] delivers at the current timestamp, after
    /// every message already queued for this timestamp (FIFO).
    #[inline]
    pub fn send(&mut self, delay: Delay, to: ComponentId, msg: M) {
        let at = self.core.time + delay;
        self.core.push(at, to, msg);
    }

    /// Schedules `msg` for delivery to the current component after `delay`.
    #[inline]
    pub fn send_self(&mut self, delay: Delay, msg: M) {
        let id = self.self_id;
        self.send(delay, id, msg);
    }

    /// Schedules `msg` for delivery to `to` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past.
    #[inline]
    pub fn send_at(&mut self, at: Time, to: ComponentId, msg: M) {
        self.core.push(at, to, msg);
    }
}

/// Counters describing an engine run; useful for benchmarking the kernel and
/// asserting that experiments did real work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total messages dispatched to components.
    pub dispatched: u64,
    /// Messages still queued (e.g. after `run_until` stopped at a horizon).
    pub pending: usize,
}

/// A deterministic discrete-event engine over message type `M`.
///
/// # Examples
///
/// ```
/// use hmc_des::{Component, Ctx, Delay, Engine, Time};
///
/// struct Echo {
///     seen: u32,
/// }
///
/// impl Component<u32> for Echo {
///     fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
///         self.seen += msg;
///         if msg > 0 {
///             ctx.send_self(Delay::from_ns(1), msg - 1);
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// let id = engine.add_component(Box::new(Echo { seen: 0 }));
/// engine.schedule(Time::ZERO, id, 3);
/// engine.run_to_quiescence();
/// assert_eq!(engine.component::<Echo>(id).unwrap().seen, 3 + 2 + 1);
/// ```
pub struct Engine<M> {
    core: EngineCore<M>,
    components: Vec<Option<Box<dyn Component<M>>>>,
    names: Vec<String>,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine with the clock at [`Time::ZERO`].
    pub fn new() -> Engine<M> {
        Engine {
            core: EngineCore {
                time: Time::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                dispatched: 0,
            },
            components: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Registers a component and returns its id.
    pub fn add_component(&mut self, component: Box<dyn Component<M>>) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.names.push(component.name().to_owned());
        self.components.push(Some(component));
        id
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.core.time
    }

    /// The number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Schedules `msg` for delivery to `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current time.
    pub fn schedule(&mut self, at: Time, to: ComponentId, msg: M) {
        self.core.push(at, to, msg);
    }

    /// Schedules `msg` for delivery to `to` after `delay` from now.
    pub fn schedule_after(&mut self, delay: Delay, to: ComponentId, msg: M) {
        let at = self.core.time + delay;
        self.core.push(at, to, msg);
    }

    /// Runs until the queue is empty. Returns the number of messages
    /// dispatched by this call.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Runs until the queue is empty or the next message is strictly after
    /// `horizon`; the clock never advances past `horizon`. Returns the number
    /// of messages dispatched by this call.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let before = self.core.dispatched;
        while let Some(Reverse(head)) = self.core.queue.peek() {
            if head.time > horizon {
                break;
            }
            let Reverse(ev) = self.core.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.core.time, "event queue went backwards");
            self.core.time = ev.time;
            self.core.dispatched += 1;
            let slot = ev.target.index();
            let mut component = self.components[slot]
                .take()
                .unwrap_or_else(|| panic!("{} dispatched re-entrantly", self.names[slot]));
            let mut ctx = Ctx {
                core: &mut self.core,
                self_id: ev.target,
            };
            component.on_message(ev.msg, &mut ctx);
            self.components[slot] = Some(component);
        }
        if self.core.time < horizon && horizon != Time::MAX {
            self.core.time = horizon;
        }
        self.core.dispatched - before
    }

    /// Borrows a component by id, downcast to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    pub fn component<T: 'static>(&self, id: ComponentId) -> Option<&T>
    where
        M: 'static,
    {
        self.components
            .get(id.index())?
            .as_deref()
            .and_then(|c| c.as_any().downcast_ref())
    }

    /// Mutably borrows a component by id, downcast to its concrete type.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T>
    where
        M: 'static,
    {
        self.components
            .get_mut(id.index())?
            .as_deref_mut()
            .and_then(|c| c.as_any_mut().downcast_mut())
    }

    /// Counters for this engine.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            dispatched: self.core.dispatched,
            pending: self.core.queue.len(),
        }
    }
}

/// Object-safe downcasting support for components.
///
/// Blanket-implemented for every `'static` type, so implementing
/// [`Component`] requires nothing extra; used by [`Engine::component`] /
/// [`Engine::component_mut`] to recover concrete component types (e.g. to
/// read final statistics after a run).
pub trait AsAnyComponent {
    /// `self` as [`std::any::Any`].
    fn as_any(&self) -> &dyn std::any::Any;
    /// `self` as mutable [`std::any::Any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: 'static> AsAnyComponent for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        hits: Vec<(u64, u32)>,
    }

    impl Component<u32> for Counter {
        fn on_message(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.hits.push((ctx.now().as_ps(), msg));
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ps(30), id, 3);
        e.schedule(Time::from_ps(10), id, 1);
        e.schedule(Time::from_ps(20), id, 2);
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        assert_eq!(c.hits, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        for i in 0..100 {
            e.schedule(Time::from_ps(5), id, i);
        }
        e.run_to_quiescence();
        let c = e.component::<Counter>(id).unwrap();
        let payloads: Vec<u32> = c.hits.iter().map(|&(_, m)| m).collect();
        assert_eq!(payloads, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e: Engine<u32> = Engine::new();
        let id = e.add_component(Box::new(Counter { hits: vec![] }));
        e.schedule(Time::from_ps(10), id, 1);
        e.schedule(Time::from_ps(20), id, 2);
        let n = e.run_until(Time::from_ps(15));
        assert_eq!(n, 1);
        assert_eq!(e.now(), Time::from_ps(15));
        assert_eq!(e.stats().pending, 1);
        e.run_to_quiescence();
        assert_eq!(e.component::<Counter>(id).unwrap().hits.len(), 2);
    }
}
