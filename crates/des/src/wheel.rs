//! The engine's two-level event queue: a bucketed near-horizon timer wheel
//! in front of a binary heap for far-future events.
//!
//! Discrete-event simulations of clocked hardware schedule almost
//! everything a few nanoseconds ahead (the next FPGA cycle, the end of a
//! flit's serialization, a DRAM bank timer), with a thin tail of far-out
//! control events (end of warmup, end of measurement). A single
//! `BinaryHeap` pays `O(log n)` per operation for every one of them. The
//! [`EventQueue`] here keeps the dense near-term traffic in a ring of
//! constant-time buckets and only heap-sorts the sparse far tail:
//!
//! - **active heap** — events in the bucket the clock currently occupies,
//!   kept in a small heap so same-bucket ordering stays exact;
//! - **wheel** — one unsorted `Vec` per slot of [`WHEEL_SLOTS`] × 4096 ps
//!   ahead of the cursor; push is `O(1)`;
//! - **far heap** — everything beyond the wheel horizon; migrated in
//!   batches whenever the wheel runs dry.
//!
//! Ordering is identical to the plain heap: `(time, seq)` with FIFO
//! tie-breaking, which the engine's determinism contract requires. The
//! queue is robust to pushes at or before the cursor's bucket (they land
//! in the active heap, which is totally ordered), so a caller scheduling
//! "now" mid-drain never corrupts the ring.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// log2 of the wheel-slot width in picoseconds (4096 ps ≈ 4.1 ns — finer
/// than every clock in the modelled system, so one slot rarely holds more
/// than a handful of events).
const SLOT_BITS: u32 = 12;

/// Width of one wheel slot in picoseconds (referenced by the tests; prod
/// code shifts by [`SLOT_BITS`] directly).
#[cfg(test)]
pub const SLOT_PS: u64 = 1 << SLOT_BITS;

/// Number of wheel slots; the near horizon is `WHEEL_SLOTS * SLOT_PS`
/// ≈ 1.05 µs, comfortably past every link/NoC/DRAM latency in the model.
pub const WHEEL_SLOTS: usize = 256;

/// An entry ordered by `(time, seq)`. The queue never inspects the
/// payload.
pub struct Entry<T> {
    /// Due instant.
    pub time: Time,
    /// Insertion order within equal times (the caller's monotone counter).
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[inline]
fn slot_of(time: Time) -> u64 {
    time.as_ps() >> SLOT_BITS
}

/// The two-level priority queue. Pops strictly in `(time, seq)` order.
///
/// Public beyond the engine: any component with an internal calendar of
/// timed work (e.g. the HMC device's DRAM/queue events) can use it as a
/// drop-in replacement for a `BinaryHeap` keyed on `(time, seq)` — same
/// order, constant-time pushes for near-horizon traffic.
pub struct EventQueue<T> {
    /// Events in the cursor's bucket (and any pushed at or before it) —
    /// always contains the global minimum once [`EventQueue::prepare`]
    /// has run.
    active: BinaryHeap<Reverse<Entry<T>>>,
    /// Ring of near-horizon buckets, indexed by absolute slot mod
    /// [`WHEEL_SLOTS`]. Slot `s` may only hold events whose absolute slot
    /// is in `(cursor, cursor + WHEEL_SLOTS)`.
    slots: Vec<Vec<Entry<T>>>,
    /// Total events in `slots`.
    near_len: usize,
    /// Absolute slot number of the active bucket; never decreases.
    cursor: u64,
    /// Events beyond the wheel horizon.
    far: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with its ring pre-allocated.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            active: BinaryHeap::with_capacity(16),
            // Slot buffers are pre-sized and reused across ring rotations:
            // `prepare` drains a bucket without releasing its capacity, so
            // after the first few laps the wheel allocates nothing.
            slots: (0..WHEEL_SLOTS).map(|_| Vec::with_capacity(4)).collect(),
            near_len: 0,
            cursor: 0,
            far: BinaryHeap::with_capacity(16),
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.active.len() + self.near_len + self.far.len()
    }

    /// `true` when no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues an entry; `O(1)` inside the near horizon.
    pub fn push(&mut self, entry: Entry<T>) {
        let s = slot_of(entry.time);
        if s <= self.cursor {
            // The cursor's own bucket — or (only possible if a caller
            // schedules into the past in a release build) an earlier one.
            // The active heap is totally ordered, so both stay correct.
            self.active.push(Reverse(entry));
        } else if s - self.cursor < WHEEL_SLOTS as u64 {
            self.near_len += 1;
            self.slots[(s % WHEEL_SLOTS as u64) as usize].push(entry);
        } else {
            self.far.push(Reverse(entry));
        }
    }

    /// Moves the cursor to `new_cursor` and restores the far-heap
    /// invariant: every far event whose absolute slot now falls inside the
    /// wheel window `[cursor, cursor + WHEEL_SLOTS)` migrates into the
    /// active heap or its ring bucket. Without this, a far event whose
    /// slot the advancing cursor caught up with would be overtaken by
    /// nearer traffic and delivered out of order.
    fn advance_cursor_to(&mut self, new_cursor: u64) {
        debug_assert!(new_cursor >= self.cursor, "cursor never retreats");
        self.cursor = new_cursor;
        while let Some(Reverse(head)) = self.far.peek() {
            let s = slot_of(head.time);
            if s >= self.cursor + WHEEL_SLOTS as u64 {
                break;
            }
            let Reverse(e) = self.far.pop().expect("peeked");
            if s <= self.cursor {
                self.active.push(Reverse(e));
            } else {
                self.near_len += 1;
                self.slots[(s % WHEEL_SLOTS as u64) as usize].push(e);
            }
        }
    }

    /// Ensures the active heap holds the global minimum (if any event is
    /// queued at all) by advancing the cursor through the wheel and, when
    /// the wheel is dry, jumping it to the far heap's minimum.
    fn prepare(&mut self) {
        while self.active.is_empty() {
            if self.near_len > 0 {
                // Step to the next bucket (a non-empty one is at most
                // WHEEL_SLOTS - 1 steps away) and drain it.
                let next = self.cursor + 1;
                self.advance_cursor_to(next);
                let slot = &mut self.slots[(self.cursor % WHEEL_SLOTS as u64) as usize];
                self.near_len -= slot.len();
                for e in slot.drain(..) {
                    self.active.push(Reverse(e));
                }
            } else if self.far.is_empty() {
                return;
            } else {
                // Wheel dry: jump the cursor straight to the far minimum;
                // the migration pulls the whole new window in.
                let min_slot = slot_of(self.far.peek().expect("non-empty").0.time);
                self.advance_cursor_to(min_slot);
            }
        }
    }

    /// Timestamp of the earliest queued event.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.prepare();
        self.active.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest queued event.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        self.prepare();
        self.active.pop().map(|Reverse(e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ps: u64, seq: u64) -> Entry<u64> {
        Entry {
            time: Time::from_ps(ps),
            seq,
            item: seq,
        }
    }

    fn drain(q: &mut EventQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.as_ps(), e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order_across_levels() {
        let mut q = EventQueue::new();
        // Far (beyond 1 µs), near (two buckets), and active-bucket events,
        // pushed out of order.
        q.push(entry(5_000_000, 0));
        q.push(entry(10, 1));
        q.push(entry(SLOT_PS * 3 + 5, 2));
        q.push(entry(10, 3));
        q.push(entry(SLOT_PS * 200, 4));
        q.push(entry(5_000_000, 5));
        assert_eq!(q.len(), 6);
        assert_eq!(
            drain(&mut q),
            vec![
                (10, 1),
                (10, 3),
                (SLOT_PS * 3 + 5, 2),
                (SLOT_PS * 200, 4),
                (5_000_000, 0),
                (5_000_000, 5),
            ]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_events_migrate_in_batches() {
        let mut q = EventQueue::new();
        // All far from slot 0; spread over several horizons.
        for i in 0..10u64 {
            q.push(entry(2_000_000 * (i + 1), i));
        }
        let out = drain(&mut q);
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn pushes_into_active_bucket_while_draining() {
        let mut q = EventQueue::new();
        q.push(entry(SLOT_PS * 50, 0));
        assert_eq!(q.pop().unwrap().seq, 0);
        // Cursor now sits at slot 50; same-bucket and same-time pushes
        // must still pop in order.
        q.push(entry(SLOT_PS * 50 + 7, 1));
        q.push(entry(SLOT_PS * 50 + 3, 2));
        q.push(entry(SLOT_PS * 50 + 7, 3));
        assert_eq!(
            drain(&mut q),
            vec![
                (SLOT_PS * 50 + 3, 2),
                (SLOT_PS * 50 + 7, 1),
                (SLOT_PS * 50 + 7, 3)
            ]
        );
    }

    #[test]
    fn wheel_wraps_without_mixing_buckets() {
        let mut q = EventQueue::new();
        // Interleave pops and pushes so the cursor laps the ring several
        // times; order must stay exact.
        let mut expected = Vec::new();
        let mut seq = 0u64;
        let mut base = 0u64;
        for round in 0..8u64 {
            for k in 0..40u64 {
                let t = base + k * SLOT_PS * 11 + (k % 3);
                q.push(entry(t, seq));
                expected.push((t, seq));
                seq += 1;
            }
            // Pop half of this round's events before pushing the next.
            for _ in 0..20 {
                q.pop();
            }
            base += 40 * SLOT_PS * 11 / 2;
            let _ = round;
        }
        // Drain the rest; full pop sequence must equal the sorted pushes.
        let mut q2 = EventQueue::new();
        for &(t, s) in &expected {
            q2.push(entry(t, s));
        }
        expected.sort_by_key(|&(t, s)| (t, s));
        assert_eq!(drain(&mut q2), expected);
    }

    #[test]
    fn far_event_entering_the_window_is_not_overtaken() {
        // Regression: an event beyond the wheel horizon must migrate into
        // the wheel as the cursor (driven by dense near traffic) catches
        // up with its slot — not wait until the wheel runs dry.
        let mut q = EventQueue::new();
        let far_t = SLOT_PS * (WHEEL_SLOTS as u64 + 50) + 500;
        q.push(entry(far_t, 0));
        let mut popped = Vec::new();
        for k in 0..WHEEL_SLOTS as u64 + 100 {
            q.push(entry(k * SLOT_PS, k + 1));
            popped.push(q.pop().unwrap().time.as_ps());
        }
        while let Some(e) = q.pop() {
            popped.push(e.time.as_ps());
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted, "global order preserved across migration");
        assert!(popped.contains(&far_t));
    }

    #[test]
    fn time_max_is_representable() {
        let mut q = EventQueue::new();
        q.push(entry(u64::MAX, 0));
        q.push(entry(0, 1));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().time, Time::MAX);
    }
}
