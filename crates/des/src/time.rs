//! Simulation time types.
//!
//! The kernel measures time in integer **picoseconds**. A picosecond grid is
//! fine enough to represent every clock in the modeled system exactly enough
//! for our purposes (a 15 Gbps lane moves one bit in ~66.7 ps; the 187.5 MHz
//! FPGA user clock is 5333.3 ps, rounded to 5333 ps — a 0.006% error that is
//! irrelevant next to the paper's measurement noise) while keeping all
//! arithmetic in exact `u64` math so simulations are bit-for-bit
//! reproducible.
//!
//! Two newtypes keep absolute and relative time from being confused
//! (C-NEWTYPE): [`Time`] is an absolute instant since simulation start and
//! [`Delay`] is a span. `Time + Delay = Time`, `Time - Time = Delay`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation instant, in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use hmc_des::{Delay, Time};
///
/// let t = Time::ZERO + Delay::from_ns(5);
/// assert_eq!(t.as_ps(), 5_000);
/// assert_eq!(t - Time::ZERO, Delay::from_ns(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulation time, in picoseconds.
///
/// # Examples
///
/// ```
/// use hmc_des::Delay;
///
/// let beat = Delay::from_ns_f64(3.2);
/// assert_eq!(beat.as_ps(), 3_200);
/// assert_eq!((beat * 4u32).as_ns_f64(), 12.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delay(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant at `ps` picoseconds after the epoch.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates an instant at `ns` nanoseconds after the epoch.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Creates an instant at `us` microseconds after the epoch.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Creates an instant at `ms` milliseconds after the epoch.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// This instant as picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant as (possibly fractional) nanoseconds since the epoch.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant as (possibly fractional) microseconds since the epoch.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant as (possibly fractional) seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating addition; sticks at [`Time::MAX`] instead of wrapping.
    #[inline]
    pub fn saturating_add(self, d: Delay) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// The span from `earlier` to `self`, or [`Delay::ZERO`] if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Delay {
        Delay(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Delay {
    /// A zero-length span.
    pub const ZERO: Delay = Delay(0);
    /// The longest representable span; used as an "infinite" sentinel.
    pub const MAX: Delay = Delay(u64::MAX);

    /// Creates a span of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Delay {
        Delay(ps)
    }

    /// Creates a span of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Delay {
        Delay(ns * 1_000)
    }

    /// Creates a span of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Delay {
        Delay(us * 1_000_000)
    }

    /// Creates a span from fractional nanoseconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Delay {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "delay must be finite and non-negative"
        );
        Delay((ns * 1e3).round() as u64)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[inline]
    pub fn from_us_f64(us: f64) -> Delay {
        assert!(
            us.is_finite() && us >= 0.0,
            "delay must be finite and non-negative"
        );
        Delay((us * 1e6).round() as u64)
    }

    /// This span in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span in (possibly fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `true` if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition; sticks at [`Delay::MAX`] instead of wrapping.
    #[inline]
    pub fn saturating_add(self, other: Delay) -> Delay {
        Delay(self.0.saturating_add(other.0))
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: Delay) -> Delay {
        Delay(self.0.max(other.0))
    }

    /// The shorter of two spans.
    #[inline]
    pub fn min(self, other: Delay) -> Delay {
        Delay(self.0.min(other.0))
    }
}

impl Add<Delay> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Delay) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Delay> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Delay) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Delay;
    /// The span from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Delay {
        Delay(self.0 - rhs.0)
    }
}

impl Add<Delay> for Delay {
    type Output = Delay;
    #[inline]
    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0 + rhs.0)
    }
}

impl AddAssign<Delay> for Delay {
    #[inline]
    fn add_assign(&mut self, rhs: Delay) {
        self.0 += rhs.0;
    }
}

impl Sub<Delay> for Delay {
    type Output = Delay;
    #[inline]
    fn sub(self, rhs: Delay) -> Delay {
        Delay(self.0 - rhs.0)
    }
}

impl SubAssign<Delay> for Delay {
    #[inline]
    fn sub_assign(&mut self, rhs: Delay) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Delay {
    type Output = Delay;
    #[inline]
    fn mul(self, rhs: u64) -> Delay {
        Delay(self.0 * rhs)
    }
}

impl Mul<u32> for Delay {
    type Output = Delay;
    #[inline]
    fn mul(self, rhs: u32) -> Delay {
        Delay(self.0 * u64::from(rhs))
    }
}

impl Div<u64> for Delay {
    type Output = Delay;
    #[inline]
    fn div(self, rhs: u64) -> Delay {
        Delay(self.0 / rhs)
    }
}

impl Sum for Delay {
    fn sum<I: Iterator<Item = Delay>>(iter: I) -> Delay {
        iter.fold(Delay::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Time::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Delay::from_ns(7).as_ps(), 7_000);
        assert_eq!(Delay::from_us(3).as_ps(), 3_000_000);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(Delay::from_ns_f64(3.2).as_ps(), 3_200);
        assert_eq!(Delay::from_ns_f64(1.0666666).as_ps(), 1_067);
        assert_eq!(Delay::from_us_f64(0.5).as_ps(), 500_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let _ = Delay::from_ns_f64(-1.0);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = Time::from_ns(100);
        let d = Delay::from_ns(50);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_ns_f64(), 150.0);
    }

    #[test]
    fn delay_scalar_ops() {
        let d = Delay::from_ps(100);
        assert_eq!((d * 4u64).as_ps(), 400);
        assert_eq!((d / 2).as_ps(), 50);
        assert_eq!((d + d - d).as_ps(), 100);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(Time::MAX.saturating_add(Delay::from_ns(1)), Time::MAX);
        assert_eq!(Time::ZERO.saturating_since(Time::from_ns(5)), Delay::ZERO);
        assert_eq!(Delay::MAX.saturating_add(Delay::from_ns(1)), Delay::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Delay::from_ns(1).max(Delay::from_ns(2)), Delay::from_ns(2));
    }

    #[test]
    fn sum_of_delays() {
        let total: Delay = [1u64, 2, 3].iter().map(|&n| Delay::from_ns(n)).sum();
        assert_eq!(total, Delay::from_ns(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Time::from_ns(3)).is_empty());
        assert!(!format!("{}", Delay::from_ps(1)).is_empty());
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(Time::from_ms(1_000).as_secs_f64(), 1.0);
        assert_eq!(Delay::from_us(1_000_000).as_secs_f64(), 1.0);
    }
}
