//! A process-wide core budget shared by every layer that spawns worker
//! threads.
//!
//! Two layers of the workspace parallelize: experiment sweeps fan
//! independent simulations out over `--threads` workers, and a single
//! multi-cube simulation fans its engine domains out over `--domains`
//! workers. Before this module each layer sized itself against the
//! machine independently, so `--threads 8 --domains 4` oversubscribed
//! 8 × 4 threads onto 8 cores. Now both layers draw from one
//! [`CoreBudget`]:
//!
//! - A sweep *demands* its explicitly requested width (the user asked
//!   for it), debiting the budget — possibly to zero.
//! - A domain scheduler *leases* extra workers up to whatever is left,
//!   and multiplexes several domains onto one thread when the grant
//!   falls short. `--threads 8 --domains 4` therefore runs 8 threads
//!   total, each simulating all 4 of its job's domains itself.
//! - A sweep worker that finds the item queue empty parks: it returns
//!   its core to the budget *before* the sweep joins, so late-running
//!   jobs' domain leases can pick the core up — the work-stealing
//!   handoff between the two layers.
//!
//! The budget only shapes *scheduling*; results are identical whatever
//! it grants (sweeps are thread-count-invariant, domain runs are
//! byte-identical at any multiplexing). [`PoolStats`] counters
//! (steals/parks) are therefore telemetry, not part of any
//! deterministic signature.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The shared budget: how many cores are still unclaimed by workers.
#[derive(Debug)]
struct CoreBudget {
    /// Total cores the budget was initialized with.
    total: usize,
    /// Cores not currently claimed by any lease.
    free: AtomicUsize,
}

/// Cumulative pool counters since process start (or the last
/// [`reset_stats`] in a bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Work items a sweep worker claimed beyond its first — jobs pulled
    /// from the shared pile rather than handed out one-per-worker.
    pub steals: u64,
    /// Workers that retired their core back into the budget (a sweep
    /// worker draining the queue, or a domain worker finishing its run).
    pub parks: u64,
}

static STEALS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static BUDGET: OnceLock<CoreBudget> = OnceLock::new();

fn budget() -> &'static CoreBudget {
    BUDGET.get_or_init(|| {
        let total = std::env::var("HMC_SIM_CORES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1)
            });
        CoreBudget {
            total,
            free: AtomicUsize::new(total),
        }
    })
}

/// Pins the budget to `cores` before first use. Test-only: the budget is
/// process-global, so a test that calls this must run in its own binary
/// (an integration-test file) and call it before any lease.
///
/// Returns `false` if the budget was already initialized (the setting
/// did not take).
#[doc(hidden)]
pub fn pin_budget_for_tests(cores: usize) -> bool {
    BUDGET
        .set(CoreBudget {
            total: cores.max(1),
            free: AtomicUsize::new(cores.max(1)),
        })
        .is_ok()
}

/// Total cores in the budget (the machine's, unless overridden by the
/// `HMC_SIM_CORES` environment variable or a test pin).
pub fn budget_total() -> usize {
    budget().total
}

/// A claim on worker cores. Dropping the lease returns every core still
/// held; [`Lease::park_one`] returns cores early, one worker at a time.
#[derive(Debug)]
pub struct Lease {
    held: AtomicUsize,
}

impl Lease {
    /// Workers this lease currently holds.
    pub fn granted(&self) -> usize {
        self.held.load(Ordering::Relaxed)
    }

    /// Returns one core to the budget ahead of the drop — called by a
    /// worker that ran out of work, so another layer's lease can claim
    /// the core while this lease's siblings are still running. A no-op
    /// once the lease holds nothing (a demanded sweep may run more
    /// workers than the budget ever granted; the excess has no core to
    /// give back).
    pub fn park_one(&self) {
        let mut held = self.held.load(Ordering::Acquire);
        while held > 0 {
            match self.held.compare_exchange_weak(
                held,
                held - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    budget().free.fetch_add(1, Ordering::AcqRel);
                    PARKS.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(seen) => held = seen,
            }
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let held = self.held.swap(0, Ordering::AcqRel);
        if held > 0 {
            budget().free.fetch_add(held, Ordering::AcqRel);
        }
    }
}

/// Claims up to `want` cores, granting only what the budget has free
/// (possibly zero). The polite form — used by domain schedulers, which
/// can always multiplex domains onto fewer threads.
pub fn lease(want: usize) -> Lease {
    let b = budget();
    let mut free = b.free.load(Ordering::Acquire);
    loop {
        let take = free.min(want);
        if take == 0 {
            break Lease {
                held: AtomicUsize::new(0),
            };
        }
        match b
            .free
            .compare_exchange_weak(free, free - take, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                break Lease {
                    held: AtomicUsize::new(take),
                }
            }
            Err(seen) => free = seen,
        }
    }
}

/// Claims exactly `want` cores, debiting the budget even past zero
/// (saturating — free cores never underflow). The demanding form — used
/// for explicit `--threads N` requests, which are honored verbatim; the
/// debit makes every *polite* lease underneath see an exhausted budget
/// instead of stacking more threads on top.
pub fn demand(want: usize) -> Lease {
    let b = budget();
    let mut free = b.free.load(Ordering::Acquire);
    loop {
        let take = free.min(want);
        match b
            .free
            .compare_exchange_weak(free, free - take, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                break Lease {
                    // The lease holds what it debited; workers beyond the
                    // grant were never the budget's to give back.
                    held: AtomicUsize::new(take),
                };
            }
            Err(seen) => free = seen,
        }
    }
}

/// Records one stolen work item (a sweep worker's claim beyond its
/// first).
pub fn note_steal() {
    STEALS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the cumulative pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        steals: STEALS.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The budget is process-global and these tests assert exact grants,
    // so they serialize on a lock (the harness runs tests on parallel
    // threads) and each restores every core it takes.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn lease_grants_at_most_free_and_returns_on_drop() {
        let _serial = SERIAL.lock().unwrap();
        let total = budget_total();
        let all = lease(total + 100);
        assert!(all.granted() <= total);
        let none = lease(1);
        assert_eq!(none.granted(), 0, "budget exhausted while `all` held");
        drop(none);
        drop(all);
        let again = lease(1);
        assert_eq!(again.granted(), 1.min(total));
    }

    #[test]
    fn demand_debits_but_never_underflows() {
        let _serial = SERIAL.lock().unwrap();
        let total = budget_total();
        let big = demand(total + 8);
        assert_eq!(big.granted(), total, "holds only what it debited");
        let starved = lease(1);
        assert_eq!(starved.granted(), 0);
        drop(starved);
        drop(big);
        assert_eq!(lease(total).granted(), total);
    }

    #[test]
    fn park_one_frees_a_core_early() {
        let _serial = SERIAL.lock().unwrap();
        let total = budget_total();
        let all = demand(total);
        let before = stats().parks;
        all.park_one();
        assert_eq!(all.granted(), total - 1);
        assert!(stats().parks > before);
        let handoff = lease(1);
        assert_eq!(handoff.granted(), 1, "parked core is claimable");
        drop(handoff);
        drop(all);
    }
}
