//! The shared clocked-component protocol: sans-event cores report the next
//! instant they need service, and their engine-side wrappers keep exactly
//! one timer armed at it.
//!
//! Every timing model in this workspace is written *sans-event*: a plain
//! state machine (a crossbar, a link serializer, a host controller) that is
//! advanced by calling a `service`-style method whenever something changed,
//! plus a `next_wake(now) -> Option<Time>` query reporting the earliest
//! future instant at which the core could make progress *on its own* —
//! an output port freeing, a pipeline stage's latency elapsing, the next
//! FPGA cycle with work pending. Progress that depends on an external
//! stimulus (a credit return, a packet arrival) is *not* reported: the
//! stimulus itself is a message that triggers service.
//!
//! The [`Clocked`] trait names that query so new components follow the same
//! protocol, and [`AutoWake`] is the engine-side half: a one-slot timer
//! that a [`Component`](crate::Component) wrapper re-arms from `next_wake`
//! after every message, cancelling stale deadlines instead of letting them
//! fire as no-ops. Together they guarantee **no component ticks while
//! idle**: a core whose `next_wake` is `None` consumes zero engine events
//! until a message arrives for it.
//!
//! # Writing a new clocked component
//!
//! ```
//! use hmc_des::{AutoWake, Clocked, Component, Ctx, Delay, Engine, Time, WakeToken};
//!
//! /// A sans-event core: emits one unit of work every `period`, at most
//! /// `budget` times.
//! struct Core {
//!     period: Delay,
//!     budget: u32,
//!     done: u32,
//!     next_due: Time,
//! }
//!
//! impl Core {
//!     /// Advance to `now`: perform everything due.
//!     fn service(&mut self, now: Time) {
//!         while self.done < self.budget && self.next_due <= now {
//!             self.done += 1;
//!             self.next_due = self.next_due + self.period;
//!         }
//!     }
//! }
//!
//! impl Clocked for Core {
//!     fn next_wake(&self, _now: Time) -> Option<Time> {
//!         (self.done < self.budget).then_some(self.next_due)
//!     }
//! }
//!
//! /// The engine-side wrapper: service on every stimulus, then re-arm.
//! struct CoreComp {
//!     core: Core,
//!     wake: AutoWake,
//! }
//!
//! impl Component<()> for CoreComp {
//!     fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
//!         self.core.service(ctx.now());
//!         let at = self.core.next_wake(ctx.now());
//!         self.wake.set(ctx, at);
//!     }
//!
//!     fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, ()>) {
//!         if self.wake.fired(token) {
//!             self.core.service(ctx.now());
//!             let at = self.core.next_wake(ctx.now());
//!             self.wake.set(ctx, at);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let id = engine.add_component(Box::new(CoreComp {
//!     core: Core {
//!         period: Delay::from_ns(10),
//!         budget: 5,
//!         done: 0,
//!         next_due: Time::ZERO,
//!     },
//!     wake: AutoWake::new(),
//! }));
//! engine.schedule(Time::ZERO, id, ());
//! engine.run_to_quiescence();
//! // Exactly one kick + 4 timer fires; the idle core consumes nothing more.
//! assert_eq!(engine.now(), Time::from_ns(40));
//! assert_eq!(engine.component::<CoreComp>(id).unwrap().core.done, 5);
//! ```

use crate::engine::{Ctx, WakeToken};
use crate::time::Time;

/// A sans-event core that can report the next instant it needs service.
///
/// `next_wake(now)` returns the earliest **future or current** instant at
/// which the core could make progress without any external stimulus, or
/// `None` if only an external stimulus can unblock it. Implementations
/// must be monotone in the obvious sense: servicing the core at or after
/// the reported instant must make the progress the report promised.
pub trait Clocked {
    /// The earliest instant service could progress on its own, if any.
    fn next_wake(&self, now: Time) -> Option<Time>;
}

/// A one-slot self-timer for a [`Component`](crate::Component): keeps at
/// most one engine timer armed, re-arming or cancelling as the target
/// deadline moves.
///
/// See the [module docs](self) for the full protocol and a worked example.
#[derive(Debug, Default)]
pub struct AutoWake {
    armed: Option<(Time, WakeToken)>,
}

impl AutoWake {
    /// A disarmed timer.
    pub const fn new() -> AutoWake {
        AutoWake { armed: None }
    }

    /// The armed deadline, if any.
    #[inline]
    pub fn armed_at(&self) -> Option<Time> {
        self.armed.map(|(t, _)| t)
    }

    /// Moves the timer to `deadline`: arms, re-arms, or cancels so that
    /// afterwards exactly the requested deadline (or nothing) is pending.
    /// A no-op when the timer is already armed at `deadline`.
    pub fn set<M>(&mut self, ctx: &mut Ctx<'_, M>, deadline: Option<Time>) {
        match (self.armed, deadline) {
            (Some((t, _)), Some(want)) if t == want => {}
            (Some((_, token)), Some(want)) => {
                ctx.cancel_wake(token);
                self.armed = Some((want, ctx.wake_at(want)));
            }
            (Some((_, token)), None) => {
                ctx.cancel_wake(token);
                self.armed = None;
            }
            (None, Some(want)) => {
                self.armed = Some((want, ctx.wake_at(want)));
            }
            (None, None) => {}
        }
    }

    /// Reports whether `token` is this timer's armed wakeup, disarming it
    /// if so. Call from [`Component::on_wake`](crate::Component::on_wake);
    /// a `false` return is a stale fire that should be ignored.
    pub fn fired(&mut self, token: WakeToken) -> bool {
        if self.armed.is_some_and(|(_, t)| t == token) {
            self.armed = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Component, Engine};

    /// Counts wake fires; `deadlines` is a script of re-arm targets applied
    /// one per delivery (message or accepted wake).
    struct Scripted {
        wake: AutoWake,
        script: Vec<Option<Time>>,
        fires: Vec<u64>,
    }

    impl Scripted {
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) {
            let next = if self.script.is_empty() {
                None
            } else {
                self.script.remove(0)
            };
            self.wake.set(ctx, next);
        }
    }

    impl Component<()> for Scripted {
        fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
            self.step(ctx);
        }
        fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, ()>) {
            if self.wake.fired(token) {
                self.fires.push(ctx.now().as_ps());
                self.step(ctx);
            }
        }
    }

    fn run(script: Vec<Option<Time>>) -> (Vec<u64>, crate::engine::EngineStats) {
        let mut e: Engine<()> = Engine::new();
        let id = e.add_component(Box::new(Scripted {
            wake: AutoWake::new(),
            script,
            fires: Vec::new(),
        }));
        e.schedule(Time::ZERO, id, ());
        e.run_to_quiescence();
        let fires = e.component::<Scripted>(id).unwrap().fires.clone();
        (fires, e.stats())
    }

    #[test]
    fn arms_and_fires_once_per_deadline() {
        let (fires, _) = run(vec![Some(Time::from_ns(5)), Some(Time::from_ns(9)), None]);
        assert_eq!(fires, vec![5_000, 9_000]);
    }

    #[test]
    fn rearm_to_same_deadline_is_single_fire() {
        // Two messages both targeting 5 ns: one timer, one fire.
        let mut e: Engine<()> = Engine::new();
        let id = e.add_component(Box::new(Scripted {
            wake: AutoWake::new(),
            script: vec![Some(Time::from_ns(5)), Some(Time::from_ns(5)), None],
            fires: Vec::new(),
        }));
        e.schedule(Time::ZERO, id, ());
        e.schedule(Time::from_ns(1), id, ());
        e.run_to_quiescence();
        assert_eq!(e.component::<Scripted>(id).unwrap().fires, vec![5_000]);
        assert_eq!(e.stats().wake_cancels, 0);
    }

    #[test]
    fn moving_the_deadline_cancels_the_stale_timer() {
        // Second message moves the deadline earlier; the stale timer is
        // cancelled, not fired.
        let mut e: Engine<()> = Engine::new();
        let id = e.add_component(Box::new(Scripted {
            wake: AutoWake::new(),
            script: vec![Some(Time::from_ns(50)), Some(Time::from_ns(5)), None],
            fires: Vec::new(),
        }));
        e.schedule(Time::ZERO, id, ());
        e.schedule(Time::from_ns(1), id, ());
        e.run_to_quiescence();
        assert_eq!(e.component::<Scripted>(id).unwrap().fires, vec![5_000]);
        assert_eq!(e.stats().wake_cancels, 1);
        assert_eq!(e.now(), Time::from_ns(5), "cancelled timer moves no clock");
    }

    #[test]
    fn disarm_leaves_nothing_pending() {
        let (fires, stats) = run(vec![Some(Time::from_ns(5)), None]);
        assert_eq!(fires, vec![5_000]);
        assert_eq!(stats.pending, 0);
    }
}
