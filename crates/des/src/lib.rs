//! # hmc-des
//!
//! A small, deterministic, single-threaded discrete-event simulation kernel.
//!
//! This crate is the substrate that every timing model in the `hmc-noc-sim`
//! workspace runs on. It provides:
//!
//! - [`Time`] / [`Delay`]: picosecond-resolution instants and spans,
//! - [`Engine`]: an event queue ordered by `(timestamp, insertion order)`,
//!   implemented as a two-level scheduler — a bucketed near-horizon timer
//!   wheel in front of a binary heap for far-future events,
//! - [`Component`]: the trait simulated hardware blocks implement,
//! - first-class timers: [`Ctx::wake_at`] / [`Ctx::cancel_wake`] with a
//!   [`WakeToken`], so a component sleeps while idle and re-arms or
//!   cancels its own wakeup instead of ticking every cycle,
//! - the shared clocked-component protocol ([`Clocked`] + [`AutoWake`]):
//!   sans-event cores report their next interesting instant and their
//!   engine wrappers keep exactly one timer armed at it.
//!
//! ## Determinism
//!
//! The engine pops events in timestamp order and breaks ties by insertion
//! order (FIFO); timer wakeups share the same ordering domain as messages.
//! There is no other source of ordering, no wall-clock input and no
//! threading, so a simulation driven only by seeded randomness is
//! bit-for-bit reproducible. The integration suite asserts this property
//! for the full HMC system model, and the two-level scheduler is
//! property-tested to order events exactly as a single global heap would.
//!
//! ## Example
//!
//! ```
//! use hmc_des::{Component, Ctx, Delay, Engine, Time};
//!
//! /// A token that bounces between two pongers until its hop budget is spent.
//! struct Ponger {
//!     peer: Option<hmc_des::ComponentId>,
//!     bounces: u32,
//! }
//!
//! impl Component<u32> for Ponger {
//!     fn on_message(&mut self, hops_left: u32, ctx: &mut Ctx<'_, u32>) {
//!         self.bounces += 1;
//!         if hops_left > 0 {
//!             let peer = self.peer.expect("wired");
//!             ctx.send(Delay::from_ns(10), peer, hops_left - 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let a = engine.add_component(Box::new(Ponger { peer: None, bounces: 0 }));
//! let b = engine.add_component(Box::new(Ponger { peer: None, bounces: 0 }));
//! engine.component_mut::<Ponger>(a).unwrap().peer = Some(b);
//! engine.component_mut::<Ponger>(b).unwrap().peer = Some(a);
//! engine.schedule(Time::ZERO, a, 5);
//! engine.run_to_quiescence();
//! assert_eq!(engine.now(), Time::from_ns(50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod inline;
pub mod pool;
mod time;
pub mod wake;
pub mod wheel;

pub use engine::{
    AsAnyComponent, Component, ComponentId, Ctx, Engine, EngineStats, WakeToken, KEYED_EVENT_BIT,
};
pub use inline::InlineVec;
pub use time::{Delay, Time};
pub use wake::{AutoWake, Clocked};
pub use wheel::EventQueue;
