//! # hmc-des
//!
//! A small, deterministic, single-threaded discrete-event simulation kernel.
//!
//! This crate is the substrate that every timing model in the `hmc-noc-sim`
//! workspace runs on. It provides:
//!
//! - [`Time`] / [`Delay`]: picosecond-resolution instants and spans,
//! - [`Engine`]: a message queue ordered by `(timestamp, insertion order)`,
//! - [`Component`]: the trait simulated hardware blocks implement.
//!
//! ## Determinism
//!
//! The engine pops messages in timestamp order and breaks ties by insertion
//! order (FIFO). There is no other source of ordering, no wall-clock input
//! and no threading, so a simulation driven only by seeded randomness is
//! bit-for-bit reproducible. The integration suite asserts this property for
//! the full HMC system model.
//!
//! ## Example
//!
//! ```
//! use hmc_des::{Component, Ctx, Delay, Engine, Time};
//!
//! /// A token that bounces between two pongers until its hop budget is spent.
//! struct Ponger {
//!     peer: Option<hmc_des::ComponentId>,
//!     bounces: u32,
//! }
//!
//! impl Component<u32> for Ponger {
//!     fn on_message(&mut self, hops_left: u32, ctx: &mut Ctx<'_, u32>) {
//!         self.bounces += 1;
//!         if hops_left > 0 {
//!             let peer = self.peer.expect("wired");
//!             ctx.send(Delay::from_ns(10), peer, hops_left - 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let a = engine.add_component(Box::new(Ponger { peer: None, bounces: 0 }));
//! let b = engine.add_component(Box::new(Ponger { peer: None, bounces: 0 }));
//! engine.component_mut::<Ponger>(a).unwrap().peer = Some(b);
//! engine.component_mut::<Ponger>(b).unwrap().peer = Some(a);
//! engine.schedule(Time::ZERO, a, 5);
//! engine.run_to_quiescence();
//! assert_eq!(engine.now(), Time::from_ns(50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod time;

pub use engine::{AsAnyComponent, Component, ComponentId, Ctx, Engine, EngineStats};
pub use time::{Delay, Time};
