//! The low-order-interleaved address map of Figure 3.

use core::fmt;

use hmc_packet::Address;

use crate::geometry::{BankId, Geometry, QuadrantId, VaultId};

/// The device's *maximum block size* configuration, which fixes the address
/// map (Figure 3 shows the 128 B configuration). Sequential blocks
/// interleave first across the vaults of a quadrant, then across quadrants,
/// then across banks within a vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockSize {
    /// 16 B blocks.
    B16,
    /// 32 B blocks.
    B32,
    /// 64 B blocks.
    B64,
    /// 128 B blocks — the configuration the paper (and Figure 3) uses.
    B128,
}

impl BlockSize {
    /// Block size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            BlockSize::B16 => 16,
            BlockSize::B32 => 32,
            BlockSize::B64 => 64,
            BlockSize::B128 => 128,
        }
    }

    /// Number of low address bits covered by the in-block offset.
    #[inline]
    pub const fn offset_bits(self) -> u32 {
        self.bytes().trailing_zeros()
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B-block", self.bytes())
    }
}

/// Where an address lands inside the cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// The owning vault.
    pub vault: VaultId,
    /// The owning quadrant (derived from the vault, carried for convenience).
    pub quadrant: QuadrantId,
    /// The bank within the vault.
    pub bank: BankId,
    /// The block row: all address bits above the bank field. Two addresses
    /// with equal `(vault, bank, block_row)` share a DRAM row set.
    pub block_row: u64,
    /// Byte offset within the block.
    pub offset: u64,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{} row {} +{}",
            self.quadrant, self.vault, self.bank, self.block_row, self.offset
        )
    }
}

/// The bit-field layout of Figure 3 for a given geometry and block size.
///
/// Field order, least-significant first:
///
/// ```text
/// | offset | vault-in-quadrant | quadrant | bank | block row | ignored |
/// ```
///
/// # Examples
///
/// ```
/// use hmc_mapping::{AddressMap, BlockSize, Geometry};
/// use hmc_packet::Address;
///
/// let map = AddressMap::new(Geometry::hmc_gen2(), BlockSize::B128);
/// // Consecutive 128 B blocks land in consecutive vaults.
/// let a = map.decode(Address::new(0));
/// let b = map.decode(Address::new(128));
/// assert_eq!(a.vault.0, 0);
/// assert_eq!(b.vault.0, 1);
/// assert_eq!(a.bank, b.bank);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    geometry: Geometry,
    block: BlockSize,
}

impl AddressMap {
    /// Creates the map for `geometry` at maximum block size `block`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`Geometry::validate`].
    pub fn new(geometry: Geometry, block: BlockSize) -> AddressMap {
        geometry.validate().expect("valid geometry");
        AddressMap { geometry, block }
    }

    /// The paper's configuration: 4 GB HMC 1.1 with 128 B max block size.
    pub fn hmc_gen2_default() -> AddressMap {
        AddressMap::new(Geometry::hmc_gen2(), BlockSize::B128)
    }

    /// The geometry this map addresses.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The configured maximum block size.
    #[inline]
    pub fn block_size(&self) -> BlockSize {
        self.block
    }

    /// Lowest bit of the vault field (== number of offset bits).
    #[inline]
    pub fn vault_shift(&self) -> u32 {
        self.block.offset_bits()
    }

    /// Width of the whole vault field (vault-in-quadrant + quadrant bits).
    #[inline]
    pub fn vault_bits(&self) -> u32 {
        u32::from(self.geometry.vaults).trailing_zeros()
    }

    /// Width of the vault-in-quadrant subfield.
    #[inline]
    pub fn vault_in_quadrant_bits(&self) -> u32 {
        u32::from(self.geometry.vaults_per_quadrant()).trailing_zeros()
    }

    /// Lowest bit of the bank field.
    #[inline]
    pub fn bank_shift(&self) -> u32 {
        self.vault_shift() + self.vault_bits()
    }

    /// Width of the bank field.
    #[inline]
    pub fn bank_bits(&self) -> u32 {
        u32::from(self.geometry.banks_per_vault).trailing_zeros()
    }

    /// Lowest bit of the block-row field.
    #[inline]
    pub fn row_shift(&self) -> u32 {
        self.bank_shift() + self.bank_bits()
    }

    /// Number of addressable bits (bits above this are ignored, as the two
    /// high-order header bits are on a 4 GB cube).
    #[inline]
    pub fn capacity_bits(&self) -> u32 {
        63 - self.geometry.total_bytes().leading_zeros()
    }

    /// Splits an address into its cube location.
    pub fn decode(&self, addr: Address) -> Location {
        let a = addr.raw() & (self.geometry.total_bytes() - 1);
        let offset = a & (self.block.bytes() - 1);
        let vault = (a >> self.vault_shift()) & (u64::from(self.geometry.vaults) - 1);
        let bank = (a >> self.bank_shift()) & (u64::from(self.geometry.banks_per_vault) - 1);
        let block_row = a >> self.row_shift();
        let vault = VaultId(vault as u8);
        Location {
            vault,
            quadrant: self.geometry.quadrant_of(vault),
            bank: BankId(bank as u8),
            block_row,
            offset,
        }
    }

    /// Rebuilds the address for a location. Inverse of [`AddressMap::decode`]
    /// for in-range locations.
    ///
    /// # Panics
    ///
    /// Panics if the vault, bank, offset or block row exceed the geometry.
    pub fn encode(&self, vault: VaultId, bank: BankId, block_row: u64, offset: u64) -> Address {
        assert!(vault.0 < self.geometry.vaults, "vault out of range");
        assert!(bank.0 < self.geometry.banks_per_vault, "bank out of range");
        assert!(offset < self.block.bytes(), "offset exceeds block size");
        let rows = self.geometry.total_bytes() >> self.row_shift();
        assert!(block_row < rows, "block row exceeds capacity");
        let a = (block_row << self.row_shift())
            | (u64::from(bank.0) << self.bank_shift())
            | (u64::from(vault.0) << self.vault_shift())
            | offset;
        Address::new(a)
    }

    /// The number of distinct block rows per (vault, bank) pair.
    pub fn rows_per_bank(&self) -> u64 {
        self.geometry.total_bytes() >> self.row_shift()
    }

    /// Decodes the footprint of one OS page: which (vault, bank) pairs the
    /// page's blocks land in, in block order.
    ///
    /// Section II-A: with 128 B blocks a 4 KB page maps to two banks over
    /// all 16 vaults, so serial accesses exploit bank-level parallelism.
    pub fn page_footprint(&self, page_base: Address, page_bytes: u64) -> Vec<Location> {
        let base = page_base.align_down(page_bytes).raw();
        let blocks = page_bytes / self.block.bytes();
        (0..blocks)
            .map(|i| self.decode(Address::new(base + i * self.block.bytes())))
            .collect()
    }
}

impl Default for AddressMap {
    fn default() -> AddressMap {
        AddressMap::hmc_gen2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn map128() -> AddressMap {
        AddressMap::hmc_gen2_default()
    }

    #[test]
    fn figure_3_field_positions_for_128b_blocks() {
        let m = map128();
        assert_eq!(m.vault_shift(), 7);
        assert_eq!(m.vault_bits(), 4);
        assert_eq!(m.vault_in_quadrant_bits(), 2);
        assert_eq!(m.bank_shift(), 11);
        assert_eq!(m.bank_bits(), 4);
        assert_eq!(m.row_shift(), 15);
        assert_eq!(m.capacity_bits(), 32);
    }

    #[test]
    fn sequential_blocks_interleave_vaults_first() {
        let m = map128();
        // Blocks 0..16 hit vaults 0..16 in order, same bank.
        for i in 0..16u64 {
            let loc = m.decode(Address::new(i * 128));
            assert_eq!(loc.vault, VaultId(i as u8));
            assert_eq!(loc.bank, BankId(0));
        }
        // Block 16 wraps to vault 0, bank 1.
        let loc = m.decode(Address::new(16 * 128));
        assert_eq!(loc.vault, VaultId(0));
        assert_eq!(loc.bank, BankId(1));
    }

    #[test]
    fn vault_in_quadrant_is_low_subfield() {
        let m = map128();
        // Vaults 0..4 are quadrant 0; the quadrant field sits above the
        // vault-in-quadrant field.
        for v in 0..16u8 {
            let addr = m.encode(VaultId(v), BankId(0), 0, 0);
            let loc = m.decode(addr);
            assert_eq!(loc.quadrant, QuadrantId(v / 4));
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = map128();
        for v in [0u8, 3, 7, 15] {
            for b in [0u8, 1, 8, 15] {
                for row in [0u64, 1, 1000, m.rows_per_bank() - 1] {
                    for off in [0u64, 1, 127] {
                        let addr = m.encode(VaultId(v), BankId(b), row, off);
                        let loc = m.decode(addr);
                        assert_eq!(loc.vault, VaultId(v));
                        assert_eq!(loc.bank, BankId(b));
                        assert_eq!(loc.block_row, row);
                        assert_eq!(loc.offset, off);
                    }
                }
            }
        }
    }

    #[test]
    fn page_maps_to_two_banks_over_all_16_vaults() {
        // Section II-A's key claim about Figure 3.
        let m = map128();
        let footprint = m.page_footprint(Address::new(0x40_0000), 4096);
        assert_eq!(footprint.len(), 32);
        let vaults: BTreeSet<u8> = footprint.iter().map(|l| l.vault.0).collect();
        let banks: BTreeSet<u8> = footprint.iter().map(|l| l.bank.0).collect();
        assert_eq!(vaults.len(), 16, "page covers all vaults");
        assert_eq!(banks.len(), 2, "page covers exactly two banks");
    }

    #[test]
    fn smaller_block_sizes_shift_fields_down() {
        let m = AddressMap::new(Geometry::hmc_gen2(), BlockSize::B32);
        assert_eq!(m.vault_shift(), 5);
        assert_eq!(m.bank_shift(), 9);
        assert_eq!(m.row_shift(), 13);
        let loc = m.decode(Address::new(32));
        assert_eq!(loc.vault, VaultId(1));
    }

    #[test]
    fn decode_ignores_bits_above_capacity() {
        let m = map128();
        let lo = m.decode(Address::new(0x1234));
        let hi = m.decode(Address::new(0x1234 | (1 << 33)));
        assert_eq!(lo, hi);
    }

    #[test]
    #[should_panic(expected = "bank out of range")]
    fn encode_validates_bank() {
        let m = map128();
        let _ = m.encode(VaultId(0), BankId(16), 0, 0);
    }

    #[test]
    fn rows_per_bank_covers_bank_capacity() {
        let m = map128();
        // 16 MB bank / 128 B block = 2^17 rows of blocks per bank.
        assert_eq!(m.rows_per_bank(), (16 << 20) / 128);
    }
}
