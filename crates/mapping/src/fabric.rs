//! The fabric-global address space: deriving the CUB field from the
//! address.
//!
//! A single HMC request header addresses 34 bits (16 GB) inside one cube;
//! a memory network of up to 64 cubes (the widened 6-bit CUB field —
//! see `DESIGN_CUB64.md`) spans a larger *global* space, and real
//! chained deployments place the cube-select bits inside the
//! physical address so one request stream can exercise every cube
//! (Hadidi et al., "Demystifying the Characteristics of 3D-Stacked
//! Memories", ISPASS 2017). [`FabricAddressMap`] is that bit-field
//! contract: it splits a [`GlobalAddress`] into `(CubeId, Address)` under
//! one of two policies and rejects out-of-range values loudly — the
//! checked boundary that replaces the silent 34-bit wrap of
//! [`Address::new`]. The one deliberate exception: under the
//! *interleaved* policy on a non-power-of-two cube count, cube-field
//! values above the count are *redrawn* (folded modulo the count)
//! instead of rejected, so uniform workloads can use the whole
//! power-of-two window.

use core::fmt;

use hmc_packet::{Address, CubeId, GlobalAddress};

use crate::map::AddressMap;

/// Where the cube-select bits sit inside a global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CubePolicy {
    /// Cube bits above the whole in-cube field: cube `c` owns the
    /// contiguous range `[c·2³⁴, (c+1)·2³⁴)`. A linear walk stays inside
    /// one cube until it exhausts it.
    Blocked,
    /// Cube bits directly above the block offset: consecutive blocks
    /// round-robin the cubes, so any dense footprint spreads across every
    /// cube's vaults (and every request pays the fabric's hop structure).
    Interleaved,
}

impl CubePolicy {
    /// A lowercase label for tables and error messages.
    pub fn label(self) -> &'static str {
        match self {
            CubePolicy::Blocked => "blocked",
            CubePolicy::Interleaved => "interleaved",
        }
    }
}

impl fmt::Display for CubePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from [`FabricAddressMap::split`]: the global address does not
/// map into the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// The derived cube field names a cube the fabric does not have
    /// (blocked policy only — the interleaved policy redraws instead).
    CubeOutOfRange {
        /// The offending address.
        addr: GlobalAddress,
        /// The cube the address named.
        cube: u8,
        /// Cubes actually present.
        cubes: u8,
    },
    /// Bits above the fabric's global capacity are set — under the old
    /// unchecked path these would have wrapped into cube 0.
    AboveCapacity {
        /// The offending address.
        addr: GlobalAddress,
        /// Number of addressable global bits.
        bits: u32,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SplitError::CubeOutOfRange { addr, cube, cubes } => write!(
                f,
                "global address {addr} selects cube{cube}, but the fabric has {cubes} cube(s)"
            ),
            SplitError::AboveCapacity { addr, bits } => write!(
                f,
                "global address {addr} exceeds the fabric's {bits}-bit address space \
                 (it would silently alias into cube 0)"
            ),
        }
    }
}

impl std::error::Error for SplitError {}

/// The bit-field map of a fabric-global address space: how a
/// [`GlobalAddress`] splits into the CUB field and the 34-bit in-cube
/// address, and how the pair joins back.
///
/// Field order under each policy, least-significant first (`b` =
/// `cube_bits()`, 34 = [`Address::BITS`]):
///
/// ```text
/// blocked:      | in-cube address (34) | cube (b) |
/// interleaved:  | block offset | cube (b) | rest of in-cube address |
/// ```
///
/// With one cube both policies degenerate to the identity map (zero cube
/// bits), which is exactly the old static single-cube behavior.
///
/// `split ∘ join` is the identity for every in-range pair, and `split`
/// *rejects* every address that sets bits above the global capacity —
/// the loud replacement for [`Address::new`]'s silent wrap. A cube-field
/// value naming a missing cube is rejected under the blocked policy; the
/// interleaved policy *redraws* it (folds it modulo the cube count) so a
/// non-power-of-two fabric still serves the whole power-of-two window —
/// the fold deterministically double-weights the lowest cubes, which the
/// per-cube completion report makes visible.
///
/// # Examples
///
/// ```
/// use hmc_mapping::{AddressMap, CubePolicy, FabricAddressMap};
/// use hmc_packet::{Address, CubeId};
///
/// let map = AddressMap::hmc_gen2_default();
/// let blocked = FabricAddressMap::new(CubePolicy::Blocked, 4, &map);
/// let (cube, local) = blocked.split((3u64 << 34 | 0x80).into()).unwrap();
/// assert_eq!((cube, local.raw()), (CubeId(3), 0x80));
///
/// // Interleaved: consecutive 128 B blocks round-robin the cubes.
/// let il = FabricAddressMap::new(CubePolicy::Interleaved, 4, &map);
/// let (c0, _) = il.split(0u64.into()).unwrap();
/// let (c1, _) = il.split(128u64.into()).unwrap();
/// assert_eq!((c0, c1), (CubeId(0), CubeId(1)));
///
/// // Out-of-range addresses error instead of aliasing into cube 0.
/// assert!(blocked.split((7u64 << 34).into()).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricAddressMap {
    policy: CubePolicy,
    cubes: u8,
    /// Lowest bit of the cube field.
    cube_shift: u32,
}

impl FabricAddressMap {
    /// Creates the map for `cubes` cubes whose in-cube layout is `map`
    /// (the interleaved policy places the cube bits directly above its
    /// block offset).
    ///
    /// # Panics
    ///
    /// Panics if `cubes` is zero or above 64 (the widened CUB field is
    /// 6 bits — see `DESIGN_CUB64.md`).
    pub fn new(policy: CubePolicy, cubes: u8, map: &AddressMap) -> FabricAddressMap {
        assert!(cubes >= 1, "a fabric needs at least one cube");
        assert!(
            usize::from(cubes) <= CubeId::MAX_CUBES,
            "the 6-bit CUB field addresses at most 64 cubes"
        );
        let cube_shift = match policy {
            CubePolicy::Blocked => Address::BITS,
            CubePolicy::Interleaved => map.block_size().offset_bits(),
        };
        FabricAddressMap {
            policy,
            cubes,
            cube_shift,
        }
    }

    /// The degenerate single-cube map: the identity split every
    /// pre-fabric workload implicitly used.
    pub fn single() -> FabricAddressMap {
        FabricAddressMap {
            policy: CubePolicy::Blocked,
            cubes: 1,
            cube_shift: Address::BITS,
        }
    }

    /// The policy in effect.
    #[inline]
    pub fn policy(&self) -> CubePolicy {
        self.policy
    }

    /// Number of cubes this map addresses.
    #[inline]
    pub fn cube_count(&self) -> u8 {
        self.cubes
    }

    /// Width of the cube field: enough bits for the cube count (zero for
    /// a single cube — the degenerate identity map).
    #[inline]
    pub fn cube_bits(&self) -> u32 {
        u8::BITS - (self.cubes - 1).leading_zeros()
    }

    /// Number of addressable global bits (34 in-cube bits plus the cube
    /// field).
    #[inline]
    pub fn global_bits(&self) -> u32 {
        Address::BITS + self.cube_bits()
    }

    /// `true` if an aligned power-of-two request of `bytes` can target
    /// *every* cube of this map. Under the interleaved policy the cube
    /// bits sit directly above the block offset, so aligning a generated
    /// global address to a request *larger* than the block zeroes part of
    /// the cube field — a silent skew that pins traffic to a subset of
    /// cubes. Generators that align raw global draws must check this.
    #[inline]
    pub fn fits_aligned_requests(&self, bytes: u32) -> bool {
        self.cube_shift >= 63 || u64::from(bytes) <= 1u64 << self.cube_shift
    }

    /// `true` if *every* address of a power-of-two window of
    /// `window_bytes` splits successfully under this map — i.e. the
    /// window stays within the global capacity and every cube-field value
    /// it can produce maps to a real cube. Generators that draw uniformly
    /// from a window must check this at construction: a window that fails
    /// it makes some draws hit [`FabricAddressMap::split`]'s errors
    /// mid-run. Under the interleaved policy every in-capacity window
    /// splits — out-of-range cube-field values are redrawn, not
    /// rejected — so only the blocked policy can fail on a sparse cube
    /// field (non-power-of-two cube count).
    pub fn splits_whole_window(&self, window_bytes: u64) -> bool {
        assert!(
            window_bytes.is_power_of_two(),
            "window must be a power of two"
        );
        let top = window_bytes - 1;
        if self.global_bits() < 64 && top >> self.global_bits() != 0 {
            return false;
        }
        match self.policy {
            // The redraw fold maps every cube-field value in range.
            CubePolicy::Interleaved => true,
            CubePolicy::Blocked => {
                // For a power-of-two window, `top` has every in-window bit
                // set, so this is the largest cube-field value a draw can
                // produce.
                let b = self.cube_bits();
                let field_top = (top >> self.cube_shift.min(63)) & ((1u64 << b) - 1);
                field_top < u64::from(self.cubes)
            }
        }
    }

    /// Splits a global address into its destination cube and in-cube
    /// address — the operation the host performs to stamp the CUB field.
    ///
    /// # Errors
    ///
    /// Returns a [`SplitError`] if the address sets bits above the global
    /// capacity, or (blocked policy only) names a cube the fabric does
    /// not have. Both cases are exactly the values [`Address::new`] used
    /// to wrap silently. Under the interleaved policy an out-of-range
    /// cube field is *redrawn* — folded modulo the cube count — so
    /// non-power-of-two fabrics serve the whole power-of-two window.
    pub fn split(&self, addr: GlobalAddress) -> Result<(CubeId, Address), SplitError> {
        let raw = addr.raw();
        let b = self.cube_bits();
        if raw >> self.global_bits() != 0 {
            return Err(SplitError::AboveCapacity {
                addr,
                bits: self.global_bits(),
            });
        }
        let mut cube = if b == 0 {
            0
        } else {
            ((raw >> self.cube_shift) & ((1u64 << b) - 1)) as u8
        };
        if cube >= self.cubes {
            match self.policy {
                // Deterministic fold: values `cubes..2^b` redraw onto the
                // low cubes (skewing them — visible in per-cube reports).
                CubePolicy::Interleaved => cube %= self.cubes,
                CubePolicy::Blocked => {
                    return Err(SplitError::CubeOutOfRange {
                        addr,
                        cube,
                        cubes: self.cubes,
                    });
                }
            }
        }
        let low = raw & ((1u64 << self.cube_shift) - 1);
        let high = raw >> (self.cube_shift + b);
        let local = Address::try_new((high << self.cube_shift) | low)
            .expect("capacity check bounds the recombined local address to 34 bits");
        Ok((CubeId(cube), local))
    }

    /// Joins a cube and in-cube address back into the global address.
    /// Inverse of [`FabricAddressMap::split`] for in-range pairs.
    ///
    /// # Panics
    ///
    /// Panics if `cube` is outside the fabric.
    pub fn join(&self, cube: CubeId, local: Address) -> GlobalAddress {
        assert!(
            cube.0 < self.cubes,
            "{cube} outside the {}-cube fabric",
            self.cubes
        );
        let raw = local.raw();
        let low = raw & ((1u64 << self.cube_shift) - 1);
        let high = raw >> self.cube_shift;
        let b = self.cube_bits();
        GlobalAddress::new(
            (high << (self.cube_shift + b)) | (u64::from(cube.0) << self.cube_shift) | low,
        )
    }
}

/// How a port's host logic derives the CUB field for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeTargeting {
    /// Every request targets one statically configured cube; the
    /// workload's address is taken as the in-cube address (masked to 34
    /// bits, the HMC header semantics). This is the pre-fabric behavior
    /// and the degenerate single-cube map.
    Fixed(CubeId),
    /// The CUB field is derived from the workload's *global* address by
    /// the map's checked split; out-of-range addresses are a workload
    /// bug and fail loudly instead of aliasing into cube 0.
    Addressed(FabricAddressMap),
}

impl CubeTargeting {
    /// The number of cubes this targeting can reach (1 for fixed).
    pub fn cube_span(&self) -> u8 {
        match self {
            CubeTargeting::Fixed(_) => 1,
            CubeTargeting::Addressed(map) => map.cube_count(),
        }
    }

    /// The statically targeted cube, if this targeting is fixed.
    pub fn fixed_cube(&self) -> Option<CubeId> {
        match *self {
            CubeTargeting::Fixed(cube) => Some(cube),
            CubeTargeting::Addressed(_) => None,
        }
    }

    /// Resolves one workload address to `(cube, in-cube address)`.
    ///
    /// # Errors
    ///
    /// Returns a [`SplitError`] for addressed targeting when the global
    /// address does not map into the fabric. Fixed targeting never fails.
    pub fn resolve(&self, addr: GlobalAddress) -> Result<(CubeId, Address), SplitError> {
        match *self {
            CubeTargeting::Fixed(cube) => Ok((cube, addr.local_unchecked())),
            CubeTargeting::Addressed(map) => map.split(addr),
        }
    }
}

impl Default for CubeTargeting {
    fn default() -> CubeTargeting {
        CubeTargeting::Fixed(CubeId::HOST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::hmc_gen2_default()
    }

    #[test]
    fn blocked_split_reads_high_bits() {
        let m = FabricAddressMap::new(CubePolicy::Blocked, 8, &map());
        assert_eq!(m.cube_bits(), 3);
        assert_eq!(m.global_bits(), 37);
        for cube in 0..8u8 {
            for local in [0u64, 0x80, Address::MASK] {
                let g = GlobalAddress::new((u64::from(cube) << 34) | local);
                let (c, a) = m.split(g).unwrap();
                assert_eq!(c, CubeId(cube));
                assert_eq!(a.raw(), local);
                assert_eq!(m.join(c, a), g, "join inverts split");
            }
        }
    }

    #[test]
    fn interleaved_round_robins_blocks_across_cubes() {
        let m = FabricAddressMap::new(CubePolicy::Interleaved, 4, &map());
        // 128 B blocks: cube bits at [7..9).
        let mut cubes = Vec::new();
        for block in 0..8u64 {
            let (c, local) = m.split(GlobalAddress::new(block * 128)).unwrap();
            cubes.push(c.0);
            // Per-cube, the dense walk advances one block every 4 global
            // blocks.
            assert_eq!(local.raw(), (block / 4) * 128);
        }
        assert_eq!(cubes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn split_join_roundtrip_under_both_policies() {
        for policy in [CubePolicy::Blocked, CubePolicy::Interleaved] {
            for cubes in [1u8, 2, 3, 5, 8, 16, 33, 64] {
                let m = FabricAddressMap::new(policy, cubes, &map());
                for cube in 0..cubes {
                    for local in [0u64, 0x7F, 0x1234_5678, Address::MASK] {
                        let a = Address::new(local);
                        let g = m.join(CubeId(cube), a);
                        assert_eq!(
                            m.split(g).unwrap(),
                            (CubeId(cube), a),
                            "{policy} {cubes} cubes"
                        );
                    }
                }
            }
        }
    }

    /// The regression the issue demands: on a 5-cube fabric, a global
    /// address that names cube 5..7 (or sets higher bits) must *error*,
    /// where the old `Address::new` path silently wrapped it into cube 0.
    #[test]
    fn five_cube_out_of_range_address_errors_instead_of_aliasing() {
        let blocked = FabricAddressMap::new(CubePolicy::Blocked, 5, &map());
        let bad = GlobalAddress::new(6u64 << 34 | 0x80);
        match blocked.split(bad) {
            Err(SplitError::CubeOutOfRange { cube, cubes, .. }) => {
                assert_eq!((cube, cubes), (6, 5));
            }
            other => panic!("expected CubeOutOfRange, got {other:?}"),
        }
        // The trap this replaces: the silent mask lands the address in
        // cube 0's space at offset 0x80.
        assert_eq!(Address::new(bad.raw()).raw(), 0x80);

        // Bits above the 37-bit global capacity are equally loud.
        let way_out = GlobalAddress::new(1u64 << 40);
        assert!(matches!(
            blocked.split(way_out),
            Err(SplitError::AboveCapacity { bits: 37, .. })
        ));

        let msg = blocked.split(bad).unwrap_err().to_string();
        assert!(msg.contains("cube6"), "{msg}");
    }

    /// The non-power-of-two follow-up: on a 5-cube *interleaved* map,
    /// cube-field values 5..7 redraw (fold modulo 5) instead of
    /// rejecting, so the whole 37-bit window is servable.
    #[test]
    fn five_cube_interleaved_redraws_instead_of_rejecting() {
        let il = FabricAddressMap::new(CubePolicy::Interleaved, 5, &map());
        assert_eq!(il.cube_bits(), 3);
        // 128 B blocks: cube bits at [7..10). Field values 5, 6, 7 fold
        // onto cubes 0, 1, 2; the local address is unchanged by the fold.
        for (field, folded) in [(5u64, 0u8), (6, 1), (7, 2)] {
            let g = GlobalAddress::new(field << 7 | 0x40);
            let (c, local) = il.split(g).unwrap();
            assert_eq!(c, CubeId(folded), "field {field}");
            assert_eq!(local.raw(), 0x40);
        }
        // In-range fields are untouched, so split ∘ join stays the
        // identity.
        for cube in 0..5u8 {
            let a = Address::new(0x1234_5680);
            assert_eq!(
                il.split(il.join(CubeId(cube), a)).unwrap(),
                (CubeId(cube), a)
            );
        }
        // The full window now splits; capacity violations stay loud.
        assert!(il.splits_whole_window(1 << 37));
        assert!(matches!(
            il.split(GlobalAddress::new(1 << 40)),
            Err(SplitError::AboveCapacity { bits: 37, .. })
        ));
        // Blocked keeps the reject: a linear walk crossing into a
        // missing cube's block is a workload bug, not a redraw.
        let blocked = FabricAddressMap::new(CubePolicy::Blocked, 5, &map());
        assert!(matches!(
            blocked.split(GlobalAddress::new(5u64 << 34)),
            Err(SplitError::CubeOutOfRange {
                cube: 5,
                cubes: 5,
                ..
            })
        ));
    }

    #[test]
    fn single_cube_map_is_the_identity() {
        let m = FabricAddressMap::single();
        assert_eq!(m.cube_bits(), 0);
        assert_eq!(m.global_bits(), 34);
        let (c, a) = m.split(GlobalAddress::new(0x3_0000_0080)).unwrap();
        assert_eq!(c, CubeId::HOST);
        assert_eq!(a.raw(), 0x3_0000_0080);
        assert!(m.split(GlobalAddress::new(1 << 34)).is_err());
        assert_eq!(m.join(CubeId::HOST, Address::new(42)).raw(), 42);
    }

    #[test]
    fn targeting_resolution() {
        let fixed = CubeTargeting::Fixed(CubeId(3));
        assert_eq!(fixed.cube_span(), 1);
        assert_eq!(fixed.fixed_cube(), Some(CubeId(3)));
        // Fixed targeting keeps the HMC header mask semantics.
        let (c, a) = fixed.resolve(GlobalAddress::new(1 << 34 | 0x40)).unwrap();
        assert_eq!((c, a.raw()), (CubeId(3), 0x40));

        let addressed =
            CubeTargeting::Addressed(FabricAddressMap::new(CubePolicy::Blocked, 4, &map()));
        assert_eq!(addressed.cube_span(), 4);
        assert_eq!(addressed.fixed_cube(), None);
        let (c, a) = addressed
            .resolve(GlobalAddress::new(2u64 << 34 | 0x40))
            .unwrap();
        assert_eq!((c, a.raw()), (CubeId(2), 0x40));
        assert!(addressed.resolve(GlobalAddress::new(1 << 40)).is_err());
        assert_eq!(CubeTargeting::default(), CubeTargeting::Fixed(CubeId::HOST));
    }

    #[test]
    fn aligned_request_fit_tracks_the_cube_shift() {
        use crate::map::BlockSize;
        use crate::Geometry;

        // Blocked: cube bits sit above the whole in-cube field, so any
        // request size fits.
        let blocked = FabricAddressMap::new(CubePolicy::Blocked, 4, &map());
        assert!(blocked.fits_aligned_requests(128));
        // Interleaved over 128 B blocks: up to 128 B requests fit.
        let il128 = FabricAddressMap::new(CubePolicy::Interleaved, 4, &map());
        assert!(il128.fits_aligned_requests(128));
        assert!(!il128.fits_aligned_requests(256));
        // Interleaved over 64 B blocks: a 128 B-aligned draw would zero
        // the lowest cube bit — the silent skew the check rejects.
        let m64 = AddressMap::new(Geometry::hmc_gen2(), BlockSize::B64);
        let il64 = FabricAddressMap::new(CubePolicy::Interleaved, 2, &m64);
        assert!(il64.fits_aligned_requests(64));
        assert!(!il64.fits_aligned_requests(128));
    }

    #[test]
    fn whole_window_splitting_tracks_capacity_and_cube_density() {
        // Blocked, 4 cubes: 36 global bits. One-cube and full windows
        // split; anything above capacity does not.
        let m = FabricAddressMap::new(CubePolicy::Blocked, 4, &map());
        assert!(m.splits_whole_window(1 << 34));
        assert!(m.splits_whole_window(1 << 36));
        assert!(!m.splits_whole_window(1 << 37));
        // Blocked, 5 cubes: a window reaching the cube field draws
        // values 5..7, which name missing cubes — mid-run split errors,
        // rejected up front instead.
        let five = FabricAddressMap::new(CubePolicy::Blocked, 5, &map());
        assert!(five.splits_whole_window(1 << 34), "below the cube field");
        assert!(!five.splits_whole_window(1 << 37), "sparse cube field");
        // Interleaved, 5 cubes: out-of-range fields redraw, so any
        // in-capacity window splits.
        let il5 = FabricAddressMap::new(CubePolicy::Interleaved, 5, &map());
        assert!(il5.splits_whole_window(1 << 7), "one block, cube 0 only");
        assert!(il5.splits_whole_window(1 << 34), "redraw covers the field");
        assert!(!il5.splits_whole_window(1 << 38), "capacity still gates");
        // Power-of-two counts are dense: the full window always splits.
        for cubes in [1u8, 2, 4, 8] {
            for policy in [CubePolicy::Blocked, CubePolicy::Interleaved] {
                let m = FabricAddressMap::new(policy, cubes, &map());
                assert!(
                    m.splits_whole_window(1u64 << m.global_bits()),
                    "{policy} {cubes}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn join_rejects_missing_cubes() {
        let m = FabricAddressMap::new(CubePolicy::Blocked, 2, &map());
        let _ = m.join(CubeId(2), Address::new(0));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn cube_count_is_capped_by_the_cub_field() {
        let _ = FabricAddressMap::new(CubePolicy::Blocked, 65, &map());
    }
}
