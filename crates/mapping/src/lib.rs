//! # hmc-mapping
//!
//! The HMC 1.1 address map (Figure 3 of the reproduced paper) and the
//! GUPS-style mask/anti-mask access-pattern machinery.
//!
//! The map is *low-order interleaved*: sequential blocks walk the vaults of
//! a quadrant, then quadrants, then banks within a vault, so a 4 KB OS page
//! spreads over two banks in all 16 vaults and serial accesses pick up
//! bank-level parallelism for free (Section II-A). Every structural access
//! pattern in the evaluation — "1 bank" through "16 vaults" — is produced by
//! forcing address bits with a mask/anti-mask pair, exactly like the
//! firmware.
//!
//! ```
//! use hmc_mapping::{AccessPattern, AddressMap};
//!
//! let map = AddressMap::hmc_gen2_default();
//! let pattern = AccessPattern::Vaults { count: 4 };
//! let filter = pattern.filter(&map);
//! // Any generated value lands within the first four vaults.
//! let loc = map.decode(filter.apply(0xDEAD_BEEF_CAFE));
//! assert!(loc.vault.0 < 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod geometry;
mod map;
mod pattern;

pub use fabric::{CubePolicy, CubeTargeting, FabricAddressMap, SplitError};
pub use geometry::{BankId, Geometry, QuadrantId, VaultId};
pub use map::{AddressMap, BlockSize, Location};
pub use pattern::{single_bank_filter, AccessPattern, AddressFilter};
