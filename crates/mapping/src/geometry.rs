//! Structural geometry of a cube (Section II-A, Figure 2).

use core::fmt;

/// Identifies a vault (vertical partition) of the cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VaultId(pub u8);

impl VaultId {
    /// The dense index of this vault.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vault{}", self.0)
    }
}

/// Identifies a bank within a vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub u8);

impl BankId {
    /// The dense index of this bank within its vault.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// Identifies a quadrant: a group of four vaults sharing a logic-layer
/// switch and (for quadrants 0 and 1 on the AC-510) an external link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuadrantId(pub u8);

impl QuadrantId {
    /// The dense index of this quadrant.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QuadrantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quad{}", self.0)
    }
}

/// The structural organization of a cube.
///
/// Defaults describe a 4 GB HMC 1.1 Gen2 device: 16 vaults of 256 MB in 4
/// quadrants, 16 banks of 16 MB per vault (Section II-A).
///
/// # Examples
///
/// ```
/// use hmc_mapping::Geometry;
///
/// let g = Geometry::hmc_gen2();
/// assert_eq!(g.total_bytes(), 4 << 30);
/// assert_eq!(g.total_banks(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of vaults in the cube.
    pub vaults: u8,
    /// Number of quadrants (vault groups with a shared switch).
    pub quadrants: u8,
    /// Number of banks in each vault.
    pub banks_per_vault: u8,
    /// Capacity of one bank in bytes.
    pub bank_bytes: u64,
}

impl Geometry {
    /// The 4 GB HMC 1.1 Gen2 geometry used throughout the paper.
    pub const fn hmc_gen2() -> Geometry {
        Geometry {
            vaults: 16,
            quadrants: 4,
            banks_per_vault: 16,
            bank_bytes: 16 << 20,
        }
    }

    /// Vaults per quadrant.
    #[inline]
    pub fn vaults_per_quadrant(&self) -> u8 {
        self.vaults / self.quadrants
    }

    /// Capacity of one vault in bytes.
    #[inline]
    pub fn vault_bytes(&self) -> u64 {
        self.bank_bytes * u64::from(self.banks_per_vault)
    }

    /// Total cube capacity in bytes.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.vault_bytes() * u64::from(self.vaults)
    }

    /// Total banks in the cube.
    #[inline]
    pub fn total_banks(&self) -> u32 {
        u32::from(self.vaults) * u32::from(self.banks_per_vault)
    }

    /// The quadrant that owns `vault`.
    ///
    /// Vault ids compose as `quadrant * vaults_per_quadrant +
    /// vault_in_quadrant`, matching the low-order-interleaved address map.
    #[inline]
    pub fn quadrant_of(&self, vault: VaultId) -> QuadrantId {
        QuadrantId(vault.0 / self.vaults_per_quadrant())
    }

    /// Iterates over every vault id.
    pub fn vault_ids(&self) -> impl Iterator<Item = VaultId> {
        (0..self.vaults).map(VaultId)
    }

    /// Iterates over every bank id within a vault.
    pub fn bank_ids(&self) -> impl Iterator<Item = BankId> {
        (0..self.banks_per_vault).map(BankId)
    }

    /// Validates internal consistency (power-of-two fields, divisibility).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vaults == 0 || !self.vaults.is_power_of_two() {
            return Err(format!(
                "vault count {} must be a nonzero power of two",
                self.vaults
            ));
        }
        if self.quadrants == 0 || !self.vaults.is_multiple_of(self.quadrants) {
            return Err(format!(
                "quadrants {} must divide vaults {}",
                self.quadrants, self.vaults
            ));
        }
        if !self.vaults_per_quadrant().is_power_of_two() {
            return Err("vaults per quadrant must be a power of two".to_owned());
        }
        if self.banks_per_vault == 0 || !self.banks_per_vault.is_power_of_two() {
            return Err(format!(
                "banks per vault {} must be a nonzero power of two",
                self.banks_per_vault
            ));
        }
        if self.bank_bytes == 0 || !self.bank_bytes.is_power_of_two() {
            return Err(format!(
                "bank bytes {} must be a nonzero power of two",
                self.bank_bytes
            ));
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Geometry {
        Geometry::hmc_gen2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_matches_section_2a() {
        let g = Geometry::hmc_gen2();
        assert_eq!(g.vaults, 16);
        assert_eq!(g.quadrants, 4);
        assert_eq!(g.vaults_per_quadrant(), 4);
        assert_eq!(g.banks_per_vault, 16);
        assert_eq!(g.bank_bytes, 16 << 20);
        assert_eq!(g.vault_bytes(), 256 << 20);
        assert_eq!(g.total_bytes(), 4 << 30);
        assert_eq!(g.total_banks(), 256);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn quadrant_of_groups_consecutive_vaults() {
        let g = Geometry::hmc_gen2();
        assert_eq!(g.quadrant_of(VaultId(0)), QuadrantId(0));
        assert_eq!(g.quadrant_of(VaultId(3)), QuadrantId(0));
        assert_eq!(g.quadrant_of(VaultId(4)), QuadrantId(1));
        assert_eq!(g.quadrant_of(VaultId(15)), QuadrantId(3));
    }

    #[test]
    fn validate_rejects_bad_geometries() {
        let mut g = Geometry::hmc_gen2();
        g.vaults = 12;
        assert!(g.validate().is_err());
        let mut g = Geometry::hmc_gen2();
        g.quadrants = 3;
        assert!(g.validate().is_err());
        let mut g = Geometry::hmc_gen2();
        g.banks_per_vault = 0;
        assert!(g.validate().is_err());
        let mut g = Geometry::hmc_gen2();
        g.bank_bytes = 3 << 20;
        assert!(g.validate().is_err());
    }

    #[test]
    fn iterators_cover_geometry() {
        let g = Geometry::hmc_gen2();
        assert_eq!(g.vault_ids().count(), 16);
        assert_eq!(g.bank_ids().count(), 16);
        assert_eq!(g.vault_ids().last(), Some(VaultId(15)));
    }
}
