//! GUPS-style access patterns via address mask / anti-mask filters.
//!
//! The GUPS firmware restricts random addresses to a structural subset of
//! the cube "by forcing some bits of the address to zero/one by using
//! address mask/anti-mask" (Section III-B). [`AddressFilter`] reproduces
//! that mechanism exactly; [`AccessPattern`] builds the filters for the
//! pattern families the paper sweeps (1–8 banks within a vault, 1–16
//! vaults).

use core::fmt;

use hmc_packet::Address;

use crate::geometry::{BankId, VaultId};
use crate::map::AddressMap;

/// A mask/anti-mask pair applied to generated addresses.
///
/// `apply` computes `(raw & mask) | anti_mask`: the mask forces chosen bits
/// to zero, the anti-mask then forces chosen bits to one.
///
/// # Examples
///
/// ```
/// use hmc_mapping::AddressFilter;
/// use hmc_packet::Address;
///
/// // Force bits [6:0] to zero and bit 7 to one.
/// let f = AddressFilter::new(!0x7F, 0x80);
/// assert_eq!(f.apply(0x1FF).raw(), 0x180);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressFilter {
    mask: u64,
    anti_mask: u64,
}

impl AddressFilter {
    /// Creates a filter from a zero-forcing `mask` and a one-forcing
    /// `anti_mask`.
    ///
    /// # Panics
    ///
    /// Panics if the anti-mask tries to set a bit the mask clears is *not*
    /// an error (the anti-mask wins, as in the firmware), but an anti-mask
    /// above the 34-bit address field is rejected.
    pub fn new(mask: u64, anti_mask: u64) -> AddressFilter {
        assert!(
            anti_mask & !Address::MASK == 0,
            "anti-mask sets bits outside the 34-bit address field"
        );
        AddressFilter { mask, anti_mask }
    }

    /// The identity filter (no bits forced).
    pub const fn pass_all() -> AddressFilter {
        AddressFilter {
            mask: u64::MAX,
            anti_mask: 0,
        }
    }

    /// Applies the filter to a raw generated value.
    #[inline]
    pub fn apply(&self, raw: u64) -> Address {
        Address::new((raw & self.mask) | self.anti_mask)
    }

    /// The zero-forcing mask.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// The one-forcing anti-mask.
    #[inline]
    pub fn anti_mask(&self) -> u64 {
        self.anti_mask
    }
}

impl Default for AddressFilter {
    fn default() -> AddressFilter {
        AddressFilter::pass_all()
    }
}

/// One of the paper's structural access patterns (the x-axis families of
/// Figures 6 and 13).
///
/// - `Banks { count, .. }`: random accesses confined to the first `count`
///   banks of a single vault;
/// - `Vaults { count }`: random accesses confined to the first `count`
///   vaults (every bank within them).
///
/// Counts must be powers of two so the pattern is expressible with a
/// mask/anti-mask, exactly as on the real firmware. "1 vault" and
/// "16 banks" describe the same footprint; the paper labels it "1 vault".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// `count` banks within vault `vault`.
    Banks {
        /// The vault confining the accesses.
        vault: VaultId,
        /// How many banks (power of two, ≤ banks per vault).
        count: u8,
    },
    /// `count` vaults, all banks.
    Vaults {
        /// How many vaults (power of two, ≤ vault count).
        count: u8,
    },
}

impl AccessPattern {
    /// The nine patterns of Figures 6 and 13, most distributed first:
    /// 16, 8, 4, 2, 1 vaults, then 8, 4, 2, 1 banks (banks within vault 0).
    pub fn paper_sweep() -> Vec<AccessPattern> {
        let mut v: Vec<AccessPattern> = [16u8, 8, 4, 2, 1]
            .iter()
            .map(|&count| AccessPattern::Vaults { count })
            .collect();
        v.extend([8u8, 4, 2, 1].iter().map(|&count| AccessPattern::Banks {
            vault: VaultId(0),
            count,
        }));
        v
    }

    /// Number of distinct vaults the pattern touches.
    pub fn vault_count(&self) -> u8 {
        match *self {
            AccessPattern::Banks { .. } => 1,
            AccessPattern::Vaults { count } => count,
        }
    }

    /// Number of distinct banks the pattern touches per vault.
    pub fn banks_per_vault(&self, map: &AddressMap) -> u8 {
        match *self {
            AccessPattern::Banks { count, .. } => count,
            AccessPattern::Vaults { .. } => map.geometry().banks_per_vault,
        }
    }

    /// Total banks the pattern touches across the cube.
    pub fn total_banks(&self, map: &AddressMap) -> u32 {
        u32::from(self.vault_count()) * u32::from(self.banks_per_vault(map))
    }

    /// Builds the mask/anti-mask filter realizing this pattern under `map`.
    ///
    /// # Panics
    ///
    /// Panics if the count is zero, not a power of two, or exceeds the
    /// geometry.
    pub fn filter(&self, map: &AddressMap) -> AddressFilter {
        let g = map.geometry();
        match *self {
            AccessPattern::Banks { vault, count } => {
                assert!(
                    count >= 1 && count <= g.banks_per_vault && count.is_power_of_two(),
                    "bank count {count} must be a power of two within the vault"
                );
                assert!(vault.0 < g.vaults, "vault out of range");
                // Zero out the whole vault field and the fixed bank bits,
                // then force the vault id back in with the anti-mask.
                let vault_field = (u64::from(g.vaults) - 1) << map.vault_shift();
                let fixed_banks = ((u64::from(g.banks_per_vault) - 1) ^ (u64::from(count) - 1))
                    << map.bank_shift();
                let mask = !(vault_field | fixed_banks);
                let anti = u64::from(vault.0) << map.vault_shift();
                AddressFilter::new(mask, anti)
            }
            AccessPattern::Vaults { count } => {
                assert!(
                    count >= 1 && count <= g.vaults && count.is_power_of_two(),
                    "vault count {count} must be a power of two within the cube"
                );
                let fixed_vaults =
                    ((u64::from(g.vaults) - 1) ^ (u64::from(count) - 1)) << map.vault_shift();
                AddressFilter::new(!fixed_vaults, 0)
            }
        }
    }

    /// The paper's label for this pattern, e.g. `"4 banks"` or `"2 vaults"`.
    pub fn label(&self) -> String {
        match *self {
            AccessPattern::Banks { count: 1, .. } => "1 bank".to_owned(),
            AccessPattern::Banks { count, .. } => format!("{count} banks"),
            AccessPattern::Vaults { count: 1 } => "1 vault".to_owned(),
            AccessPattern::Vaults { count } => format!("{count} vaults"),
        }
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Convenience: the filter that confines random accesses to exactly one
/// bank of one vault (the paper's least-distributed pattern).
pub fn single_bank_filter(map: &AddressMap, vault: VaultId, bank: BankId) -> AddressFilter {
    let g = map.geometry();
    assert!(
        vault.0 < g.vaults && bank.0 < g.banks_per_vault,
        "location out of range"
    );
    let vault_field = (u64::from(g.vaults) - 1) << map.vault_shift();
    let bank_field = (u64::from(g.banks_per_vault) - 1) << map.bank_shift();
    let mask = !(vault_field | bank_field);
    let anti = (u64::from(vault.0) << map.vault_shift()) | (u64::from(bank.0) << map.bank_shift());
    AddressFilter::new(mask, anti)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn map() -> AddressMap {
        AddressMap::hmc_gen2_default()
    }

    /// Pseudo-random-ish raw values without pulling in a RNG: a Weyl
    /// sequence is plenty to exercise the masks.
    fn raws() -> impl Iterator<Item = u64> {
        (0..4096u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[test]
    fn banks_pattern_confines_vault_and_banks() {
        let m = map();
        for count in [1u8, 2, 4, 8] {
            let p = AccessPattern::Banks {
                vault: VaultId(5),
                count,
            };
            let f = p.filter(&m);
            let mut vaults = BTreeSet::new();
            let mut banks = BTreeSet::new();
            for raw in raws() {
                let loc = m.decode(f.apply(raw));
                vaults.insert(loc.vault.0);
                banks.insert(loc.bank.0);
            }
            assert_eq!(vaults, BTreeSet::from([5u8]), "count={count}");
            assert_eq!(banks.len(), count as usize, "count={count}");
            assert!(banks.iter().all(|&b| b < count), "low banks only");
        }
    }

    #[test]
    fn vaults_pattern_confines_vaults_frees_banks() {
        let m = map();
        for count in [1u8, 2, 4, 8, 16] {
            let p = AccessPattern::Vaults { count };
            let f = p.filter(&m);
            let mut vaults = BTreeSet::new();
            let mut banks = BTreeSet::new();
            for raw in raws() {
                let loc = m.decode(f.apply(raw));
                vaults.insert(loc.vault.0);
                banks.insert(loc.bank.0);
            }
            assert_eq!(vaults.len(), count as usize, "count={count}");
            assert!(vaults.iter().all(|&v| v < count));
            assert_eq!(banks.len(), 16, "all banks vary");
        }
    }

    #[test]
    fn single_bank_filter_pins_both_fields() {
        let m = map();
        let f = single_bank_filter(&m, VaultId(9), BankId(13));
        for raw in raws() {
            let loc = m.decode(f.apply(raw));
            assert_eq!(loc.vault, VaultId(9));
            assert_eq!(loc.bank, BankId(13));
        }
    }

    #[test]
    fn paper_sweep_has_nine_patterns() {
        let sweep = AccessPattern::paper_sweep();
        assert_eq!(sweep.len(), 9);
        let labels: Vec<String> = sweep.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec![
                "16 vaults",
                "8 vaults",
                "4 vaults",
                "2 vaults",
                "1 vault",
                "8 banks",
                "4 banks",
                "2 banks",
                "1 bank"
            ]
        );
    }

    #[test]
    fn total_banks_counts_footprint() {
        let m = map();
        assert_eq!(AccessPattern::Vaults { count: 16 }.total_banks(&m), 256);
        assert_eq!(AccessPattern::Vaults { count: 1 }.total_banks(&m), 16);
        assert_eq!(
            AccessPattern::Banks {
                vault: VaultId(0),
                count: 2
            }
            .total_banks(&m),
            2
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn filter_rejects_non_power_of_two() {
        let _ = AccessPattern::Vaults { count: 3 }.filter(&map());
    }

    #[test]
    fn pass_all_is_identity_within_field() {
        let f = AddressFilter::pass_all();
        assert_eq!(f.apply(0x1234_5678).raw(), 0x1234_5678);
    }
}
