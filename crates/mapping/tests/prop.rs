//! Property tests for the address map: bijectivity, interleaving structure
//! and mask/anti-mask pattern confinement.

use hmc_mapping::{AccessPattern, AddressMap, BlockSize, Geometry, VaultId};
use hmc_packet::Address;
use proptest::prelude::*;

fn block_sizes() -> impl Strategy<Value = BlockSize> {
    prop_oneof![
        Just(BlockSize::B16),
        Just(BlockSize::B32),
        Just(BlockSize::B64),
        Just(BlockSize::B128),
    ]
}

proptest! {
    /// decode ∘ encode is the identity on in-range locations.
    #[test]
    fn encode_decode_roundtrip(
        block in block_sizes(),
        vault in 0u8..16,
        bank in 0u8..16,
        row_seed in any::<u64>(),
        off_seed in any::<u64>(),
    ) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let row = row_seed % map.rows_per_bank();
        let off = off_seed % block.bytes();
        let addr = map.encode(VaultId(vault), hmc_mapping::BankId(bank), row, off);
        let loc = map.decode(addr);
        prop_assert_eq!(loc.vault.0, vault);
        prop_assert_eq!(loc.bank.0, bank);
        prop_assert_eq!(loc.block_row, row);
        prop_assert_eq!(loc.offset, off);
    }

    /// encode ∘ decode is the identity on in-capacity addresses.
    #[test]
    fn decode_encode_roundtrip(block in block_sizes(), raw in any::<u64>()) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let addr = Address::new(raw % map.geometry().total_bytes());
        let loc = map.decode(addr);
        let back = map.encode(loc.vault, loc.bank, loc.block_row, loc.offset);
        prop_assert_eq!(back, addr);
    }

    /// Consecutive blocks land in consecutive vaults (low-order
    /// interleaving): block i and block i+1 differ by exactly one in the
    /// vault index, mod 16, as long as they stay within a bank stripe.
    #[test]
    fn adjacent_blocks_rotate_vaults(block in block_sizes(), start in any::<u64>()) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let bytes = block.bytes();
        let base = (start % (map.geometry().total_bytes() / bytes - 1)) * bytes;
        let a = map.decode(Address::new(base));
        let b = map.decode(Address::new(base + bytes));
        prop_assert_eq!((a.vault.0 + 1) % 16 == b.vault.0, true);
    }

    /// Any address produced under a `Vaults { count }` pattern decodes to a
    /// vault index below `count`, for every count and any raw input.
    #[test]
    fn vault_pattern_confines(raw in any::<u64>(), count_log2 in 0u32..5) {
        let count = 1u8 << count_log2;
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count }.filter(&map);
        let loc = map.decode(filter.apply(raw));
        prop_assert!(loc.vault.0 < count);
    }

    /// Any address produced under a `Banks { vault, count }` pattern stays
    /// in that vault and in the low `count` banks.
    #[test]
    fn bank_pattern_confines(raw in any::<u64>(), vault in 0u8..16, count_log2 in 0u32..5) {
        let count = 1u8 << count_log2;
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Banks { vault: VaultId(vault), count }.filter(&map);
        let loc = map.decode(filter.apply(raw));
        prop_assert_eq!(loc.vault.0, vault);
        prop_assert!(loc.bank.0 < count);
    }

    /// A 4 KB page always covers all 16 vaults and exactly
    /// `4096 / (block * 16)` banks (clamped to at least 1) at any block
    /// size.
    #[test]
    fn page_footprint_structure(block in block_sizes(), page in 0u64..(1 << 20)) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let base = Address::new(page * 4096);
        let footprint = map.page_footprint(base, 4096);
        let vaults: std::collections::BTreeSet<u8> =
            footprint.iter().map(|l| l.vault.0).collect();
        let banks: std::collections::BTreeSet<u8> =
            footprint.iter().map(|l| l.bank.0).collect();
        prop_assert_eq!(vaults.len(), 16);
        let expected_banks = (4096 / (block.bytes() * 16)).max(1) as usize;
        prop_assert_eq!(banks.len(), expected_banks);
    }
}
