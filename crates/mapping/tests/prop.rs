//! Property tests for the address map: bijectivity, interleaving structure
//! and mask/anti-mask pattern confinement — plus the fabric split/join
//! contract across the full 6-bit CUB range.

use hmc_mapping::{
    AccessPattern, AddressMap, BlockSize, CubePolicy, FabricAddressMap, Geometry, VaultId,
};
use hmc_packet::{Address, CubeId, GlobalAddress};
use proptest::prelude::*;

fn block_sizes() -> impl Strategy<Value = BlockSize> {
    prop_oneof![
        Just(BlockSize::B16),
        Just(BlockSize::B32),
        Just(BlockSize::B64),
        Just(BlockSize::B128),
    ]
}

proptest! {
    /// decode ∘ encode is the identity on in-range locations.
    #[test]
    fn encode_decode_roundtrip(
        block in block_sizes(),
        vault in 0u8..16,
        bank in 0u8..16,
        row_seed in any::<u64>(),
        off_seed in any::<u64>(),
    ) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let row = row_seed % map.rows_per_bank();
        let off = off_seed % block.bytes();
        let addr = map.encode(VaultId(vault), hmc_mapping::BankId(bank), row, off);
        let loc = map.decode(addr);
        prop_assert_eq!(loc.vault.0, vault);
        prop_assert_eq!(loc.bank.0, bank);
        prop_assert_eq!(loc.block_row, row);
        prop_assert_eq!(loc.offset, off);
    }

    /// encode ∘ decode is the identity on in-capacity addresses.
    #[test]
    fn decode_encode_roundtrip(block in block_sizes(), raw in any::<u64>()) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let addr = Address::new(raw % map.geometry().total_bytes());
        let loc = map.decode(addr);
        let back = map.encode(loc.vault, loc.bank, loc.block_row, loc.offset);
        prop_assert_eq!(back, addr);
    }

    /// Consecutive blocks land in consecutive vaults (low-order
    /// interleaving): block i and block i+1 differ by exactly one in the
    /// vault index, mod 16, as long as they stay within a bank stripe.
    #[test]
    fn adjacent_blocks_rotate_vaults(block in block_sizes(), start in any::<u64>()) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let bytes = block.bytes();
        let base = (start % (map.geometry().total_bytes() / bytes - 1)) * bytes;
        let a = map.decode(Address::new(base));
        let b = map.decode(Address::new(base + bytes));
        prop_assert_eq!((a.vault.0 + 1) % 16 == b.vault.0, true);
    }

    /// Any address produced under a `Vaults { count }` pattern decodes to a
    /// vault index below `count`, for every count and any raw input.
    #[test]
    fn vault_pattern_confines(raw in any::<u64>(), count_log2 in 0u32..5) {
        let count = 1u8 << count_log2;
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Vaults { count }.filter(&map);
        let loc = map.decode(filter.apply(raw));
        prop_assert!(loc.vault.0 < count);
    }

    /// Any address produced under a `Banks { vault, count }` pattern stays
    /// in that vault and in the low `count` banks.
    #[test]
    fn bank_pattern_confines(raw in any::<u64>(), vault in 0u8..16, count_log2 in 0u32..5) {
        let count = 1u8 << count_log2;
        let map = AddressMap::hmc_gen2_default();
        let filter = AccessPattern::Banks { vault: VaultId(vault), count }.filter(&map);
        let loc = map.decode(filter.apply(raw));
        prop_assert_eq!(loc.vault.0, vault);
        prop_assert!(loc.bank.0 < count);
    }

    /// A 4 KB page always covers all 16 vaults and exactly
    /// `4096 / (block * 16)` banks (clamped to at least 1) at any block
    /// size.
    #[test]
    fn page_footprint_structure(block in block_sizes(), page in 0u64..(1 << 20)) {
        let map = AddressMap::new(Geometry::hmc_gen2(), block);
        let base = Address::new(page * 4096);
        let footprint = map.page_footprint(base, 4096);
        let vaults: std::collections::BTreeSet<u8> =
            footprint.iter().map(|l| l.vault.0).collect();
        let banks: std::collections::BTreeSet<u8> =
            footprint.iter().map(|l| l.bank.0).collect();
        prop_assert_eq!(vaults.len(), 16);
        let expected_banks = (4096 / (block.bytes() * 16)).max(1) as usize;
        prop_assert_eq!(banks.len(), expected_banks);
    }

    /// split ∘ join is the identity for every cube of every fabric size
    /// the 6-bit CUB field allows, under both policies: joining a
    /// (cube, local) pair always produces a global address that splits
    /// back to exactly that pair.
    #[test]
    fn split_join_identity_across_cube_counts(
        cubes in 1u8..65,
        interleaved in any::<bool>(),
        cube_seed in any::<u64>(),
        local_seed in any::<u64>(),
    ) {
        let policy = if interleaved {
            CubePolicy::Interleaved
        } else {
            CubePolicy::Blocked
        };
        let map = FabricAddressMap::new(policy, cubes, &AddressMap::hmc_gen2_default());
        let cube = CubeId((cube_seed % u64::from(cubes)) as u8);
        let local = Address::new(local_seed);
        let global = map.join(cube, local);
        prop_assert_eq!(map.split(global), Ok((cube, local)), "{} x{}", policy.label(), cubes);
    }

    /// join ∘ split is the identity on every in-capacity global address
    /// whose cube field is in range — splitting and rejoining reproduces
    /// the original address bit-for-bit under both policies.
    #[test]
    fn join_split_identity_on_in_range_addresses(
        cubes in 1u8..65,
        interleaved in any::<bool>(),
        raw in any::<u64>(),
    ) {
        let base = AddressMap::hmc_gen2_default();
        let (policy, shift) = if interleaved {
            (CubePolicy::Interleaved, base.block_size().offset_bits())
        } else {
            (CubePolicy::Blocked, Address::BITS)
        };
        let map = FabricAddressMap::new(policy, cubes, &base);
        let in_cube = raw & Address::MASK;
        let field = (raw >> Address::BITS) % u64::from(cubes);
        // Weave an in-range cube field into the policy's field position.
        let global = GlobalAddress::new(
            ((in_cube >> shift) << (shift + map.cube_bits()))
                | (field << shift)
                | (in_cube & ((1u64 << shift) - 1)),
        );
        let (cube, local) = map.split(global).unwrap();
        prop_assert_eq!(cube, CubeId(field as u8));
        prop_assert_eq!(map.join(cube, local), global, "{} x{}", policy.label(), cubes);
    }

    /// Under the interleaved policy *every* in-capacity global address
    /// splits: out-of-range cube fields are redrawn (folded mod the cube
    /// count) instead of rejected, and the result always names a real
    /// cube. The blocked policy must still reject the same out-of-range
    /// fields loudly.
    #[test]
    fn interleaved_redraw_always_splits(cubes in 1u8..65, raw in any::<u64>()) {
        let base = AddressMap::hmc_gen2_default();
        let il = FabricAddressMap::new(CubePolicy::Interleaved, cubes, &base);
        let global = GlobalAddress::new(raw & ((1u64 << il.global_bits()) - 1));
        let (cube, _) = il.split(global).expect("interleaved split is total in capacity");
        prop_assert!(cube.0 < cubes);
        prop_assert!(il.splits_whole_window(1u64 << il.global_bits()));
        let blocked = FabricAddressMap::new(CubePolicy::Blocked, cubes, &base);
        let field = (global.raw() >> Address::BITS) & ((1u64 << blocked.cube_bits()) - 1);
        if field >= u64::from(cubes) {
            prop_assert!(blocked.split(global).is_err(), "blocked must reject field {}", field);
        } else {
            let (bc, _) = blocked.split(global).expect("in-range blocked field splits");
            prop_assert_eq!(bc, CubeId(field as u8));
        }
    }
}
