//! # hmc-faults
//!
//! Deterministic, schedule-independent link-fault injection for the
//! multi-cube fabric.
//!
//! Real HMC links run a CRC + sequence-number + retry-buffer protocol
//! (HMC 2.1 link retry) whose retransmissions eat exactly the NoC
//! bandwidth the reproduced paper characterizes. This crate decides
//! *which* transmissions fail; the link model (`hmc-link`) charges the
//! protocol's wire time for each failure and the fabric (`hmc-fabric`)
//! reroutes around permanently dead links.
//!
//! ## Determinism
//!
//! Every fault draw is a pure function of `(seed, link key, flit
//! sequence number)` through a splitmix64-style hash. The flit sequence
//! number counts transmission attempts on that one link, and a link's
//! transmission order is fully determined by the simulation itself —
//! never by host thread timing — so the injected error pattern is
//! byte-identical across `--threads` and `--domains` settings.
//!
//! ```
//! use hmc_faults::{FaultPlan, LinkFaultSpec, LinkKey};
//!
//! let plan = FaultPlan::new(7)
//!     .with_link(LinkKey::edge(0, 1), LinkFaultSpec::ber(1e-6))
//!     .degrade_after(100);
//! plan.validate().expect("plan is sane");
//! let mut inj = plan.injector(LinkKey::edge(0, 1)).expect("spec present");
//! let mut other = plan.injector(LinkKey::edge(0, 1)).expect("spec present");
//! // Same link, same attempt stream: identical draws.
//! assert_eq!(inj.corrupt_packet(9), other.corrupt_packet(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use std::collections::BTreeMap;

use hmc_des::Time;

/// splitmix64 finalizer: the one hash behind every fault draw.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifies one fault-injectable serializer in a fabric.
///
/// Keys name links the way an operator would — by the cubes they join —
/// not by internal adapter port indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkKey {
    /// The serializer of cube `from` driving the fabric edge toward
    /// cube `to` (one direction of a cube-to-cube link).
    Edge {
        /// Transmitting cube.
        from: u8,
        /// Receiving neighbor.
        to: u8,
    },
    /// Host-facing response serializer `link` on the host-attached cube.
    Host {
        /// External link index.
        link: u8,
    },
}

impl LinkKey {
    /// The `from → to` direction of a cube-to-cube link.
    pub fn edge(from: u8, to: u8) -> LinkKey {
        LinkKey::Edge { from, to }
    }

    /// Host-facing response link `link` on cube 0.
    pub fn host(link: u8) -> LinkKey {
        LinkKey::Host { link }
    }

    /// A stable 64-bit identity mixed into every draw for this link.
    fn salt(self) -> u64 {
        match self {
            LinkKey::Edge { from, to } => 0x1000 | (u64::from(from) << 8) | u64::from(to),
            LinkKey::Host { link } => 0x2000 | u64::from(link),
        }
    }
}

impl fmt::Display for LinkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKey::Edge { from, to } => write!(f, "link={from}>{to}"),
            LinkKey::Host { link } => write!(f, "host={link}"),
        }
    }
}

/// The fault model of one link: what can go wrong on its wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkFaultSpec {
    /// Per-flit corruption probability (the link's effective bit error
    /// rate folded to flit granularity). Must be in `[0, 1)`.
    pub ber: f64,
    /// Burst length: when a flit draw fires, this many *further* flits
    /// are corrupted unconditionally (errors on a SerDes lane cluster).
    /// `0` means independent single-flit errors.
    pub burst: u32,
    /// Transient outages: absolute simulation-time windows during which
    /// the wire transmits nothing. A packet cut by a window's opening
    /// edge is dropped and retransmitted once the window closes.
    pub down: Vec<(Time, Time)>,
    /// Permanent lane failure: the link starts (and stays) at half
    /// width, doubling flit serialization time.
    pub half_width: bool,
}

impl LinkFaultSpec {
    /// A spec with only a flit error rate.
    pub fn ber(ber: f64) -> LinkFaultSpec {
        LinkFaultSpec {
            ber,
            ..LinkFaultSpec::default()
        }
    }

    /// Adds a burst length.
    pub fn with_burst(mut self, burst: u32) -> LinkFaultSpec {
        self.burst = burst;
        self
    }

    /// Adds a transient link-down window.
    pub fn with_down(mut self, from: Time, until: Time) -> LinkFaultSpec {
        self.down.push((from, until));
        self
    }

    /// Marks the link as permanently half-width.
    pub fn with_half_width(mut self) -> LinkFaultSpec {
        self.half_width = true;
        self
    }

    /// `true` if this spec injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.ber == 0.0 && self.down.is_empty() && !self.half_width
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.ber) {
            return Err(format!("flit error rate {} outside [0, 1)", self.ber));
        }
        for &(s, e) in &self.down {
            if s >= e {
                return Err(format!("down window {s}..{e} is empty"));
            }
        }
        Ok(())
    }

    /// Down windows sorted by start, for deterministic skipping.
    fn sorted_down(&self) -> Vec<(Time, Time)> {
        let mut d = self.down.clone();
        d.sort_unstable();
        d
    }
}

/// A complete fault scenario for one fabric: per-link specs, permanently
/// dead cube-to-cube links, and the degradation policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed; independent of the workload seed so the same error
    /// pattern can be replayed under different traffic.
    pub seed: u64,
    /// Per-link fault specs.
    links: BTreeMap<LinkKey, LinkFaultSpec>,
    /// A spec applied to every link without an explicit entry.
    blanket: Option<LinkFaultSpec>,
    /// Permanently dead cube-to-cube links, as unordered cube pairs. The
    /// fabric routes around them (ring) or refuses to build (chain/star,
    /// where removal disconnects the fabric).
    pub dead_edges: Vec<(u8, u8)>,
    /// Graceful degradation: after this many CRC errors a link falls to
    /// half width for the rest of the run. `None` disables fallback.
    pub degrade: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a per-link spec.
    pub fn with_link(mut self, key: LinkKey, spec: LinkFaultSpec) -> FaultPlan {
        self.links.insert(key, spec);
        self
    }

    /// Applies `spec` to every link without an explicit entry.
    pub fn with_all_links(mut self, spec: LinkFaultSpec) -> FaultPlan {
        self.blanket = Some(spec);
        self
    }

    /// Declares the cube-to-cube link between `a` and `b` permanently
    /// dead (both directions).
    pub fn with_dead_edge(mut self, a: u8, b: u8) -> FaultPlan {
        self.dead_edges.push((a.min(b), a.max(b)));
        self
    }

    /// Sets the half-width fallback threshold (CRC errors per link).
    pub fn degrade_after(mut self, crc_errors: u64) -> FaultPlan {
        self.degrade = Some(crc_errors);
        self
    }

    /// The spec governing `key`, if any (explicit entry, else blanket).
    pub fn spec_for(&self, key: LinkKey) -> Option<&LinkFaultSpec> {
        self.links.get(&key).or(self.blanket.as_ref())
    }

    /// `true` if no link gets a live injector and no edge is dead — the
    /// plan changes nothing.
    pub fn is_noop(&self) -> bool {
        self.dead_edges.is_empty()
            && self.degrade.is_none()
            && self.links.values().all(LinkFaultSpec::is_noop)
            && self.blanket.as_ref().is_none_or(LinkFaultSpec::is_noop)
    }

    /// Validates every spec and the dead-edge list.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (key, spec) in &self.links {
            spec.validate().map_err(|e| format!("{key}: {e}"))?;
        }
        if let Some(b) = &self.blanket {
            b.validate().map_err(|e| format!("all links: {e}"))?;
        }
        for &(a, b) in &self.dead_edges {
            if a == b {
                return Err(format!("dead edge {a}-{b} is a self-loop"));
            }
        }
        if self.degrade == Some(0) {
            return Err("degrade threshold must be positive".to_owned());
        }
        Ok(())
    }

    /// The deterministic injector for `key`, or `None` if the plan
    /// leaves that link fault-free.
    pub fn injector(&self, key: LinkKey) -> Option<LinkFaults> {
        let spec = self.spec_for(key)?;
        if spec.is_noop() && self.degrade.is_none() {
            return None;
        }
        Some(LinkFaults::new(self.seed, key, spec.clone()))
    }

    /// Parses the textual fault-spec syntax (see the README's "Fault
    /// injection & link retry" section). Clauses are `;`-separated; each
    /// clause is whitespace-separated fields:
    ///
    /// - `link=F>T` / `host=L` / `all` — which link(s) the clause's
    ///   fields apply to;
    /// - `ber=RATE` — per-flit error probability (float);
    /// - `burst=N` — flits corrupted after each hit;
    /// - `down=START..END` — outage window, times with `ns`/`us` suffix;
    /// - `half` — permanent half-width lanes;
    /// - `dead=A-B` — permanently dead cube-to-cube link;
    /// - `degrade=N` — half-width fallback after `N` CRC errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    ///
    /// ```
    /// use hmc_faults::FaultPlan;
    /// let plan = FaultPlan::parse(1, "all ber=1e-6 burst=2; dead=2-3; degrade=50")
    ///     .expect("spec parses");
    /// assert_eq!(plan.dead_edges, vec![(2, 3)]);
    /// assert_eq!(plan.degrade, Some(50));
    /// ```
    pub fn parse(seed: u64, s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut target: Option<Option<LinkKey>> = None; // None=unset, Some(None)=all
            let mut spec = LinkFaultSpec::default();
            for field in clause.split_whitespace() {
                if field == "all" {
                    target = Some(None);
                } else if field == "half" {
                    spec.half_width = true;
                } else if let Some(v) = field.strip_prefix("link=") {
                    let (f, t) = v
                        .split_once('>')
                        .ok_or_else(|| format!("link spec '{v}' wants FROM>TO"))?;
                    target = Some(Some(LinkKey::edge(
                        parse_u8(f, "link cube")?,
                        parse_u8(t, "link cube")?,
                    )));
                } else if let Some(v) = field.strip_prefix("host=") {
                    target = Some(Some(LinkKey::host(parse_u8(v, "host link")?)));
                } else if let Some(v) = field.strip_prefix("ber=") {
                    spec.ber = v
                        .parse::<f64>()
                        .map_err(|_| format!("bad error rate '{v}'"))?;
                } else if let Some(v) = field.strip_prefix("burst=") {
                    spec.burst = v
                        .parse::<u32>()
                        .map_err(|_| format!("bad burst length '{v}'"))?;
                } else if let Some(v) = field.strip_prefix("down=") {
                    let (s, e) = v
                        .split_once("..")
                        .ok_or_else(|| format!("down window '{v}' wants START..END"))?;
                    spec.down.push((parse_time(s)?, parse_time(e)?));
                } else if let Some(v) = field.strip_prefix("dead=") {
                    let (a, b) = v
                        .split_once('-')
                        .ok_or_else(|| format!("dead edge '{v}' wants A-B"))?;
                    plan = plan.with_dead_edge(parse_u8(a, "cube")?, parse_u8(b, "cube")?);
                } else if let Some(v) = field.strip_prefix("degrade=") {
                    plan.degrade = Some(
                        v.parse::<u64>()
                            .map_err(|_| format!("bad degrade threshold '{v}'"))?,
                    );
                } else {
                    return Err(format!("unknown fault-spec field '{field}'"));
                }
            }
            match target {
                Some(Some(key)) => plan.links.insert(key, spec).map_or((), |_| ()),
                Some(None) => plan.blanket = Some(spec),
                None if spec == LinkFaultSpec::default() => {}
                None => {
                    return Err(format!(
                        "clause '{clause}' sets link faults without link=/host=/all"
                    ))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn parse_u8(s: &str, what: &str) -> Result<u8, String> {
    s.parse::<u8>().map_err(|_| format!("bad {what} '{s}'"))
}

/// Parses `123ns` / `45us` into a [`Time`].
fn parse_time(s: &str) -> Result<Time, String> {
    if let Some(v) = s.strip_suffix("us") {
        let us: u64 = v.parse().map_err(|_| format!("bad time '{s}'"))?;
        Ok(Time::from_ns(us * 1_000))
    } else if let Some(v) = s.strip_suffix("ns") {
        let ns: u64 = v.parse().map_err(|_| format!("bad time '{s}'"))?;
        Ok(Time::from_ns(ns))
    } else {
        Err(format!("time '{s}' wants an ns or us suffix"))
    }
}

/// The live injector of one link: owns the link's flit sequence counter
/// and burst state, and answers "does this transmission fail?".
///
/// Draws consume one hash per flit, so a packet's outcome depends only
/// on where its flits fall in the link's transmission stream — not on
/// when the host thread happens to run the link's events.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    /// Per-link salt: seed and link key mixed once.
    salt: u64,
    /// `ber` folded to a 64-bit comparison threshold.
    threshold: u64,
    /// Down windows, sorted by start.
    down: Vec<(Time, Time)>,
    /// Permanent half-width lanes.
    half_width: bool,
    /// Burst length after each hit.
    burst: u32,
    /// Next flit sequence number on this link.
    flit_seq: u64,
    /// Flits still corrupted by the current burst.
    burst_left: u32,
}

impl LinkFaults {
    /// Builds the injector for `key` under `spec`.
    pub fn new(seed: u64, key: LinkKey, spec: LinkFaultSpec) -> LinkFaults {
        LinkFaults {
            salt: mix(seed ^ key.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            // ber in [0,1) scaled onto the full u64 range; draws compare
            // a uniform hash against this threshold.
            threshold: (spec.ber * (u64::MAX as f64)) as u64,
            down: spec.sorted_down(),
            half_width: spec.half_width,
            burst: spec.burst,
            flit_seq: 0,
            burst_left: 0,
        }
    }

    /// Draws corruption for one `flits`-flit transmission attempt.
    /// Consumes exactly one draw per flit (so accounting is exact) and
    /// returns `true` if any flit of the attempt was corrupted — a CRC
    /// failure at the receiver.
    pub fn corrupt_packet(&mut self, flits: u32) -> bool {
        let mut hit = false;
        for _ in 0..flits {
            let seq = self.flit_seq;
            self.flit_seq += 1;
            if self.burst_left > 0 {
                self.burst_left -= 1;
                hit = true;
            } else if self.threshold > 0 && mix(self.salt ^ seq) < self.threshold {
                self.burst_left = self.burst;
                hit = true;
            }
        }
        hit
    }

    /// The first instant at or after `t` when the wire is up.
    pub fn wire_up_at(&self, t: Time) -> Time {
        let mut t = t;
        for &(s, e) in &self.down {
            if s <= t && t < e {
                t = e;
            }
        }
        t
    }

    /// If a down window opens inside the transmission `[start, end)`,
    /// the instant the wire comes back (the packet is lost and must be
    /// retransmitted then). `start` must already be outside any window.
    pub fn down_cut(&self, start: Time, end: Time) -> Option<Time> {
        self.down
            .iter()
            .find(|&&(s, e)| start < s && s < end && e > s)
            .map(|&(_, e)| e)
    }

    /// `true` if the lanes are permanently half-width.
    pub fn half_width(&self) -> bool {
        self.half_width
    }

    /// Flit draws consumed so far (test hook for exact accounting).
    pub fn flit_seq(&self) -> u64 {
        self.flit_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_reproducible_and_link_distinct() {
        let plan = FaultPlan::new(42).with_all_links(LinkFaultSpec::ber(0.3));
        let draw = |key: LinkKey| {
            let mut inj = plan.injector(key).expect("blanket applies");
            (0..64).map(|_| inj.corrupt_packet(9)).collect::<Vec<_>>()
        };
        assert_eq!(draw(LinkKey::edge(0, 1)), draw(LinkKey::edge(0, 1)));
        assert_ne!(
            draw(LinkKey::edge(0, 1)),
            draw(LinkKey::edge(1, 0)),
            "each direction draws its own stream"
        );
        assert_ne!(draw(LinkKey::edge(0, 1)), draw(LinkKey::host(0)));
    }

    #[test]
    fn ber_zero_never_fires_and_injector_elides() {
        let plan = FaultPlan::new(1).with_all_links(LinkFaultSpec::ber(0.0));
        assert!(plan.injector(LinkKey::edge(0, 1)).is_none());
        assert!(plan.is_noop());
        // With a degrade policy the injector must exist (it carries the
        // link's error counter context) even at ber 0.
        let plan = plan.degrade_after(10);
        let mut inj = plan.injector(LinkKey::edge(0, 1)).expect("policy present");
        assert!((0..1000).all(|_| !inj.corrupt_packet(9)));
    }

    #[test]
    fn error_rate_tracks_threshold() {
        let plan = FaultPlan::new(3).with_all_links(LinkFaultSpec::ber(0.1));
        let mut inj = plan.injector(LinkKey::edge(2, 3)).expect("spec");
        let hits = (0..10_000).filter(|_| inj.corrupt_packet(1)).count();
        // 10% +- generous tolerance over 10k single-flit draws.
        assert!((700..=1_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn bursts_extend_hits() {
        let spec = LinkFaultSpec::ber(0.05).with_burst(64);
        let solo = LinkFaultSpec::ber(0.05);
        let plan_b = FaultPlan::new(9).with_all_links(spec);
        let plan_s = FaultPlan::new(9).with_all_links(solo);
        let count = |plan: &FaultPlan| {
            let mut inj = plan.injector(LinkKey::edge(0, 1)).expect("spec");
            (0..2_000).filter(|_| inj.corrupt_packet(4)).count()
        };
        assert!(
            count(&plan_b) > count(&plan_s),
            "a burst must corrupt more packets than independent errors"
        );
    }

    #[test]
    fn down_windows_skip_and_cut() {
        let spec = LinkFaultSpec::default().with_down(Time::from_ns(100), Time::from_ns(200));
        let inj = LinkFaults::new(0, LinkKey::edge(0, 1), spec);
        assert_eq!(inj.wire_up_at(Time::from_ns(50)), Time::from_ns(50));
        assert_eq!(inj.wire_up_at(Time::from_ns(100)), Time::from_ns(200));
        assert_eq!(inj.wire_up_at(Time::from_ns(150)), Time::from_ns(200));
        assert_eq!(inj.wire_up_at(Time::from_ns(200)), Time::from_ns(200));
        // A transmission straddling the window's opening edge is cut.
        assert_eq!(
            inj.down_cut(Time::from_ns(50), Time::from_ns(150)),
            Some(Time::from_ns(200))
        );
        assert_eq!(inj.down_cut(Time::from_ns(200), Time::from_ns(300)), None);
        assert_eq!(inj.down_cut(Time::from_ns(20), Time::from_ns(90)), None);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(LinkFaultSpec::ber(1.0).validate().is_err());
        assert!(LinkFaultSpec::ber(-0.1).validate().is_err());
        let empty = LinkFaultSpec::default().with_down(Time::from_ns(5), Time::from_ns(5));
        assert!(empty.validate().is_err());
        assert!(FaultPlan::new(0).with_dead_edge(2, 2).validate().is_err());
        let mut zero = FaultPlan::new(0);
        zero.degrade = Some(0);
        assert!(zero.validate().is_err());
    }

    #[test]
    fn parse_round_trips_the_readme_syntax() {
        let plan = FaultPlan::parse(
            5,
            "link=1>2 ber=1e-6 burst=4; host=0 down=10us..20us; all ber=1e-9; \
             dead=0-3; degrade=100",
        )
        .expect("spec parses");
        let s = plan.spec_for(LinkKey::edge(1, 2)).expect("explicit");
        assert_eq!(s.ber, 1e-6);
        assert_eq!(s.burst, 4);
        let h = plan.spec_for(LinkKey::host(0)).expect("explicit");
        assert_eq!(h.down, vec![(Time::from_ns(10_000), Time::from_ns(20_000))]);
        let b = plan.spec_for(LinkKey::edge(5, 6)).expect("blanket");
        assert_eq!(b.ber, 1e-9);
        assert_eq!(plan.dead_edges, vec![(0, 3)]);
        assert_eq!(plan.degrade, Some(100));

        assert!(FaultPlan::parse(0, "ber=0.5").is_err(), "needs a target");
        assert!(FaultPlan::parse(0, "all ber=2.0").is_err(), "rate range");
        assert!(FaultPlan::parse(0, "link=1 ber=0.1").is_err(), "FROM>TO");
        assert!(FaultPlan::parse(0, "all down=3..4").is_err(), "time unit");
        assert!(FaultPlan::parse(0, "bogus").is_err());
        assert!(FaultPlan::parse(0, "").expect("empty is empty").is_noop());
    }
}
