//! An offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` items the simulator uses — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] —
//! are provided here over a xoshiro256++ core. The generator is fully
//! deterministic for a given seed, which is all the simulator requires
//! (its calibration bands never depend on a specific stream).

#![forbid(unsafe_code)]

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen before subtracting: the span of a signed range can
                // exceed the type's positive max (e.g. -100i8..100), and
                // in-type wrapping_sub would sign-extend to a bogus span.
                let span = (self.end as i128 - self.start as i128) as u64;
                // Offsets reduce mod the type width, so the in-type
                // wrapping add lands back inside the range.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// The implementation uses a modulo draw; the bias is below 2⁻⁴⁰ for
    /// every span the workspace uses and irrelevant to the simulations.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> SmallRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
            let z: u64 = rng.gen_range(10..=10);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn signed_ranges_with_wide_spans_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: i8 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&x), "i8 sample {x} escaped range");
            let y: i64 = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
            let z: i16 = rng.gen_range(-30_000..=30_000);
            assert!((-30_000..=30_000).contains(&z));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
