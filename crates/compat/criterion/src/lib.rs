//! An offline, API-compatible subset of `criterion`.
//!
//! Provides the benchmark surface the workspace's `benches/` use —
//! [`Criterion::bench_function`], [`Bencher::iter`] / `iter_batched`,
//! benchmark groups with per-parameter inputs, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — timed with
//! `std::time::Instant` and reported on stdout. No statistics, plotting
//! or saved baselines: the goal is that `cargo bench` runs everywhere,
//! including build environments with no network access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration setup cost relates to the routine (accepted for
/// compatibility; the shim runs every batch at size one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch size irrelevant here.
    SmallInput,
    /// Large input: batch size irrelevant here.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Names a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn report(name: &str, iterations: u64, elapsed: Duration) {
    let per_iter_ns = elapsed.as_nanos() as f64 / iterations.max(1) as f64;
    let (value, unit) = if per_iter_ns >= 1e9 {
        (per_iter_ns / 1e9, "s")
    } else if per_iter_ns >= 1e6 {
        (per_iter_ns / 1e6, "ms")
    } else if per_iter_ns >= 1e3 {
        (per_iter_ns / 1e3, "µs")
    } else {
        (per_iter_ns, "ns")
    };
    println!("bench {name:<44} {value:>10.3} {unit}/iter  ({iterations} iters)");
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the iteration count used per benchmark (criterion semantics
    /// differ; here it is simply the number of timed iterations).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n as u64;
        self
    }

    /// Times `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.iterations, b.elapsed);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Times `f` for one parameter value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.iterations, b.elapsed);
        self
    }

    /// Times `f` under `id` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.iterations, b.elapsed);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
