//! An offline, API-compatible subset of `proptest`.
//!
//! The workspace's property tests use a small slice of proptest's surface:
//! the [`proptest!`] macro with `name in strategy` arguments, the
//! `prop_assert*` macros, range/tuple/`Just`/`any`/`prop_oneof!` strategies
//! and `prop::collection::vec`. This crate provides exactly that slice so
//! the tests run with no network access. Each property executes a fixed
//! number of deterministic cases (no shrinking); a failing case panics with
//! the usual assertion message.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Cases sampled per property. Deterministic across runs.
pub const CASES: u32 = 64;

/// The deterministic case generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the property's name, so every property gets
    /// a distinct but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut state = 0xC0FF_EE00_D15E_A5E5u64;
        for b in name.bytes() {
            state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Strategy combinators and implementations.
pub mod strategy {
    use super::{Range, TestRng};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Uniform choice between alternative strategies of one type
    /// (the engine behind `prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct OneOf<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> OneOf<S> {
        /// Builds a choice over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<S>) -> OneOf<S> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// `Vec` strategy with a size range (see [`crate::collection::vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Whole-domain strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    /// Types with a whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// A whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use super::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies (all of one concrete type here).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($s),+])
    };
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds, tuples and vecs compose.
        #[test]
        fn shim_self_test(
            x in 3u32..17,
            pair in (any::<bool>(), 0u8..4),
            v in prop::collection::vec(0u64..100, 0..20),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.1 < 4);
            prop_assert!(v.len() < 20);
            for e in &v {
                prop_assert!(*e < 100);
            }
        }

        /// prop_oneof over Just values picks only the listed values.
        #[test]
        fn oneof_picks_listed(pick in prop_oneof![Just(1u8), Just(4u8), Just(9u8)]) {
            prop_assert!(pick == 1 || pick == 4 || pick == 9);
        }
    }
}
