//! Run reports: what an experiment learns from one simulation.
//!
//! The report types live in [`hmc_fabric`] (a run of one cube and a run
//! of a memory network produce the same report shape); this module
//! re-exports them under their original paths.

pub use hmc_fabric::{CubeReport, PortReport, RunReport, TransitStats};
