//! Full-system simulation: host and device wired onto the event engine.

use hmc_des::{Component, ComponentId, Ctx, Delay, Engine, Time};
use hmc_device::{DeviceConfig, DeviceOutput, HmcDevice};
use hmc_host::{HostConfig, HostEvent, HostModel, Port, Traffic};
use hmc_packet::{LinkId, PortId, RequestPacket, ResponsePacket};

use crate::report::{PortReport, RunReport};

/// Default GUPS tag-pool size: 64 tags per port. Nine ports give the 576
/// maximum outstanding requests consistent with the paper's Figure 14
/// (≈535 measured for 4-bank patterns, just under the tag ceiling).
pub const GUPS_TAGS: u16 = 64;

/// Default stream tag-pool size: 80 tags per port, matching the Figure 8
/// saturation knee (the paper's latency stops growing near 100 in-flight
/// requests).
pub const STREAM_TAGS: u16 = 80;

/// Specification of one traffic port.
#[derive(Debug, Clone)]
pub struct PortSpec {
    /// Traffic source.
    pub traffic: Traffic,
    /// Tag-pool size (maximum outstanding requests).
    pub tags: u16,
}

impl PortSpec {
    /// A GUPS port with the default tag pool.
    pub fn gups(filter: hmc_mapping::AddressFilter, op: hmc_host::GupsOp) -> PortSpec {
        PortSpec { traffic: Traffic::Gups { filter, op }, tags: GUPS_TAGS }
    }

    /// A stream port with the default tag pool.
    pub fn stream(trace: hmc_workloads::Trace) -> PortSpec {
        PortSpec { traffic: Traffic::Stream { trace }, tags: STREAM_TAGS }
    }

    /// Overrides the tag-pool size.
    pub fn with_tags(mut self, tags: u16) -> PortSpec {
        self.tags = tags;
        self
    }
}

/// Configuration of a full host + cube system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The cube.
    pub device: DeviceConfig,
    /// The FPGA host.
    pub host: HostConfig,
    /// Root seed for all randomness (per-port RNGs derive from it).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's full measurement stack with the given seed.
    pub fn ac510(seed: u64) -> SystemConfig {
        SystemConfig {
            device: DeviceConfig::ac510_hmc(),
            host: HostConfig::ac510_default(),
            seed,
        }
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::ac510(0)
    }
}

/// Messages exchanged between the host and device components.
enum Msg {
    /// One FPGA cycle at the host.
    HostTick,
    /// Deactivate GUPS ports and freeze monitors (end of measurement).
    HostStop,
    /// Clear monitors (end of warmup).
    HostResetStats,
    /// A response fully arrived at the host on `link`.
    HostResponse { link: LinkId, pkt: ResponsePacket },
    /// A response finished draining to its port.
    PortDeliver { pkt: ResponsePacket },
    /// The device freed request-link input buffer space.
    ReturnRequestTokens { link: LinkId, flits: u32 },
    /// A request fully arrived at the device on `link`.
    DeviceRequest { link: LinkId, pkt: RequestPacket },
    /// Internal device work is due.
    DeviceWake,
    /// The host freed response RX buffer space.
    ReturnResponseTokens { link: LinkId, flits: u32 },
}

/// How a run terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// GUPS ports tick until the stop time, then drain.
    GupsUntil(Time),
    /// Stream ports tick until every trace is issued and answered.
    Stream,
}

struct HostComp {
    model: HostModel,
    device: Option<ComponentId>,
    mode: RunMode,
    period: Delay,
    measure_start: Time,
    measure_end: Option<Time>,
}

impl HostComp {
    fn relay(&self, events: Vec<HostEvent>, ctx: &mut Ctx<'_, Msg>) {
        let device = self.device.expect("device wired before first message");
        let me = ctx.self_id();
        for ev in events {
            match ev {
                HostEvent::RequestArrival { link, pkt, at } => {
                    ctx.send_at(at, device, Msg::DeviceRequest { link, pkt });
                }
                HostEvent::ResponseDrained { pkt, at, .. } => {
                    ctx.send_at(at, me, Msg::PortDeliver { pkt });
                }
                HostEvent::ResponseTokens { link, flits, at } => {
                    ctx.send_at(at, device, Msg::ReturnResponseTokens { link, flits });
                }
            }
        }
    }

    fn should_tick_again(&self, next: Time) -> bool {
        match self.mode {
            RunMode::GupsUntil(stop) => next < stop,
            RunMode::Stream => !self.model.all_done(),
        }
    }
}

impl Component<Msg> for HostComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::HostTick => {
                let events = self.model.tick(ctx.now());
                self.relay(events, ctx);
                let next = ctx.now() + self.period;
                if self.should_tick_again(next) {
                    ctx.send_self(self.period, Msg::HostTick);
                }
            }
            Msg::HostStop => {
                self.model.set_all_active(false);
                self.model.freeze_stats();
                self.measure_end = Some(ctx.now());
            }
            Msg::HostResetStats => {
                self.model.reset_stats();
                self.measure_start = ctx.now();
            }
            Msg::HostResponse { link, pkt } => {
                let events = self.model.on_response_arrival(ctx.now(), link, pkt);
                self.relay(events, ctx);
            }
            Msg::PortDeliver { pkt } => {
                self.model.deliver_response(ctx.now(), &pkt);
            }
            Msg::ReturnRequestTokens { link, flits } => {
                let events = self.model.on_request_tokens(ctx.now(), link, flits);
                self.relay(events, ctx);
            }
            _ => unreachable!("message addressed to the device reached the host"),
        }
    }

    fn name(&self) -> &str {
        "host"
    }
}

struct DeviceComp {
    device: HmcDevice,
    host: ComponentId,
    wake_at: Option<Time>,
}

impl Component<Msg> for DeviceComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        if self.wake_at.is_some_and(|w| w <= now) {
            self.wake_at = None;
        }
        match msg {
            Msg::DeviceRequest { link, pkt } => self.device.on_request(now, link, pkt),
            Msg::ReturnResponseTokens { link, flits } => {
                self.device.return_response_tokens(link, flits);
            }
            Msg::DeviceWake => {}
            _ => unreachable!("message addressed to the host reached the device"),
        }
        for out in self.device.advance(now) {
            match out {
                DeviceOutput::Response { link, pkt, at } => {
                    ctx.send_at(at, self.host, Msg::HostResponse { link, pkt });
                }
                DeviceOutput::RequestTokens { link, flits } => {
                    ctx.send(Delay::ZERO, self.host, Msg::ReturnRequestTokens { link, flits });
                }
            }
        }
        if let Some(t) = self.device.next_wake() {
            debug_assert!(t >= now, "device wake in the past");
            if self.wake_at.is_none_or(|w| w > t) {
                let me = ctx.self_id();
                ctx.send_at(t, me, Msg::DeviceWake);
                self.wake_at = Some(t);
            }
        }
    }

    fn name(&self) -> &str {
        "device"
    }
}

/// A complete simulated measurement system: FPGA host plus HMC device on a
/// deterministic event engine.
///
/// One `SystemSim` performs one run ([`SystemSim::run_gups`] or
/// [`SystemSim::run_streams`]) and is then consumed by the report.
///
/// # Examples
///
/// ```
/// use hmc_des::Delay;
/// use hmc_host::GupsOp;
/// use hmc_mapping::AccessPattern;
/// use hmc_packet::PayloadSize;
/// use hmc_sim::{PortSpec, SystemConfig, SystemSim};
///
/// let cfg = SystemConfig::ac510(42);
/// let map = cfg.device.map;
/// let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
/// let ports = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B64)); 2];
/// let mut sim = SystemSim::new(cfg, ports);
/// let report = sim.run_gups(Delay::from_us(5), Delay::from_us(20));
/// assert!(report.total_accesses() > 0);
/// assert!(report.mean_latency_ns() > 500.0);
/// ```
pub struct SystemSim {
    engine: Engine<Msg>,
    host: ComponentId,
    device: ComponentId,
    started: bool,
}

impl SystemSim {
    /// Builds a system with one port per spec.
    ///
    /// The host's request-link token pool is wired to the device's link
    /// input buffer automatically.
    ///
    /// # Panics
    ///
    /// Panics if the configurations are invalid, `specs` is empty, or the
    /// host and device disagree on link count.
    pub fn new(cfg: SystemConfig, specs: Vec<PortSpec>) -> SystemSim {
        assert!(!specs.is_empty(), "a system needs at least one port");
        assert_eq!(
            usize::from(cfg.host.link_count),
            cfg.device.link_count(),
            "host and device must agree on link count"
        );
        let device_model = HmcDevice::new(cfg.device.clone());
        let mut host_cfg = cfg.host.clone();
        // Request-direction tokens guard the cube's link input buffers.
        host_cfg.link.input_buffer_flits = device_model.request_tokens_per_link();
        let ports: Vec<Port> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let seed =
                    cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64 + 1);
                Port::new(PortId(i as u8), spec.traffic, spec.tags, seed)
            })
            .collect();
        let host_model = HostModel::new(host_cfg, ports);
        let period = host_model.config().fpga_period;

        let mut engine = Engine::new();
        let host = engine.add_component(Box::new(HostComp {
            model: host_model,
            device: None,
            mode: RunMode::Stream,
            period,
            measure_start: Time::ZERO,
            measure_end: None,
        }));
        let device = engine.add_component(Box::new(DeviceComp {
            device: device_model,
            host,
            wake_at: None,
        }));
        engine
            .component_mut::<HostComp>(host)
            .expect("host registered")
            .device = Some(device);
        SystemSim { engine, host, device, started: false }
    }

    /// Runs the GUPS firmware: every port generates random requests for
    /// `warmup + measure`, monitors reset after `warmup`, and the
    /// measurement freezes at the end while in-flight traffic drains.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_gups(&mut self, warmup: Delay, measure: Delay) -> RunReport {
        assert!(!self.started, "a SystemSim performs a single run");
        self.started = true;
        let stop_at = Time::ZERO + warmup + measure;
        {
            let host = self.engine.component_mut::<HostComp>(self.host).expect("host");
            host.mode = RunMode::GupsUntil(stop_at);
            host.model.set_all_active(true);
        }
        self.engine.schedule(Time::ZERO, self.host, Msg::HostTick);
        self.engine
            .schedule(Time::ZERO + warmup, self.host, Msg::HostResetStats);
        self.engine.schedule(stop_at, self.host, Msg::HostStop);
        self.engine.run_to_quiescence();
        self.collect()
    }

    /// Runs the multi-port stream firmware: every port replays its trace
    /// as fast as tags allow; the run ends when all responses are home.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_streams(&mut self) -> RunReport {
        assert!(!self.started, "a SystemSim performs a single run");
        self.started = true;
        {
            let host = self.engine.component_mut::<HostComp>(self.host).expect("host");
            host.mode = RunMode::Stream;
        }
        self.engine.schedule(Time::ZERO, self.host, Msg::HostTick);
        self.engine.run_to_quiescence();
        self.collect()
    }

    /// Peak-occupancy census of the device's internal buffers after a
    /// run; a calibration/debugging aid.
    #[doc(hidden)]
    pub fn device_peak_census(&self) -> Vec<(String, u64)> {
        self.engine
            .component::<DeviceComp>(self.device)
            .expect("device registered")
            .device
            .peak_census()
    }

    fn collect(&mut self) -> RunReport {
        let sim_end = self.engine.now();
        let host = self.engine.component::<HostComp>(self.host).expect("host");
        let measure_end = host.measure_end.unwrap_or(sim_end);
        let elapsed = measure_end.saturating_since(host.measure_start);
        let ports = host
            .model
            .ports()
            .iter()
            .map(|p| PortReport {
                port: p.id(),
                issued: p.issued(),
                completed: p.completed(),
                latency: *p.latency(),
                bytes: *p.bytes(),
                reads: p.reads_recorded(),
                writes: p.writes_recorded(),
            })
            .collect();
        let device_stats = self
            .engine
            .component::<DeviceComp>(self.device)
            .expect("device registered")
            .device
            .stats();
        RunReport { ports, elapsed, device: device_stats, sim_end }
    }
}
