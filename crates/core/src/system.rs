//! Full-system simulation: a thin wrapper over the single-cube case of
//! the [`hmc_fabric`] memory-network simulator.
//!
//! [`SystemSim`] preserves the original single-cube API (the paper's
//! AC-510 measurement stack); multi-cube systems are built by lifting a
//! [`SystemConfig`] into a [`FabricConfig`] with
//! [`SystemConfig::into_fabric`] and driving [`FabricSim`] directly.

use hmc_des::Delay;
use hmc_device::DeviceConfig;
use hmc_fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim, Topology};
use hmc_host::HostConfig;
use hmc_workloads::{source_factory, GupsSource, SourceFactory, TraceReplay, TrafficSource};

use crate::report::RunReport;

pub use hmc_fabric::{GUPS_TAGS, STREAM_TAGS};

/// Specification of one traffic port.
///
/// The spec carries a [`SourceFactory`] rather than a built source so that
/// one spec can be cloned across ports (`vec![spec; 9]`) while each port's
/// source is still built with its own deterministically derived seed.
#[derive(Clone)]
pub struct PortSpec {
    /// Builds the port's traffic source from the port's derived seed.
    pub source: SourceFactory,
    /// Tag-pool size (maximum outstanding requests).
    pub tags: u16,
}

impl std::fmt::Debug for PortSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortSpec")
            .field("tags", &self.tags)
            .finish_non_exhaustive()
    }
}

impl PortSpec {
    /// A GUPS port with the default tag pool.
    pub fn gups(filter: hmc_mapping::AddressFilter, op: hmc_workloads::GupsOp) -> PortSpec {
        PortSpec {
            source: source_factory(move |seed| Box::new(GupsSource::new(filter, op, seed))),
            tags: GUPS_TAGS,
        }
    }

    /// A stream port with the default tag pool.
    pub fn stream(trace: hmc_workloads::Trace) -> PortSpec {
        PortSpec {
            source: source_factory(move |_seed| Box::new(TraceReplay::new(trace.clone()))),
            tags: STREAM_TAGS,
        }
    }

    /// A port over any traffic source (pointer chase, offload stream, a
    /// custom closed-loop generator, ...) with the default stream tag
    /// pool. The factory receives the port's derived seed.
    ///
    /// ```
    /// use hmc_sim::workloads::PointerChase;
    /// use hmc_sim::prelude::*;
    ///
    /// let map = AddressMap::hmc_gen2_default();
    /// let vaults: Vec<VaultId> = (0..16).map(VaultId).collect();
    /// let spec = PortSpec::from_source(move |seed| {
    ///     Box::new(PointerChase::new(&map, &vaults, PayloadSize::B64, 1, 8, seed))
    /// });
    /// let report = SystemSim::new(SystemConfig::ac510(1), vec![spec]).run_streams();
    /// assert_eq!(report.ports[0].completed, 8);
    /// ```
    pub fn from_source<F>(factory: F) -> PortSpec
    where
        F: Fn(u64) -> Box<dyn TrafficSource> + Send + Sync + 'static,
    {
        PortSpec {
            source: source_factory(factory),
            tags: STREAM_TAGS,
        }
    }

    /// Overrides the tag-pool size.
    pub fn with_tags(mut self, tags: u16) -> PortSpec {
        self.tags = tags;
        self
    }

    /// Lifts this port into a fabric port statically targeting `cube`.
    pub fn targeting(self, cube: CubeId) -> FabricPortSpec {
        FabricPortSpec {
            source: self.source,
            tags: self.tags,
            targeting: hmc_fabric::CubeTargeting::Fixed(cube),
        }
    }

    /// Lifts this port into a fabric port whose CUB field is derived per
    /// request from the workload's global address under `map`.
    pub fn addressed(self, map: hmc_fabric::FabricAddressMap) -> FabricPortSpec {
        FabricPortSpec {
            source: self.source,
            tags: self.tags,
            targeting: hmc_fabric::CubeTargeting::Addressed(map),
        }
    }
}

/// Configuration of a full host + cube system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The cube.
    pub device: DeviceConfig,
    /// The FPGA host.
    pub host: HostConfig,
    /// Root seed for all randomness (per-port RNGs derive from it).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's full measurement stack with the given seed.
    pub fn ac510(seed: u64) -> SystemConfig {
        SystemConfig {
            device: DeviceConfig::ac510_hmc(),
            host: HostConfig::ac510_default(),
            seed,
        }
    }

    /// Lifts this single-cube system into an `n`-cube memory network of
    /// identical cubes in the given topology (cube 0 keeps the host).
    pub fn into_fabric(self, topology: Topology, cube_count: u8) -> FabricConfig {
        let mut cfg = FabricConfig::single(self.device, self.host, self.seed);
        cfg.topology = topology;
        cfg.cube_count = cube_count;
        cfg
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::ac510(0)
    }
}

/// A complete simulated measurement system: FPGA host plus HMC device on a
/// deterministic event engine — the single-cube case of [`FabricSim`].
///
/// One `SystemSim` performs one run ([`SystemSim::run_gups`] or
/// [`SystemSim::run_streams`]) and is then consumed by the report.
///
/// # Examples
///
/// ```
/// use hmc_des::Delay;
/// use hmc_host::GupsOp;
/// use hmc_mapping::AccessPattern;
/// use hmc_packet::PayloadSize;
/// use hmc_sim::{PortSpec, SystemConfig, SystemSim};
///
/// let cfg = SystemConfig::ac510(42);
/// let map = cfg.device.map;
/// let filter = AccessPattern::Vaults { count: 16 }.filter(&map);
/// let ports = vec![PortSpec::gups(filter, GupsOp::Read(PayloadSize::B64)); 2];
/// let mut sim = SystemSim::new(cfg, ports);
/// let report = sim.run_gups(Delay::from_us(5), Delay::from_us(20));
/// assert!(report.total_accesses() > 0);
/// assert!(report.mean_latency_ns() > 500.0);
/// ```
pub struct SystemSim {
    inner: FabricSim,
}

impl SystemSim {
    /// Builds a system with one port per spec.
    ///
    /// The host's request-link token pool is wired to the device's link
    /// input buffer automatically.
    ///
    /// # Panics
    ///
    /// Panics if the configurations are invalid, `specs` is empty, or the
    /// host and device disagree on link count.
    pub fn new(cfg: SystemConfig, specs: Vec<PortSpec>) -> SystemSim {
        SystemSim::with_telemetry(cfg, specs, hmc_telemetry::Probe::off())
    }

    /// Builds a system with a telemetry probe attached to every component
    /// (see [`FabricSim::with_telemetry`]). With
    /// [`Probe::off`](hmc_telemetry::Probe::off) this is exactly
    /// [`SystemSim::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SystemSim::new`].
    pub fn with_telemetry(
        cfg: SystemConfig,
        specs: Vec<PortSpec>,
        probe: hmc_telemetry::Probe,
    ) -> SystemSim {
        let fabric = FabricConfig::single(cfg.device, cfg.host, cfg.seed);
        let specs = specs
            .into_iter()
            .map(|s| s.targeting(CubeId::HOST))
            .collect();
        SystemSim {
            inner: FabricSim::with_telemetry(fabric, specs, probe),
        }
    }

    /// Requests a parallel-domain budget (see [`FabricSim::with_domains`]).
    /// A single-cube system always runs serially, so this is an API-parity
    /// no-op kept so generic drivers can thread one `--domains` setting
    /// through either simulator type.
    pub fn with_domains(mut self, domains: usize) -> SystemSim {
        self.inner = self.inner.with_domains(domains);
        self
    }

    /// Runs the GUPS firmware: every port generates random requests for
    /// `warmup + measure`, monitors reset after `warmup`, and the
    /// measurement freezes at the end while in-flight traffic drains.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_gups(&mut self, warmup: Delay, measure: Delay) -> RunReport {
        self.inner.run_gups(warmup, measure)
    }

    /// Runs the multi-port stream firmware: every port replays its trace
    /// as fast as tags allow; the run ends when all responses are home.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_streams(&mut self) -> RunReport {
        self.inner.run_streams()
    }

    /// Event-engine counters for this system (see
    /// [`FabricSim::engine_stats`]): with the event-driven core,
    /// `dispatched` scales with actual traffic instead of with simulated
    /// FPGA cycles.
    pub fn engine_stats(&self) -> hmc_des::EngineStats {
        self.inner.engine_stats()
    }

    /// Peak-occupancy census of the device's internal buffers after a
    /// run; a calibration/debugging aid.
    #[doc(hidden)]
    pub fn device_peak_census(&self) -> Vec<(String, u64)> {
        self.inner.device_peak_census(CubeId::HOST)
    }
}
