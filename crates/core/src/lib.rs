//! # hmc-sim
//!
//! The public API of the `hmc-noc-sim` reproduction of *"Performance
//! Implications of NoCs on 3D-Stacked Memories: Insights from the Hybrid
//! Memory Cube"* (Hadidi et al., ISPASS 2018).
//!
//! This crate assembles the workspace's substrates — the [`hmc_device`]
//! cube model, the [`hmc_host`] FPGA model, workload generators and
//! statistics — into a deterministic full-system simulation:
//!
//! 1. describe the system with a [`SystemConfig`] (defaults model the
//!    paper's AC-510 board: 4 GB HMC 1.1, two half-width 15 Gbps links,
//!    187.5 MHz FPGA with nine ports);
//! 2. describe the traffic with [`PortSpec`]s — GUPS address generators
//!    behind mask/anti-mask [`AccessPattern`] filters, or trace-driven
//!    stream ports;
//! 3. run [`SystemSim::run_gups`] (fixed-duration, high contention) or
//!    [`SystemSim::run_streams`] (bounded traces, tunable load) and read
//!    the [`RunReport`].
//!
//! ```
//! use hmc_des::Delay;
//! use hmc_sim::prelude::*;
//!
//! // One port of random 128 B reads over all 16 vaults.
//! let cfg = SystemConfig::ac510(7);
//! let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.device.map);
//! let port = PortSpec::gups(filter, GupsOp::Read(PayloadSize::B128));
//! let report = SystemSim::new(cfg, vec![port])
//!     .run_gups(Delay::from_us(5), Delay::from_us(20));
//! assert!(report.total_bandwidth_gbs() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod system;

pub use report::{CubeReport, PortReport, RunReport, TransitStats};
pub use system::{PortSpec, SystemConfig, SystemSim, GUPS_TAGS, STREAM_TAGS};

// Re-export the substrate crates under stable names.
pub use hmc_ddr as ddr;
pub use hmc_des as des;
pub use hmc_device as device;
pub use hmc_dram as dram;
pub use hmc_fabric as fabric;
pub use hmc_host as host;
pub use hmc_link as link;
pub use hmc_mapping as mapping;
pub use hmc_noc as noc;
pub use hmc_packet as packet;
pub use hmc_stats as stats;
pub use hmc_telemetry as telemetry;
pub use hmc_workloads as workloads;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use crate::{PortSpec, RunReport, SystemConfig, SystemSim, GUPS_TAGS, STREAM_TAGS};
    pub use hmc_des::{Delay, Time};
    pub use hmc_device::DeviceConfig;
    pub use hmc_fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim, Topology};
    pub use hmc_host::{GupsOp, HostConfig};
    pub use hmc_mapping::{
        AccessPattern, AddressMap, BankId, CubePolicy, CubeTargeting, FabricAddressMap, Geometry,
        VaultId,
    };
    pub use hmc_packet::{Address, GlobalAddress, PayloadSize, PortId, RequestKind};
    pub use hmc_stats::{Histogram, LatencyRecorder, LatencySketch, Summary, Table};
    pub use hmc_telemetry::{Hub, HubConfig, LinkDir, Probe, SharedHub, Stage};
    pub use hmc_workloads::{
        random_reads_in_banks, random_reads_in_vaults, vault_combinations, Feedback, OffloadSource,
        Paced, PointerChase, SourceStep, Trace, TrafficSource,
    };
}
