//! Transaction-layer packets and their flit-level sizes (Table I).

use core::fmt;

use crate::address::{Address, CubeId, PortId, Tag};
use crate::flit::{flits_to_bytes, OVERHEAD_FLITS};
use crate::size::PayloadSize;

/// The operation a request packet asks the cube to perform.
///
/// The GUPS firmware can issue read-only, write-only or read-modify-write
/// requests (Section III-B); the paper's measurements are read-only unless
/// stated otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read `size` bytes. The request carries no data payload.
    Read {
        /// Bytes of data the response must return.
        size: PayloadSize,
    },
    /// Write `size` bytes. The request carries the data payload.
    Write {
        /// Bytes of data carried by the request.
        size: PayloadSize,
    },
    /// A 16-byte atomic read-modify-write (HMC "dual 8-byte add" class):
    /// one data flit travels with the request, the response is header/tail
    /// only.
    ReadModifyWrite,
}

impl RequestKind {
    /// The data payload this request's *response* will carry.
    #[inline]
    pub fn response_data(self) -> Option<PayloadSize> {
        match self {
            RequestKind::Read { size } => Some(size),
            RequestKind::Write { .. } | RequestKind::ReadModifyWrite => None,
        }
    }

    /// The data payload size named by the request (read length or write
    /// length), used for DRAM burst accounting.
    #[inline]
    pub fn access_size(self) -> PayloadSize {
        match self {
            RequestKind::Read { size } | RequestKind::Write { size } => size,
            RequestKind::ReadModifyWrite => PayloadSize::B16,
        }
    }

    /// `true` for reads (the paper's default traffic).
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, RequestKind::Read { .. })
    }

    /// Flits in the request packet, per Table I.
    ///
    /// | Type  | Request          |
    /// |-------|------------------|
    /// | Read  | 1 flit           |
    /// | Write | 2–9 flits        |
    #[inline]
    pub fn request_flits(self) -> u32 {
        match self {
            RequestKind::Read { .. } => OVERHEAD_FLITS,
            RequestKind::Write { size } => OVERHEAD_FLITS + size.data_flits(),
            RequestKind::ReadModifyWrite => OVERHEAD_FLITS + PayloadSize::B16.data_flits(),
        }
    }

    /// Flits in the matching response packet, per Table I.
    ///
    /// | Type  | Response         |
    /// |-------|------------------|
    /// | Read  | 2–9 flits        |
    /// | Write | 1 flit           |
    #[inline]
    pub fn response_flits(self) -> u32 {
        match self.response_data() {
            Some(size) => OVERHEAD_FLITS + size.data_flits(),
            None => OVERHEAD_FLITS,
        }
    }

    /// Bytes on the request link for this transaction (header + tail +
    /// request payload).
    #[inline]
    pub fn request_bytes(self) -> u64 {
        flits_to_bytes(self.request_flits())
    }

    /// Bytes on the response link for this transaction.
    #[inline]
    pub fn response_bytes(self) -> u64 {
        flits_to_bytes(self.response_flits())
    }

    /// Total bytes moved in both directions by one transaction — the
    /// quantity the paper's bandwidth formula accumulates (Section III-B:
    /// "cumulative size of request and response packets including header,
    /// tail and data payload").
    #[inline]
    pub fn round_trip_bytes(self) -> u64 {
        self.request_bytes() + self.response_bytes()
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestKind::Read { size } => write!(f, "RD{}", size.bytes()),
            RequestKind::Write { size } => write!(f, "WR{}", size.bytes()),
            RequestKind::ReadModifyWrite => write!(f, "RMW16"),
        }
    }
}

/// A request packet travelling from host to cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPacket {
    /// The port that issued the request (returned in the response SLID).
    pub port: PortId,
    /// The port-local tag identifying this outstanding transaction.
    pub tag: Tag,
    /// The destination cube — the header's CUB field (widened to 6 bits
    /// here; see `DESIGN_CUB64.md`), stamped by the host when the global
    /// address is split. [`CubeId::HOST`] on a single-cube system.
    pub cube: CubeId,
    /// The 34-bit in-cube target address.
    pub addr: Address,
    /// The requested operation.
    pub kind: RequestKind,
}

impl RequestPacket {
    /// Flits occupied on the request link.
    #[inline]
    pub fn flits(&self) -> u32 {
        self.kind.request_flits()
    }
}

impl fmt::Display for RequestPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} @{}", self.port, self.tag, self.kind, self.addr)
    }
}

/// A response packet travelling from cube to host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponsePacket {
    /// The port the matching request came from.
    pub port: PortId,
    /// The tag of the matching request.
    pub tag: Tag,
    /// The operation the response completes.
    pub kind: RequestKind,
}

impl ResponsePacket {
    /// Builds the response matching `req`.
    pub fn for_request(req: &RequestPacket) -> ResponsePacket {
        ResponsePacket {
            port: req.port,
            tag: req.tag,
            kind: req.kind,
        }
    }

    /// Flits occupied on the response link.
    #[inline]
    pub fn flits(&self) -> u32 {
        self.kind.response_flits()
    }
}

impl fmt::Display for ResponsePacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resp {} {} {}", self.port, self.tag, self.kind)
    }
}

/// Link-layer flow packets (no data payload; one flit).
///
/// These never reach the vaults: they maintain the link protocol. The
/// simulator accounts for their bandwidth as part of the link protocol
/// overhead factor rather than modelling each exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowType {
    /// Token return: reports freed input-buffer space.
    TokenReturn,
    /// Retry pointer return used by the link retry protocol.
    RetryPointerReturn,
    /// Start-retry marker.
    InitRetry,
}

impl FlowType {
    /// Flow packets are a single flit (Figure 4a).
    #[inline]
    pub const fn flits(self) -> u32 {
        OVERHEAD_FLITS
    }
}

/// Bits of the per-packet CRC carried in every tail (HMC 2.1). The
/// simulator never computes the checksum — fault injection decides which
/// transmissions fail it — but the field width anchors the link-retry
/// protocol the transmit model implements.
pub const CRC_BITS: u32 = 32;

/// Bits of the tail's link sequence number (SEQ); see [`LinkSeq`].
pub const SEQ_BITS: u32 = 3;

/// Bits of the forward/return retry pointers (FRP/RRP) that index the
/// transmitter's retry buffer.
pub const RETRY_POINTER_BITS: u32 = 8;

/// The link-layer sequence number stamped on every transmitted packet.
///
/// SEQ is a [`SEQ_BITS`]-bit wrapping counter per link direction; the
/// receiver uses it to detect the gap a CRC-dropped packet leaves and to
/// discard duplicates during retransmission, which is what makes the
/// retry protocol loss-, duplication- and reorder-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct LinkSeq(pub u8);

impl LinkSeq {
    /// SEQ wraps modulo this.
    pub const MODULUS: u8 = 1 << SEQ_BITS;

    /// The sequence number following `self`.
    #[inline]
    #[must_use]
    pub fn next(self) -> LinkSeq {
        LinkSeq((self.0 + 1) % LinkSeq::MODULUS)
    }

    /// `true` if `other` is the packet expected right after `self`.
    #[inline]
    pub fn precedes(self, other: LinkSeq) -> bool {
        self.next() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I, all four cells, for every legal payload size.
    #[test]
    fn table_1_flit_counts() {
        for bytes in (16..=128).step_by(16) {
            let size = PayloadSize::new(bytes).unwrap();
            let read = RequestKind::Read { size };
            let write = RequestKind::Write { size };
            // Read request: empty data, 1 flit total.
            assert_eq!(read.request_flits(), 1);
            // Read response: 1..=8 data flits plus overhead → 2..=9.
            assert_eq!(read.response_flits(), 1 + bytes / 16);
            assert!((2..=9).contains(&read.response_flits()));
            // Write request: 2..=9 flits.
            assert_eq!(write.request_flits(), 1 + bytes / 16);
            assert!((2..=9).contains(&write.request_flits()));
            // Write response: 1 flit.
            assert_eq!(write.response_flits(), 1);
        }
    }

    #[test]
    fn round_trip_bytes_match_paper_formula() {
        // A 128 B read moves 16 B of request and 144 B of response.
        let rd128 = RequestKind::Read {
            size: PayloadSize::B128,
        };
        assert_eq!(rd128.request_bytes(), 16);
        assert_eq!(rd128.response_bytes(), 144);
        assert_eq!(rd128.round_trip_bytes(), 160);
        // A 16 B read moves 16 B + 32 B = 48 B.
        let rd16 = RequestKind::Read {
            size: PayloadSize::B16,
        };
        assert_eq!(rd16.round_trip_bytes(), 48);
        // A 64 B write moves 80 B + 16 B = 96 B.
        let wr64 = RequestKind::Write {
            size: PayloadSize::B64,
        };
        assert_eq!(wr64.round_trip_bytes(), 96);
    }

    #[test]
    fn rmw_is_two_flit_request_one_flit_response() {
        let rmw = RequestKind::ReadModifyWrite;
        assert_eq!(rmw.request_flits(), 2);
        assert_eq!(rmw.response_flits(), 1);
        assert_eq!(rmw.access_size(), PayloadSize::B16);
    }

    #[test]
    fn response_mirrors_request_identity() {
        let req = RequestPacket {
            port: PortId(4),
            tag: Tag(17),
            cube: CubeId::HOST,
            addr: Address::new(0x1000),
            kind: RequestKind::Read {
                size: PayloadSize::B32,
            },
        };
        let resp = ResponsePacket::for_request(&req);
        assert_eq!(resp.port, req.port);
        assert_eq!(resp.tag, req.tag);
        assert_eq!(resp.flits(), 3);
    }

    #[test]
    fn flow_packets_are_single_flit() {
        assert_eq!(FlowType::TokenReturn.flits(), 1);
        assert_eq!(FlowType::RetryPointerReturn.flits(), 1);
        assert_eq!(FlowType::InitRetry.flits(), 1);
    }

    #[test]
    fn link_seq_wraps_modulo_eight() {
        let mut s = LinkSeq::default();
        for _ in 0..LinkSeq::MODULUS {
            let n = s.next();
            assert!(s.precedes(n));
            assert!(n.0 < LinkSeq::MODULUS);
            s = n;
        }
        assert_eq!(s, LinkSeq::default(), "full cycle returns to start");
        assert_eq!(LinkSeq::MODULUS, 8, "SEQ is a 3-bit field");
    }

    #[test]
    fn reads_identified_as_reads() {
        assert!(RequestKind::Read {
            size: PayloadSize::B16
        }
        .is_read());
        assert!(!RequestKind::Write {
            size: PayloadSize::B16
        }
        .is_read());
        assert!(!RequestKind::ReadModifyWrite.is_read());
    }

    #[test]
    fn display_formats_are_nonempty() {
        let req = RequestPacket {
            port: PortId(0),
            tag: Tag(1),
            cube: CubeId::HOST,
            addr: Address::new(0),
            kind: RequestKind::Write {
                size: PayloadSize::B64,
            },
        };
        assert!(req.to_string().contains("WR64"));
        assert!(ResponsePacket::for_request(&req)
            .to_string()
            .contains("resp"));
    }
}
