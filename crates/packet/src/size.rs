//! Validated data-payload sizes.

use core::fmt;

use crate::flit::FLIT_BYTES;

/// Error returned when a byte count is not a legal HMC data-payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPayloadSize {
    /// The rejected byte count.
    pub bytes: u32,
}

impl fmt::Display for InvalidPayloadSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid HMC payload size {} B (must be a multiple of {} between {} and {})",
            self.bytes,
            FLIT_BYTES,
            FLIT_BYTES,
            PayloadSize::MAX_BYTES
        )
    }
}

impl std::error::Error for InvalidPayloadSize {}

/// A data-payload size carried by a request or response packet.
///
/// HMC 1.1 moves data in 16 B flits; a packet carries between one and eight
/// data flits (16–128 B). The type guarantees the invariant at construction
/// (C-VALIDATE), so flit arithmetic downstream cannot go out of range.
///
/// # Examples
///
/// ```
/// use hmc_packet::PayloadSize;
///
/// let size = PayloadSize::new(64)?;
/// assert_eq!(size.bytes(), 64);
/// assert_eq!(size.data_flits(), 4);
/// assert!(PayloadSize::new(20).is_err());
/// # Ok::<(), hmc_packet::InvalidPayloadSize>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PayloadSize(u32);

impl PayloadSize {
    /// 16 B — one data flit; the smallest request the paper issues.
    pub const B16: PayloadSize = PayloadSize(16);
    /// 32 B — the DRAM data-bus granularity of a vault.
    pub const B32: PayloadSize = PayloadSize(32);
    /// 48 B.
    pub const B48: PayloadSize = PayloadSize(48);
    /// 64 B.
    pub const B64: PayloadSize = PayloadSize(64);
    /// 80 B.
    pub const B80: PayloadSize = PayloadSize(80);
    /// 96 B.
    pub const B96: PayloadSize = PayloadSize(96);
    /// 112 B.
    pub const B112: PayloadSize = PayloadSize(112);
    /// 128 B — the largest HMC 1.1 payload and the paper's largest request.
    pub const B128: PayloadSize = PayloadSize(128);

    /// Largest legal payload in bytes.
    pub const MAX_BYTES: u32 = 128;

    /// The four sizes the paper sweeps in every experiment.
    pub const PAPER_SWEEP: [PayloadSize; 4] = [
        PayloadSize::B16,
        PayloadSize::B32,
        PayloadSize::B64,
        PayloadSize::B128,
    ];

    /// Creates a payload size after validating it is a flit multiple in
    /// `16..=128`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPayloadSize`] if `bytes` is zero, not a multiple of
    /// 16, or greater than 128.
    pub fn new(bytes: u32) -> Result<PayloadSize, InvalidPayloadSize> {
        if bytes == 0 || !bytes.is_multiple_of(FLIT_BYTES as u32) || bytes > Self::MAX_BYTES {
            return Err(InvalidPayloadSize { bytes });
        }
        Ok(PayloadSize(bytes))
    }

    /// The payload size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        self.0
    }

    /// The number of 16 B data flits this payload occupies (1–8).
    #[inline]
    pub const fn data_flits(self) -> u32 {
        self.0 / FLIT_BYTES as u32
    }

    /// The number of 32 B DRAM bursts needed to move this payload across a
    /// vault's TSV data bus. Payloads smaller than the 32 B bus granularity
    /// still consume one full burst (Section IV-A of the paper).
    #[inline]
    pub const fn dram_bursts(self) -> u32 {
        self.0.div_ceil(32)
    }
}

impl fmt::Display for PayloadSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_flit_multiples() {
        for bytes in (16..=128).step_by(16) {
            let s = PayloadSize::new(bytes).expect("legal size");
            assert_eq!(s.bytes(), bytes);
            assert_eq!(s.data_flits(), bytes / 16);
        }
    }

    #[test]
    fn rejects_illegal_sizes() {
        for bytes in [0, 1, 8, 15, 17, 24, 130, 144, 256] {
            assert_eq!(PayloadSize::new(bytes), Err(InvalidPayloadSize { bytes }));
        }
    }

    #[test]
    fn dram_bursts_round_up_to_bus_granularity() {
        assert_eq!(PayloadSize::B16.dram_bursts(), 1);
        assert_eq!(PayloadSize::B32.dram_bursts(), 1);
        assert_eq!(PayloadSize::B48.dram_bursts(), 2);
        assert_eq!(PayloadSize::B64.dram_bursts(), 2);
        assert_eq!(PayloadSize::B128.dram_bursts(), 4);
    }

    #[test]
    fn paper_sweep_is_the_four_figure_sizes() {
        let bytes: Vec<u32> = PayloadSize::PAPER_SWEEP.iter().map(|s| s.bytes()).collect();
        assert_eq!(bytes, vec![16, 32, 64, 128]);
    }

    #[test]
    fn error_display_mentions_bounds() {
        let err = PayloadSize::new(20).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("20"));
        assert!(text.contains("128"));
    }
}
