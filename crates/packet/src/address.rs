//! Request addresses and identity newtypes shared across the workspace.

use core::fmt;

/// A request address: the 34-bit address field of an HMC request header.
///
/// HMC 1.1 headers carry 34 address bits; on a 4 GB cube the two high-order
/// bits are ignored (Section II-A). [`Address::new`] masks to 34 bits so the
/// invariant holds by construction; device-level masking to the cube
/// capacity happens in the address map.
///
/// # Examples
///
/// ```
/// use hmc_packet::Address;
///
/// let a = Address::new(0x3_FFFF_FFFF);
/// assert_eq!(a.raw(), 0x3_FFFF_FFFF);
/// // Bits above 34 are dropped.
/// assert_eq!(Address::new(0x10_0000_0000).raw(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Number of address bits in a request header.
    pub const BITS: u32 = 34;
    /// Mask covering the addressable field.
    pub const MASK: u64 = (1 << Self::BITS) - 1;

    /// Creates an address, keeping only the low 34 bits.
    #[inline]
    pub const fn new(raw: u64) -> Address {
        Address(raw & Self::MASK)
    }

    /// The raw 34-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address aligned down to a `align`-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn align_down(self, align: u64) -> Address {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Address(self.0 & !(align - 1))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#011x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Address {
        Address::new(raw)
    }
}

/// Identifies one of the host ports (the FPGA firmware instantiates nine —
/// Section III-B, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

impl PortId {
    /// The dense index of this port.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Identifies one of the external serialized links (the AC-510 wires two
/// half-width links between FPGA and HMC — Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u8);

impl LinkId {
    /// The dense index of this link.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A transaction tag: identifies an outstanding request within a port.
///
/// Ports own a finite tag pool ("Rd. Tag Pool" in Figure 5); tag exhaustion
/// is one of the two saturation mechanisms the paper identifies for small
/// requests (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u16);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_masks_to_34_bits() {
        assert_eq!(Address::new(u64::MAX).raw(), Address::MASK);
        assert_eq!(Address::new(1 << 34).raw(), 0);
        assert_eq!(Address::new(0xABCD).raw(), 0xABCD);
    }

    #[test]
    fn align_down_clears_low_bits() {
        let a = Address::new(0x1234);
        assert_eq!(a.align_down(16).raw(), 0x1230);
        assert_eq!(a.align_down(128).raw(), 0x1200);
        assert_eq!(a.align_down(1).raw(), 0x1234);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_down_rejects_non_power_of_two() {
        let _ = Address::new(0).align_down(24);
    }

    #[test]
    fn from_u64_masks() {
        let a: Address = u64::MAX.into();
        assert_eq!(a.raw(), Address::MASK);
    }

    #[test]
    fn ids_display_readably() {
        assert_eq!(PortId(3).to_string(), "port3");
        assert_eq!(LinkId(1).to_string(), "link1");
        assert_eq!(Tag(42).to_string(), "tag42");
        assert_eq!(Address::new(0x80).to_string(), "0x000000080");
    }
}
