//! Request addresses and identity newtypes shared across the workspace.

use core::fmt;

/// A request address: the 34-bit address field of an HMC request header.
///
/// HMC 1.1 headers carry 34 address bits; on a 4 GB cube the two high-order
/// bits are ignored (Section II-A). [`Address::new`] masks to 34 bits so the
/// invariant holds by construction; device-level masking to the cube
/// capacity happens in the address map.
///
/// # Examples
///
/// ```
/// use hmc_packet::Address;
///
/// let a = Address::new(0x3_FFFF_FFFF);
/// assert_eq!(a.raw(), 0x3_FFFF_FFFF);
/// // Bits above 34 are dropped.
/// assert_eq!(Address::new(0x10_0000_0000).raw(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Number of address bits in a request header.
    pub const BITS: u32 = 34;
    /// Mask covering the addressable field.
    pub const MASK: u64 = (1 << Self::BITS) - 1;

    /// Creates an address, keeping only the low 34 bits.
    #[inline]
    pub const fn new(raw: u64) -> Address {
        Address(raw & Self::MASK)
    }

    /// Creates an address, rejecting values that do not fit the 34-bit
    /// header field instead of silently wrapping.
    ///
    /// [`Address::new`] mirrors what the silicon does to a header field —
    /// bits above 34 simply do not exist on the wire — but software
    /// boundaries that *derive* a 34-bit address from a wider value (a
    /// fabric-global address, a parsed trace) must use this checked form:
    /// wrapping there aliases the request into the wrong cube.
    ///
    /// # Errors
    ///
    /// Returns [`AddressOverflow`] if any bit at or above bit 34 is set.
    ///
    /// # Examples
    ///
    /// ```
    /// use hmc_packet::Address;
    ///
    /// assert_eq!(Address::try_new(0x3_FFFF_FFFF).unwrap().raw(), 0x3_FFFF_FFFF);
    /// assert!(Address::try_new(1 << 34).is_err());
    /// ```
    #[inline]
    pub const fn try_new(raw: u64) -> Result<Address, AddressOverflow> {
        if raw & !Self::MASK != 0 {
            Err(AddressOverflow { raw })
        } else {
            Ok(Address(raw))
        }
    }

    /// The raw 34-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address aligned down to a `align`-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn align_down(self, align: u64) -> Address {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Address(self.0 & !(align - 1))
    }
}

/// Error from [`Address::try_new`]: the value does not fit the 34-bit
/// request-header address field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressOverflow {
    /// The offending raw value.
    pub raw: u64,
}

impl fmt::Display for AddressOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "address {:#x} does not fit the {}-bit request header field",
            self.raw,
            Address::BITS
        )
    }
}

impl std::error::Error for AddressOverflow {}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#011x}", self.0)
    }
}

/// A fabric-global address: the full 64-bit value a workload generates,
/// *before* it is split into a cube id and a 34-bit in-cube [`Address`].
///
/// A single HMC request header carries 34 address bits plus the CUB
/// field — widened here from the spec's 3 bits to 6 (see
/// `DESIGN_CUB64.md`); a memory network of up to 64 cubes therefore
/// spans a 40-bit global space. `GlobalAddress` is the deliberately *unchecked*
/// carrier for such values — it preserves every bit the workload produced
/// so that the fabric boundary (a `FabricAddressMap` split, or
/// [`Address::try_new`]) can reject out-of-range values loudly instead of
/// silently wrapping them into cube 0.
///
/// # Examples
///
/// ```
/// use hmc_packet::{Address, GlobalAddress};
///
/// let g = GlobalAddress::new(5u64 << 34 | 0x80);
/// assert_eq!(g.raw(), 5u64 << 34 | 0x80);
/// // Nothing is masked: the cube bits survive until the split.
/// assert!(Address::try_new(g.raw()).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalAddress(u64);

impl GlobalAddress {
    /// Wraps a raw 64-bit global address. No masking occurs.
    #[inline]
    pub const fn new(raw: u64) -> GlobalAddress {
        GlobalAddress(raw)
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This address's low 34 bits as an in-cube [`Address`], dropping any
    /// higher bits — the *unchecked* projection. Use a fabric map's
    /// checked split wherever the higher bits could be meaningful.
    #[inline]
    pub const fn local_unchecked(self) -> Address {
        Address::new(self.0)
    }
}

impl fmt::Display for GlobalAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for GlobalAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for GlobalAddress {
    fn from(raw: u64) -> GlobalAddress {
        GlobalAddress::new(raw)
    }
}

impl From<Address> for GlobalAddress {
    /// An in-cube address is also a global address (of the cube-0 /
    /// degenerate single-cube space).
    fn from(addr: Address) -> GlobalAddress {
        GlobalAddress(addr.raw())
    }
}

/// Identifies one cube of a memory network — the HMC request header's
/// CUB field.
///
/// The HMC 2.1 spec reserves 3 bits for CUB (8 cubes). This workspace
/// deliberately widens the field to 6 bits so fabrics can scale to 64
/// cubes — a documented deviation, not an emulation of shipped silicon;
/// `DESIGN_CUB64.md` records the tradeoff against hierarchical cube
/// groups and which paper calibration points survive the change.
///
/// Lives in `hmc_packet` alongside [`PortId`]/[`LinkId`]/[`Tag`] because
/// it *is* a header field: the host stamps it on every
/// [`RequestPacket`](crate::RequestPacket) and the link layer of every
/// transit cube routes on it. `hmc_fabric` re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CubeId(pub u8);

impl CubeId {
    /// The host-attached root cube.
    pub const HOST: CubeId = CubeId(0);

    /// Width of the request header's CUB field in bits. The HMC spec
    /// says 3; this workspace widens it to 6 (64 cubes) as a documented
    /// deviation — see `DESIGN_CUB64.md`.
    pub const CUB_BITS: u32 = 6;

    /// How many cubes the CUB field can address — the upper bound every
    /// per-cube structure in the workspace is sized from.
    pub const MAX_CUBES: usize = 1 << Self::CUB_BITS;

    /// The dense index of this cube.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates the cube ids of an `n`-cube fabric in ascending order:
    /// `cube0, cube1, .., cube(n-1)`.
    ///
    /// ```
    /// use hmc_packet::CubeId;
    /// let ids: Vec<_> = CubeId::all(3).collect();
    /// assert_eq!(ids, [CubeId(0), CubeId(1), CubeId(2)]);
    /// ```
    #[inline]
    pub fn all(n: u8) -> impl Iterator<Item = CubeId> {
        (0..n).map(CubeId)
    }
}

impl fmt::Display for CubeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cube{}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Address {
        Address::new(raw)
    }
}

/// Identifies one of the host ports (the FPGA firmware instantiates nine —
/// Section III-B, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

impl PortId {
    /// The dense index of this port.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Identifies one of the external serialized links (the AC-510 wires two
/// half-width links between FPGA and HMC — Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u8);

impl LinkId {
    /// The dense index of this link.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A transaction tag: identifies an outstanding request within a port.
///
/// Ports own a finite tag pool ("Rd. Tag Pool" in Figure 5); tag exhaustion
/// is one of the two saturation mechanisms the paper identifies for small
/// requests (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u16);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_masks_to_34_bits() {
        assert_eq!(Address::new(u64::MAX).raw(), Address::MASK);
        assert_eq!(Address::new(1 << 34).raw(), 0);
        assert_eq!(Address::new(0xABCD).raw(), 0xABCD);
    }

    #[test]
    fn align_down_clears_low_bits() {
        let a = Address::new(0x1234);
        assert_eq!(a.align_down(16).raw(), 0x1230);
        assert_eq!(a.align_down(128).raw(), 0x1200);
        assert_eq!(a.align_down(1).raw(), 0x1234);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_down_rejects_non_power_of_two() {
        let _ = Address::new(0).align_down(24);
    }

    #[test]
    fn from_u64_masks() {
        let a: Address = u64::MAX.into();
        assert_eq!(a.raw(), Address::MASK);
    }

    #[test]
    fn ids_display_readably() {
        assert_eq!(PortId(3).to_string(), "port3");
        assert_eq!(LinkId(1).to_string(), "link1");
        assert_eq!(Tag(42).to_string(), "tag42");
        assert_eq!(Address::new(0x80).to_string(), "0x000000080");
        assert_eq!(CubeId(5).to_string(), "cube5");
        assert_eq!(GlobalAddress::new(0x80).to_string(), "0x80");
    }

    #[test]
    fn try_new_rejects_exactly_the_values_new_would_wrap() {
        assert_eq!(Address::try_new(0).unwrap(), Address::new(0));
        assert_eq!(
            Address::try_new(Address::MASK).unwrap(),
            Address::new(Address::MASK)
        );
        for raw in [1u64 << 34, 5 << 34, u64::MAX] {
            let err = Address::try_new(raw).unwrap_err();
            assert_eq!(err.raw, raw);
            assert!(err.to_string().contains("34-bit"), "{err}");
            // The silent form wraps — the behavior try_new exists to make
            // loud.
            assert_ne!(Address::new(raw).raw(), raw);
        }
    }

    #[test]
    fn global_address_preserves_all_bits() {
        let g = GlobalAddress::new(u64::MAX);
        assert_eq!(g.raw(), u64::MAX);
        assert_eq!(g.local_unchecked(), Address::new(u64::MAX));
        let from_local: GlobalAddress = Address::new(0x1234).into();
        assert_eq!(from_local.raw(), 0x1234);
        let from_raw: GlobalAddress = 0xFFFF_0000_0000u64.into();
        assert_eq!(from_raw.raw(), 0xFFFF_0000_0000);
    }
}
