//! Flit constants and helpers.
//!
//! HMC packets are built from 16-byte units called *flits* (Section II-B of
//! the paper, Figure 4). Every request and response carries exactly one flit
//! of overhead — a 64-bit header and a 64-bit tail packed into the first and
//! last flit — and zero to eight data flits.

/// Bytes per flit.
pub const FLIT_BYTES: usize = 16;

/// Flits of header+tail overhead carried by every packet (Table I).
pub const OVERHEAD_FLITS: u32 = 1;

/// Converts a flit count to bytes.
///
/// # Examples
///
/// ```
/// assert_eq!(hmc_packet::flits_to_bytes(9), 144);
/// ```
#[inline]
pub const fn flits_to_bytes(flits: u32) -> u64 {
    flits as u64 * FLIT_BYTES as u64
}

/// The bandwidth efficiency of a packet: data bytes over total bytes.
///
/// Section IV-A: a 16 B read response moves 16 B of data in 32 B of packet
/// (50% efficient), while a 128 B response moves 128 B in 144 B (≈89%).
///
/// # Examples
///
/// ```
/// let eff = hmc_packet::bandwidth_efficiency(128, 144);
/// assert!((eff - 0.888).abs() < 0.001);
/// ```
#[inline]
pub fn bandwidth_efficiency(data_bytes: u64, total_bytes: u64) -> f64 {
    assert!(total_bytes > 0, "packet has at least one flit");
    data_bytes as f64 / total_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_byte_conversion() {
        assert_eq!(flits_to_bytes(0), 0);
        assert_eq!(flits_to_bytes(1), 16);
        assert_eq!(flits_to_bytes(9), 144);
    }

    #[test]
    fn efficiency_matches_paper_examples() {
        // Section IV-A quotes 16/(16+16) = 50% and 128/(128+16) = 89%.
        assert_eq!(bandwidth_efficiency(16, 32), 0.5);
        let large = bandwidth_efficiency(128, 144);
        assert!((large - 0.8888888).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn efficiency_rejects_empty_packets() {
        let _ = bandwidth_efficiency(0, 0);
    }
}
