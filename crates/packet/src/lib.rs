//! # hmc-packet
//!
//! The HMC 1.1 transaction layer: packets, flits, payload sizes and the
//! identity newtypes (ports, links, tags, addresses) shared by every crate
//! in the `hmc-noc-sim` workspace.
//!
//! The packet protocol is what distinguishes the HMC from JEDEC bus
//! memories (Section II-B of the reproduced paper): every transaction is a
//! packet of 16 B flits with one flit of header/tail overhead, and the
//! asymmetric request/response sizes of Table I shape all the bandwidth
//! results in the evaluation. Table I itself is encoded by
//! [`RequestKind::request_flits`] / [`RequestKind::response_flits`] and
//! locked down by unit tests.
//!
//! ```
//! use hmc_packet::{PayloadSize, RequestKind};
//!
//! // A 128 B read: 1-flit request, 9-flit response (Table I).
//! let read = RequestKind::Read { size: PayloadSize::B128 };
//! assert_eq!(read.request_flits(), 1);
//! assert_eq!(read.response_flits(), 9);
//! assert_eq!(read.round_trip_bytes(), 160);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod flit;
mod packet;
mod size;

pub use address::{Address, AddressOverflow, CubeId, GlobalAddress, LinkId, PortId, Tag};
pub use flit::{bandwidth_efficiency, flits_to_bytes, FLIT_BYTES, OVERHEAD_FLITS};
pub use packet::{
    FlowType, LinkSeq, RequestKind, RequestPacket, ResponsePacket, CRC_BITS, RETRY_POINTER_BITS,
    SEQ_BITS,
};
pub use size::{InvalidPayloadSize, PayloadSize};
