//! # hmc-device
//!
//! The full Hybrid Memory Cube device model: the logic-layer NoC (four
//! quadrant switches in two planes, request and response), sixteen vault
//! controllers with per-bank command queues over closed-page stacked DRAM,
//! and the upstream link serializers with token flow control.
//!
//! The model follows the structure the paper describes (Sections I–II):
//! vaults are vertical partitions with a controller in the logic layer;
//! four vaults form a quadrant; quadrants connect to each other and to the
//! external links through the internal NoC whose "characteristics and
//! contention play an integral role in the overall performance of the
//! HMC". Every queue in the chain — link input buffers, switch input
//! FIFOs, vault ingress buffers, per-bank command queues — is finite and
//! credit-protected, so saturation emerges from the same mechanisms the
//! paper identifies rather than from fitted curves.
//!
//! See [`HmcDevice`] for the drive protocol and a complete example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod transaction;
mod vault;

pub use config::{DeviceConfig, SwitchTuning, VaultTuning};
pub use device::{DeviceOutputs, DeviceStats, HmcDevice};
pub use transaction::{DeviceOutput, DeviceRequest, DeviceResponse};
pub use vault::{VaultCtrl, VaultStats};
