//! In-flight transaction records and device outputs.

use hmc_des::Time;
use hmc_mapping::{BankId, VaultId};
use hmc_packet::{LinkId, RequestPacket, ResponsePacket};

/// A request in flight inside the cube, annotated with its decoded target
/// and the link it entered on (responses return on the same link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRequest {
    /// The transaction-layer packet.
    pub pkt: RequestPacket,
    /// The external link the request arrived on.
    pub link: LinkId,
    /// Decoded target vault.
    pub vault: VaultId,
    /// Decoded target bank.
    pub bank: BankId,
    /// 32 B DRAM bursts this access moves.
    pub bursts: u32,
}

/// A response in flight inside the cube, annotated with its egress link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceResponse {
    /// The transaction-layer packet.
    pub pkt: ResponsePacket,
    /// The external link the response leaves on.
    pub link: LinkId,
}

/// Externally visible effects of advancing the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOutput {
    /// A response packet fully arrives at the host at `at` (serialization
    /// and SerDes latency included).
    Response {
        /// Link it travelled on.
        link: LinkId,
        /// The packet.
        pkt: ResponsePacket,
        /// Arrival time at the host controller.
        at: Time,
    },
    /// The cube freed `flits` flits of link input buffer: the host may
    /// return that many tokens to its request transmitter. Effective
    /// immediately (token returns piggyback on upstream traffic).
    RequestTokens {
        /// The link whose buffer drained.
        link: LinkId,
        /// Flits freed.
        flits: u32,
    },
}
