//! The assembled cube: quadrant switches, vault controllers and upstream
//! links behind a single sans-event facade.

use hmc_des::wheel::{Entry, EventQueue};
use hmc_des::{Clocked, InlineVec, Time};
use hmc_link::{Deliveries, LinkTx};
use hmc_mapping::VaultId;
use hmc_noc::{Departures, SwitchConfig, SwitchCore, SwitchEntry};
use hmc_packet::{LinkId, RequestPacket, ResponsePacket};
use hmc_telemetry::{LinkDir, Probe, Stage};

use crate::config::DeviceConfig;
use crate::transaction::{DeviceOutput, DeviceRequest, DeviceResponse};
use crate::vault::VaultCtrl;

/// Port index of the external link on every quadrant switch.
const LINK_PORT: usize = 0;

/// The reusable output buffer [`HmcDevice::advance`] fills and returns a
/// view of; sixteen inline slots cover the common burst and spilled
/// capacity is retained across calls, so steady-state advances allocate
/// nothing.
pub type DeviceOutputs = InlineVec<DeviceOutput, 16>;

/// Port-numbering helper for quadrant switches. Layout per switch:
/// `[link, xq × (quadrants−1), vault × vaults_per_quadrant]`.
#[derive(Debug, Clone, Copy)]
struct PortMap {
    quadrants: usize,
    vaults_per_quad: usize,
}

impl PortMap {
    fn count(&self) -> usize {
        1 + (self.quadrants - 1) + self.vaults_per_quad
    }

    /// Output/input port on switch `from` facing switch `to`.
    fn xq_port(&self, from: usize, to: usize) -> usize {
        debug_assert_ne!(from, to);
        1 + if to < from { to } else { to - 1 }
    }

    /// The peer quadrant behind xq port `port` of switch `q`.
    fn xq_peer(&self, q: usize, port: usize) -> usize {
        let idx = port - 1;
        if idx < q {
            idx
        } else {
            idx + 1
        }
    }

    /// Port for local vault slot `slot` (0-based within the quadrant).
    fn vault_port(&self, slot: usize) -> usize {
        self.quadrants + slot
    }

    /// If `port` is a vault port, its local slot.
    fn vault_slot(&self, port: usize) -> Option<usize> {
        (port >= self.quadrants).then(|| port - self.quadrants)
    }

    /// `true` if `port` is a cross-quadrant port.
    fn is_xq(&self, port: usize) -> bool {
        (1..self.quadrants).contains(&port)
    }
}

/// Timed internal events.
#[derive(Debug, Clone)]
enum InternalEvent {
    /// A request reaches a vault controller's ingress buffer.
    VaultArrival(DeviceRequest),
    /// A request crosses from quadrant `from` to quadrant `to`.
    XqRequest {
        from: usize,
        to: usize,
        req: DeviceRequest,
    },
    /// A response crosses from quadrant `from` to quadrant `to`.
    XqResponse {
        from: usize,
        to: usize,
        resp: DeviceResponse,
    },
    /// A response reaches the upstream link serializer.
    LinkPush(DeviceResponse),
    /// Bank `bank` of vault `vault` finishes its in-service request.
    BankComplete { vault: usize, bank: usize },
}

/// Aggregate device counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Requests accepted from the links.
    pub requests_received: u64,
    /// Responses handed to the upstream serializers.
    pub responses_sent: u64,
    /// Requests serviced per vault.
    pub per_vault_serviced: Vec<u64>,
    /// Peak simultaneous resident requests per vault.
    pub per_vault_peak_outstanding: Vec<usize>,
    /// Total switch arbitration conflicts (request + response planes).
    pub switch_conflicts: u64,
}

/// The full Hybrid Memory Cube device model.
///
/// One instance owns the request- and response-plane quadrant switches,
/// the 16 vault controllers and the upstream link serializers, and advances
/// them all on an internal event calendar. The surrounding simulation
/// drives it through three calls:
///
/// 1. [`HmcDevice::on_request`] when a request packet finishes arriving on
///    a link (the host's transmitter guarantees buffer space via tokens);
/// 2. [`HmcDevice::advance`] to process internal work up to `now`,
///    collecting [`DeviceOutput`]s (responses and token returns);
/// 3. [`HmcDevice::next_wake`] to learn when internal state next changes
///    on its own.
///
/// # Examples
///
/// ```
/// use hmc_des::Time;
/// use hmc_device::{DeviceConfig, DeviceOutput, HmcDevice};
/// use hmc_packet::{Address, CubeId, LinkId, PayloadSize, PortId, RequestKind, RequestPacket, Tag};
///
/// let mut hmc = HmcDevice::new(DeviceConfig::ac510_hmc());
/// let pkt = RequestPacket {
///     port: PortId(0),
///     tag: Tag(0),
///     cube: CubeId::HOST,
///     addr: Address::new(0),
///     kind: RequestKind::Read { size: PayloadSize::B64 },
/// };
/// hmc.on_request(Time::ZERO, LinkId(0), pkt);
/// // Drive the device to quiescence.
/// let mut now = Time::ZERO;
/// let mut response = None;
/// loop {
///     for out in hmc.advance(now) {
///         if let DeviceOutput::Response { pkt, .. } = out {
///             response = Some(*pkt);
///         }
///     }
///     match hmc.next_wake() {
///         Some(t) => now = t,
///         None => break,
///     }
/// }
/// assert_eq!(response.unwrap().tag, Tag(0));
/// ```
pub struct HmcDevice {
    cfg: DeviceConfig,
    ports: PortMap,
    req_sw: Vec<SwitchCore<DeviceRequest>>,
    resp_sw: Vec<SwitchCore<DeviceResponse>>,
    vaults: Vec<VaultCtrl>,
    link_tx: Vec<LinkTx<ResponsePacket>>,
    /// Quadrant index → link id, for quadrants with a link.
    link_of_quad: Vec<Option<LinkId>>,
    calendar: EventQueue<InternalEvent>,
    cal_seq: u64,
    /// Earliest pending calendar instant, cached because
    /// [`EventQueue::peek_time`] needs `&mut` (it may compact wheel
    /// slots) while [`HmcDevice::next_wake`] is a `&self` query.
    /// `schedule` lowers it; the `advance` pop loop recomputes it.
    cal_next: Option<Time>,
    dirty_vaults: Vec<usize>,
    dirty_flag: Vec<bool>,
    /// Bitmask of request-plane switches mutated (enqueue, starved-credit
    /// return, expired busy interval) since their last service. The
    /// fixpoint services only dirty switches: servicing a clean one is a
    /// no-op by construction, and on loaded runs ~96% of the old
    /// unconditional service calls were exactly such no-ops.
    req_dirty: u32,
    /// Response-plane counterpart of `req_dirty`.
    resp_dirty: u32,
    /// Reused output buffer (returned as a view by `advance`).
    outputs: DeviceOutputs,
    /// Reused departure scratch for request-plane switch service.
    req_dep_scratch: Departures<DeviceRequest>,
    /// Reused departure scratch for response-plane switch service.
    resp_dep_scratch: Departures<DeviceResponse>,
    /// Reused delivery scratch for upstream serializer service.
    delivery_scratch: Deliveries<ResponsePacket>,
    requests_received: u64,
    responses_sent: u64,
    /// Telemetry probe (detached by default — every emit is one branch).
    probe: Probe,
    /// Cube id this device reports as in telemetry events.
    probe_cube: u8,
}

impl HmcDevice {
    /// Builds an idle device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DeviceConfig) -> HmcDevice {
        cfg.validate().expect("valid device config");
        let g = *cfg.map.geometry();
        let quadrants = usize::from(g.quadrants);
        let ports = PortMap {
            quadrants,
            vaults_per_quad: usize::from(g.vaults_per_quadrant()),
        };
        let sw_cfg = SwitchConfig {
            inputs: ports.count(),
            outputs: ports.count(),
            input_capacity_flits: cfg.switch.input_capacity_flits,
            hop_latency: cfg.switch.hop_latency,
            flit_time: cfg.switch.flit_time,
        };
        let mut link_of_quad = vec![None; quadrants];
        for (i, q) in cfg.link_quadrants.iter().enumerate() {
            link_of_quad[q.index()] = Some(LinkId(i as u8));
        }
        let mut req_sw = Vec::with_capacity(quadrants);
        let mut resp_sw = Vec::with_capacity(quadrants);
        for _q in 0..quadrants {
            // Request plane: vault outputs feed vault ingress buffers; xq
            // outputs feed peer switch xq inputs; the link port is never
            // an output. Input capacities: deep link RX buffer (the token
            // pool), shallow xq buffers, link-depth vault inputs on the
            // response plane.
            let mut req_credits = vec![0u32; ports.count()];
            let mut resp_credits = vec![0u32; ports.count()];
            let mut input_caps = vec![cfg.switch.input_capacity_flits; ports.count()];
            for p in 0..ports.count() {
                if ports.is_xq(p) {
                    req_credits[p] = cfg.switch.xq_capacity_flits;
                    resp_credits[p] = cfg.switch.xq_capacity_flits;
                    input_caps[p] = cfg.switch.xq_capacity_flits;
                } else if ports.vault_slot(p).is_some() {
                    req_credits[p] = cfg.vault.ingress_capacity_flits;
                } else {
                    // Response plane: the link port feeds the upstream
                    // serializer's egress buffer.
                    resp_credits[p] = cfg.switch.link_egress_flits;
                }
            }
            req_sw.push(SwitchCore::with_input_capacities(
                sw_cfg,
                &input_caps,
                &req_credits,
            ));
            resp_sw.push(SwitchCore::with_input_capacities(
                sw_cfg,
                &input_caps,
                &resp_credits,
            ));
        }
        let vaults = (0..g.vaults)
            .map(|_| VaultCtrl::new(usize::from(g.banks_per_vault), cfg.timing, &cfg.vault))
            .collect();
        let link_tx = (0..cfg.link_count())
            .map(|_| LinkTx::new(&cfg.link))
            .collect::<Vec<_>>();
        let vault_count = usize::from(g.vaults);
        assert!(quadrants <= 32, "dirty bitmasks cover up to 32 quadrants");
        HmcDevice {
            cfg,
            ports,
            req_sw,
            resp_sw,
            vaults,
            link_tx,
            link_of_quad,
            calendar: EventQueue::new(),
            cal_seq: 0,
            cal_next: None,
            dirty_vaults: Vec::with_capacity(vault_count),
            dirty_flag: vec![false; vault_count],
            req_dirty: 0,
            resp_dirty: 0,
            outputs: DeviceOutputs::new(),
            req_dep_scratch: Departures::new(),
            resp_dep_scratch: Departures::new(),
            delivery_scratch: Deliveries::new(),
            requests_received: 0,
            responses_sent: 0,
            probe: Probe::off(),
            probe_cube: 0,
        }
    }

    /// Attaches a telemetry probe; events from this device report as cube
    /// `cube`. Also wires the upstream serializers so response-direction
    /// link flits are attributed to this cube.
    pub fn attach_probe(&mut self, probe: &Probe, cube: u8) {
        for (l, tx) in self.link_tx.iter_mut().enumerate() {
            tx.set_probe(probe.clone(), cube, l as u8, LinkDir::Response);
        }
        self.probe = probe.clone();
        self.probe_cube = cube;
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Size of the request input buffer behind each link, in flits: the
    /// token pool the host's request transmitter must be configured with.
    pub fn request_tokens_per_link(&self) -> u32 {
        self.cfg.switch.input_capacity_flits
    }

    /// Accepts a request that finished arriving on `link` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the link input buffer lacks space — with correct token
    /// flow control on the host side this cannot happen.
    pub fn on_request(&mut self, now: Time, link: LinkId, pkt: RequestPacket) {
        let loc = self.cfg.map.decode(pkt.addr);
        let req = DeviceRequest {
            pkt,
            link,
            vault: loc.vault,
            bank: loc.bank,
            bursts: pkt.kind.access_size().dram_bursts(),
        };
        let q = self.quad_of_link(link);
        let entry = SwitchEntry {
            output: self.route_request(q, &req),
            flits: pkt.flits(),
            payload: req,
        };
        self.req_sw[q]
            .try_enqueue(LINK_PORT, entry)
            .unwrap_or_else(|_| panic!("link input buffer overflow: token protocol violated"));
        self.req_dirty |= 1 << q;
        self.requests_received += 1;
        self.probe
            .request_enqueue(self.probe_cube, loc.vault.0, now);
        self.probe
            .trace_mark(u16::from(pkt.port.0), pkt.tag.0, Stage::DeviceIngress, now);
    }

    /// Returns host-RX-buffer tokens to the upstream serializer of `link`
    /// (the host drained `flits` flits of responses).
    pub fn return_response_tokens(&mut self, link: LinkId, flits: u32) {
        self.link_tx[link.index()].return_tokens(flits);
    }

    /// Processes all internal events up to and including `now` and runs the
    /// pipelines to a fixpoint. Returns a view of the externally visible
    /// outputs, valid until the next call (the buffer is reused —
    /// steady-state advances allocate nothing).
    ///
    /// The fixpoint is *dirty-gated*: a switch is serviced only when it
    /// was mutated since its last service (new entry, a credit return its
    /// starvation flag asked for, or an expired output busy interval).
    /// Servicing a clean switch is a no-op — the arbiter does not rotate
    /// and no counter moves on a grantless pass — so the gate is
    /// observably pure and removes the ~96% of service calls that used to
    /// scan loaded runs without forwarding anything.
    pub fn advance(&mut self, now: Time) -> &DeviceOutputs {
        self.outputs.clear();
        let mut req_deps = std::mem::take(&mut self.req_dep_scratch);
        let mut resp_deps = std::mem::take(&mut self.resp_dep_scratch);
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        // Phase 0: switches whose busy-interval deadlines expired by `now`
        // can progress on their own — mark them dirty. (Credit- and
        // enqueue-driven progress marks dirty at the mutation site.)
        for q in 0..self.req_sw.len() {
            if SwitchCore::next_wake(&self.req_sw[q], Time::ZERO).is_some_and(|t| t <= now) {
                self.req_dirty |= 1 << q;
            }
            if SwitchCore::next_wake(&self.resp_sw[q], Time::ZERO).is_some_and(|t| t <= now) {
                self.resp_dirty |= 1 << q;
            }
        }
        // Phase 1: deliver due calendar events.
        while self.calendar.peek_time().is_some_and(|t| t <= now) {
            let entry = self.calendar.pop().expect("peeked entry exists");
            let at = entry.time;
            match entry.item {
                InternalEvent::VaultArrival(req) => {
                    let v = req.vault.index();
                    self.probe.trace_mark(
                        u16::from(req.pkt.port.0),
                        req.pkt.tag.0,
                        Stage::VaultService,
                        at,
                    );
                    self.vaults[v].push_ingress(req);
                    self.mark_dirty(v);
                }
                InternalEvent::XqRequest { from, to, req } => {
                    let entry = SwitchEntry {
                        output: self.route_request(to, &req),
                        flits: req.pkt.flits(),
                        payload: req,
                    };
                    // Space is reserved by the sender's output credits.
                    let input = self.ports.xq_port(to, from);
                    self.req_sw[to]
                        .try_enqueue(input, entry)
                        .unwrap_or_else(|_| panic!("xq request overflow: credits violated"));
                    self.req_dirty |= 1 << to;
                }
                InternalEvent::XqResponse { from, to, resp } => {
                    let entry = SwitchEntry {
                        output: self.route_response(to, &resp),
                        flits: resp.pkt.flits(),
                        payload: resp,
                    };
                    let input = self.ports.xq_port(to, from);
                    self.resp_sw[to]
                        .try_enqueue(input, entry)
                        .unwrap_or_else(|_| panic!("xq response overflow: credits violated"));
                    self.resp_dirty |= 1 << to;
                }
                InternalEvent::LinkPush(resp) => {
                    let l = resp.link.index();
                    let flits = resp.pkt.flits();
                    self.link_tx[l].enqueue(resp.pkt, flits);
                    // The egress buffer slot frees as the packet enters the
                    // serializer queue.
                    let q = self.quad_of_link(resp.link);
                    if self.resp_sw[q].return_credits(LINK_PORT, flits) {
                        self.resp_dirty |= 1 << q;
                    }
                    self.responses_sent += 1;
                }
                InternalEvent::BankComplete { vault, bank } => {
                    self.vaults[vault].complete(bank);
                    self.mark_dirty(vault);
                }
            }
        }
        // The pop loop consumed the entries the cache pointed at;
        // re-seed it from the queue head. Later phases only lower it
        // (through `schedule`), so this is the one recompute needed.
        self.cal_next = self.calendar.peek_time();
        // Phase 2: fixpoint over dirty vaults, dirty switches and links.
        loop {
            let mut progress = false;
            // Vault pipelines.
            while let Some(v) = self.dirty_vaults.pop() {
                self.dirty_flag[v] = false;
                progress |= self.pump_vault(v, now);
            }
            // Request-plane switches.
            for q in 0..self.req_sw.len() {
                if self.req_dirty & (1 << q) == 0 {
                    continue;
                }
                self.req_dirty &= !(1 << q);
                self.req_sw[q].service_into(now, &mut req_deps);
                for d in req_deps.drain() {
                    progress = true;
                    if d.input == LINK_PORT {
                        let link = self.link_of_quad[q].expect("link-attached quadrant");
                        self.outputs.push(DeviceOutput::RequestTokens {
                            link,
                            flits: d.flits,
                        });
                    } else if self.ports.is_xq(d.input) {
                        let sender = self.ports.xq_peer(q, d.input);
                        let port = self.ports.xq_port(sender, q);
                        if self.req_sw[sender].return_credits(port, d.flits) {
                            self.req_dirty |= 1 << sender;
                        }
                    }
                    if self.ports.is_xq(d.output) {
                        let to = self.ports.xq_peer(q, d.output);
                        self.schedule(
                            d.at,
                            InternalEvent::XqRequest {
                                from: q,
                                to,
                                req: d.payload,
                            },
                        );
                    } else {
                        debug_assert!(self.ports.vault_slot(d.output).is_some());
                        self.schedule(
                            d.at + self.cfg.vault.ctrl_latency,
                            InternalEvent::VaultArrival(d.payload),
                        );
                    }
                }
            }
            // Response-plane switches.
            for q in 0..self.resp_sw.len() {
                if self.resp_dirty & (1 << q) == 0 {
                    continue;
                }
                self.resp_dirty &= !(1 << q);
                self.resp_sw[q].service_into(now, &mut resp_deps);
                for d in resp_deps.drain() {
                    progress = true;
                    if let Some(slot) = self.ports.vault_slot(d.input) {
                        // Input buffer space freed: the vault may push its
                        // next blocked response.
                        let v = q * self.ports.vaults_per_quad + slot;
                        self.mark_dirty(v);
                    } else if self.ports.is_xq(d.input) {
                        let sender = self.ports.xq_peer(q, d.input);
                        let port = self.ports.xq_port(sender, q);
                        if self.resp_sw[sender].return_credits(port, d.flits) {
                            self.resp_dirty |= 1 << sender;
                        }
                    }
                    if d.output == LINK_PORT {
                        self.schedule(d.at, InternalEvent::LinkPush(d.payload));
                    } else {
                        debug_assert!(self.ports.is_xq(d.output));
                        let to = self.ports.xq_peer(q, d.output);
                        self.schedule(
                            d.at,
                            InternalEvent::XqResponse {
                                from: q,
                                to,
                                resp: d.payload,
                            },
                        );
                    }
                }
            }
            // Upstream serializers.
            for l in 0..self.link_tx.len() {
                self.link_tx[l].service_into(now, &mut deliveries);
                for delivery in deliveries.drain() {
                    progress = true;
                    self.probe.trace_mark(
                        u16::from(delivery.payload.port.0),
                        delivery.payload.tag.0,
                        Stage::ResponseLink,
                        delivery.at,
                    );
                    self.outputs.push(DeviceOutput::Response {
                        link: LinkId(l as u8),
                        pkt: delivery.payload,
                        at: delivery.at,
                    });
                }
            }
            if !progress {
                break;
            }
        }
        self.req_dep_scratch = req_deps;
        self.resp_dep_scratch = resp_deps;
        self.delivery_scratch = deliveries;
        &self.outputs
    }

    /// The earliest instant at which internal state changes without new
    /// input, or `None` if the device is quiescent. Also available
    /// through the [`hmc_des::Clocked`] protocol.
    pub fn next_wake(&self) -> Option<Time> {
        let mut wake = self.cal_next;
        let consider = |wake: &mut Option<Time>, t: Option<Time>| {
            if let Some(t) = t {
                *wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        // Switch wakes depend on "now"; using Time::ZERO yields every
        // pending busy-interval expiry, which is what we need here.
        for sw in &self.req_sw {
            consider(&mut wake, sw.next_wake(Time::ZERO));
        }
        for sw in &self.resp_sw {
            consider(&mut wake, sw.next_wake(Time::ZERO));
        }
        wake
    }

    /// Requests currently resident in the vault controllers (ingress
    /// buffers, bank queues, banks and blocked responses) — the dominant
    /// component of the occupancy the paper estimates via Little's law in
    /// Figure 14.
    pub fn outstanding(&self) -> usize {
        self.vaults.iter().map(|v| v.outstanding()).sum()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats {
            requests_received: self.requests_received,
            responses_sent: self.responses_sent,
            per_vault_serviced: self.vaults.iter().map(|v| v.stats().serviced).collect(),
            per_vault_peak_outstanding: self
                .vaults
                .iter()
                .map(|v| v.stats().peak_outstanding)
                .collect(),
            switch_conflicts: self
                .req_sw
                .iter()
                .map(|sw| sw.arbitration_conflicts())
                .chain(self.resp_sw.iter().map(|sw| sw.arbitration_conflicts()))
                .sum(),
        }
    }

    /// Immutable view of a vault controller (for experiment statistics).
    pub fn vault(&self, v: VaultId) -> &VaultCtrl {
        &self.vaults[v.index()]
    }

    /// Upstream (response-direction) link transmitter statistics.
    pub fn link_stats(&self, link: LinkId) -> hmc_link::LinkStats {
        self.link_tx[link.index()].stats()
    }

    /// Peak-occupancy census across every internal buffer, as
    /// `(stage label, peak flits-or-requests)` pairs — a debugging aid for
    /// locating where traffic queues.
    pub fn peak_census(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (q, sw) in self.req_sw.iter().enumerate() {
            for p in 0..self.ports.count() {
                let peak = sw.peak_input_flits(p);
                if peak > 0 {
                    out.push((format!("req_sw{q}.in{p}"), u64::from(peak)));
                }
            }
        }
        for (q, sw) in self.resp_sw.iter().enumerate() {
            for p in 0..self.ports.count() {
                let peak = sw.peak_input_flits(p);
                if peak > 0 {
                    out.push((format!("resp_sw{q}.in{p}"), u64::from(peak)));
                }
            }
        }
        for (v, vault) in self.vaults.iter().enumerate() {
            let peak = vault.stats().peak_outstanding;
            if peak > 0 {
                out.push((format!("vault{v}"), peak as u64));
            }
        }
        for (l, tx) in self.link_tx.iter().enumerate() {
            let peak = tx.stats().peak_queue_flits;
            if peak > 0 {
                out.push((format!("link_tx{l}.queue"), u64::from(peak)));
            }
        }
        out
    }

    /// Tokens currently available on an upstream transmitter (host RX
    /// buffer space as seen by the cube).
    pub fn response_tokens_available(&self, link: LinkId) -> u32 {
        self.link_tx[link.index()].tokens_available()
    }

    // -- internals ---------------------------------------------------------

    fn schedule(&mut self, at: Time, ev: InternalEvent) {
        let seq = self.cal_seq;
        self.cal_seq += 1;
        self.calendar.push(Entry {
            time: at,
            seq,
            item: ev,
        });
        self.cal_next = Some(self.cal_next.map_or(at, |w| w.min(at)));
    }

    fn mark_dirty(&mut self, vault: usize) {
        if !self.dirty_flag[vault] {
            self.dirty_flag[vault] = true;
            self.dirty_vaults.push(vault);
        }
    }

    /// Runs one vault's pipeline stages; returns whether anything moved.
    fn pump_vault(&mut self, v: usize, now: Time) -> bool {
        let mut progress = false;
        let q = v / self.ports.vaults_per_quad;
        let slot = v % self.ports.vaults_per_quad;
        // Ingress → bank queues (freeing NoC credits).
        let freed = self.vaults[v].pump_ingress();
        if freed > 0 {
            if self.req_sw[q].return_credits(self.ports.vault_port(slot), freed) {
                self.req_dirty |= 1 << q;
            }
            progress = true;
        }
        // Completed responses → response switch.
        while let Some((bank, req)) = self.vaults[v].ready_response() {
            let resp = DeviceResponse {
                pkt: ResponsePacket::for_request(&req.pkt),
                link: req.link,
            };
            let (t_port, t_tag) = (u16::from(req.pkt.port.0), req.pkt.tag.0);
            let flits = resp.pkt.flits();
            let entry = SwitchEntry {
                output: self.route_response(q, &resp),
                flits,
                payload: resp,
            };
            let input = self.ports.vault_port(slot);
            match self.resp_sw[q].try_enqueue(input, entry) {
                Ok(()) => {
                    let _ = self.vaults[v].take_completed(bank);
                    self.resp_dirty |= 1 << q;
                    self.probe
                        .trace_mark(t_port, t_tag, Stage::ResponseReady, now);
                    progress = true;
                }
                Err(_) => break,
            }
        }
        // Idle banks with queued work → DRAM.
        let ctrl_out = self.cfg.vault.ctrl_latency;
        for (bank, completion) in self.vaults[v].start_services(now) {
            self.probe.vault_service(self.probe_cube, v as u8, now);
            self.schedule(
                completion + ctrl_out,
                InternalEvent::BankComplete { vault: v, bank },
            );
            progress = true;
        }
        progress
    }

    fn quad_of_link(&self, link: LinkId) -> usize {
        self.cfg.link_quadrants[link.index()].index()
    }

    fn route_request(&self, q: usize, req: &DeviceRequest) -> usize {
        let dest_quad = usize::from(req.vault.0) / self.ports.vaults_per_quad;
        if dest_quad == q {
            self.ports
                .vault_port(usize::from(req.vault.0) % self.ports.vaults_per_quad)
        } else {
            self.ports.xq_port(q, dest_quad)
        }
    }

    fn route_response(&self, q: usize, resp: &DeviceResponse) -> usize {
        let dest_quad = self.quad_of_link(resp.link);
        if dest_quad == q {
            LINK_PORT
        } else {
            self.ports.xq_port(q, dest_quad)
        }
    }
}

impl Clocked for HmcDevice {
    /// The device's internal calendar is absolute, so the report is
    /// independent of `now`.
    fn next_wake(&self, _now: Time) -> Option<Time> {
        HmcDevice::next_wake(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The calendar the wheel replaced: a binary heap popping in
    /// `(time, seq)` order. Kept here as the oracle for the equivalence
    /// property below.
    #[derive(Default)]
    struct HeapCalendar {
        heap: BinaryHeap<Reverse<(Time, u64, u32)>>,
    }

    impl HeapCalendar {
        fn push(&mut self, at: Time, seq: u64, tag: u32) {
            self.heap.push(Reverse((at, seq, tag)));
        }

        fn pop(&mut self) -> Option<(Time, u64, u32)> {
            self.heap.pop().map(|Reverse(e)| e)
        }
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Property: under random interleavings of schedules and drains at
    /// calendar-realistic timescales (sub-ns service steps through
    /// multi-µs bank timings, with deliberate time ties), the wheel pops
    /// the exact `(time, seq)` sequence the old binary heap did. This is
    /// the invariant that keeps the device byte-identical across the
    /// swap.
    #[test]
    fn wheel_calendar_pops_exactly_like_the_heap_it_replaced() {
        let mut rng = 0x1d_2e_3f_4a_5b_6c_7d_8eu64;
        for trial in 0..50u64 {
            let mut wheel: EventQueue<u32> = EventQueue::new();
            let mut heap = HeapCalendar::default();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..400 {
                match xorshift(&mut rng) % 4 {
                    // Schedule a burst; spans (mod choices) cover the
                    // active slot, the near wheel and the far heap.
                    0 | 1 => {
                        let burst = 1 + xorshift(&mut rng) % 4;
                        for _ in 0..burst {
                            let span = match xorshift(&mut rng) % 4 {
                                0 => xorshift(&mut rng) % 800,
                                1 => xorshift(&mut rng) % 60_000,
                                2 => xorshift(&mut rng) % 1_500_000,
                                _ => (xorshift(&mut rng) % 10) * 55_000,
                            };
                            let at = Time::from_ps(now + span);
                            let tag = (trial as u32) << 16 | seq as u32;
                            wheel.push(Entry {
                                time: at,
                                seq,
                                item: tag,
                            });
                            heap.push(at, seq, tag);
                            seq += 1;
                        }
                    }
                    // Drain a few events, advancing `now` to the pop time
                    // so later schedules never land in the past.
                    _ => {
                        for _ in 0..(1 + xorshift(&mut rng) % 3) {
                            let got = wheel.pop().map(|e| (e.time, e.seq, e.item));
                            let want = heap.pop();
                            assert_eq!(got, want, "trial {trial}: pop diverged");
                            if let Some((t, _, _)) = got {
                                now = now.max(t.as_ps());
                            }
                        }
                    }
                }
            }
            // Full drain must agree too.
            loop {
                let got = wheel.pop().map(|e| (e.time, e.seq, e.item));
                let want = heap.pop();
                assert_eq!(got, want, "trial {trial}: drain diverged");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
