//! Device configuration.

use hmc_des::Delay;
use hmc_dram::DramTiming;
use hmc_link::LinkConfig;
use hmc_mapping::{AddressMap, QuadrantId};

/// Tuning of the logic-layer quadrant switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchTuning {
    /// Capacity of the link-facing switch input, in flits — this is the
    /// link RX buffer, i.e. the request-direction token pool.
    pub input_capacity_flits: u32,
    /// Capacity of each cross-quadrant input FIFO, in flits. Kept shallow
    /// (a couple of max-size packets), as switch-to-switch buffers are.
    pub xq_capacity_flits: u32,
    /// Pipeline latency per switch traversal.
    pub hop_latency: Delay,
    /// Serialization time per flit on the internal datapath (16 B at
    /// 1.25 GHz = 0.8 ns ⇒ 20 GB/s per switch port).
    pub flit_time: Delay,
    /// Egress buffering between a response switch's link port and the
    /// upstream link serializer, in flits.
    pub link_egress_flits: u32,
}

impl Default for SwitchTuning {
    fn default() -> SwitchTuning {
        SwitchTuning {
            input_capacity_flits: 44,
            xq_capacity_flits: 18,
            hop_latency: Delay::from_ps(3_200),
            flit_time: Delay::from_ps(800),
            link_egress_flits: 64,
        }
    }
}

/// Tuning of the vault controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultTuning {
    /// Vault ingress buffer (switch → vault), in flits.
    pub ingress_capacity_flits: u32,
    /// Per-bank command queue depth, in requests. Sized so that resident
    /// requests scale roughly linearly with the banks touched, as the
    /// paper infers from Little's law (Figure 14: ≈288 outstanding on 2
    /// banks, ≈535 on 4, ceiling at the 576 aggregate port tags), while
    /// the 4-bank pattern stays just below the tag ceiling.
    pub bank_queue_capacity: usize,
    /// Vault-controller pipeline latency charged on each direction
    /// (request decode/scheduling in, response assembly out).
    pub ctrl_latency: Delay,
}

impl Default for VaultTuning {
    fn default() -> VaultTuning {
        VaultTuning {
            ingress_capacity_flits: 16,
            bank_queue_capacity: 72,
            ctrl_latency: Delay::from_ps(12_000),
        }
    }
}

/// Full configuration of one cube.
///
/// The default models the paper's device: a 4 GB HMC 1.1 with two
/// half-width 15 Gbps links attached to quadrants 0 and 1 (the AC-510
/// wiring), 128 B max block size, and the queue/latency calibration
/// documented in `DESIGN.md`.
///
/// # Examples
///
/// ```
/// use hmc_device::DeviceConfig;
///
/// let cfg = DeviceConfig::ac510_hmc();
/// assert_eq!(cfg.link_count(), 2);
/// cfg.validate().expect("default config is valid");
/// ```
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Address map (geometry + block size).
    pub map: AddressMap,
    /// DRAM timing of the stacked dies.
    pub timing: DramTiming,
    /// Upstream (cube→host) link configuration. `input_buffer_flits` here
    /// is the *host-side* RX buffer that upstream tokens guard.
    pub link: LinkConfig,
    /// Which quadrant each external link attaches to; the length of this
    /// vector is the link count.
    pub link_quadrants: Vec<QuadrantId>,
    /// Switch tuning.
    pub switch: SwitchTuning,
    /// Vault tuning.
    pub vault: VaultTuning,
}

impl DeviceConfig {
    /// The paper's device: 4 GB HMC 1.1 on an AC-510 (two half-width links
    /// on quadrants 0 and 1).
    pub fn ac510_hmc() -> DeviceConfig {
        let link = LinkConfig {
            // The per-packet processing floor models the *host*
            // controller's packet handling; the cube's response path
            // streams at wire rate (its packet handling is the switch
            // datapath, modelled separately).
            min_packet_time: hmc_des::Delay::ZERO,
            ..LinkConfig::ac510_default()
        };
        DeviceConfig {
            map: AddressMap::hmc_gen2_default(),
            timing: DramTiming::hmc_gen2(),
            link,
            link_quadrants: vec![QuadrantId(0), QuadrantId(1)],
            switch: SwitchTuning::default(),
            vault: VaultTuning::default(),
        }
    }

    /// Number of external links.
    pub fn link_count(&self) -> usize {
        self.link_quadrants.len()
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.map.geometry().validate()?;
        self.timing.validate()?;
        self.link.validate()?;
        if self.link_quadrants.is_empty() {
            return Err("device needs at least one external link".to_owned());
        }
        let quadrants = self.map.geometry().quadrants;
        for q in &self.link_quadrants {
            if q.0 >= quadrants {
                return Err(format!("link attached to nonexistent {q}"));
            }
        }
        {
            let mut sorted: Vec<u8> = self.link_quadrants.iter().map(|q| q.0).collect();
            sorted.dedup();
            if sorted.len() != self.link_quadrants.len() {
                return Err("at most one link per quadrant".to_owned());
            }
        }
        if self.switch.input_capacity_flits == 0 || self.switch.flit_time.is_zero() {
            return Err("switch tuning must be positive".to_owned());
        }
        if self.switch.xq_capacity_flits < 9 {
            return Err("xq buffers must hold at least one max-size packet".to_owned());
        }
        if self.switch.link_egress_flits < 9 {
            return Err("link egress buffer must hold at least one max-size packet".to_owned());
        }
        if self.vault.ingress_capacity_flits < 9 {
            return Err("vault ingress must hold at least one max-size packet".to_owned());
        }
        if self.vault.bank_queue_capacity == 0 {
            return Err("bank queues need nonzero capacity".to_owned());
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> DeviceConfig {
        DeviceConfig::ac510_hmc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_ac510() {
        let cfg = DeviceConfig::ac510_hmc();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.link_count(), 2);
        assert_eq!(cfg.link_quadrants, vec![QuadrantId(0), QuadrantId(1)]);
        assert_eq!(cfg.map.geometry().vaults, 16);
    }

    #[test]
    fn validation_rejects_bad_links() {
        let mut cfg = DeviceConfig::ac510_hmc();
        cfg.link_quadrants.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::ac510_hmc();
        cfg.link_quadrants = vec![QuadrantId(9)];
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::ac510_hmc();
        cfg.link_quadrants = vec![QuadrantId(0), QuadrantId(0)];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_tiny_buffers() {
        let mut cfg = DeviceConfig::ac510_hmc();
        cfg.vault.ingress_capacity_flits = 4;
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::ac510_hmc();
        cfg.switch.link_egress_flits = 2;
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::ac510_hmc();
        cfg.vault.bank_queue_capacity = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn defaults_reflect_design_calibration() {
        let v = VaultTuning::default();
        assert_eq!(v.bank_queue_capacity, 72);
        let s = SwitchTuning::default();
        // Internal port rate: 16 B per 0.8 ns = 20 GB/s.
        assert_eq!(16.0 / s.flit_time.as_ns_f64(), 20.0);
    }
}
