//! One vault controller: ingress buffer, per-bank command queues, bank
//! service engines.

use hmc_des::Time;
use hmc_dram::{DramTiming, VaultMemory};
use hmc_noc::{BoundedQueue, FlitQueue};
use hmc_packet::RequestKind;

use crate::config::VaultTuning;
use crate::transaction::DeviceRequest;

/// Service state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankEngine {
    /// No request in service.
    Idle,
    /// A request is being serviced; completes at the recorded time.
    InService(DeviceRequest),
    /// Service finished; the response waits for egress space.
    Completed(DeviceRequest),
}

/// Counters for one vault controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VaultStats {
    /// Requests fully serviced (response handed to the NoC).
    pub serviced: u64,
    /// Peak simultaneous resident requests (ingress + queues + in
    /// service + blocked responses).
    pub peak_outstanding: usize,
}

/// The logic-layer controller of one vault.
///
/// Requests arrive through a flit-accounted ingress buffer, distribute into
/// per-bank command queues (the organization the paper infers from the
/// linear bank-count scaling of outstanding requests, Section IV-F /
/// Figure 14), and are serviced one per bank by the closed-page
/// [`VaultMemory`]. Completed responses wait at the bank until the NoC
/// accepts them, so response-plane congestion backpressures into the DRAM
/// — one of the queuing couplings the paper holds responsible for the
/// HMC's loaded latency behaviour.
#[derive(Debug, Clone)]
pub struct VaultCtrl {
    ingress: FlitQueue<DeviceRequest>,
    bank_queues: Vec<BoundedQueue<DeviceRequest>>,
    engines: Vec<BankEngine>,
    memory: VaultMemory,
    stats: VaultStats,
    /// Banks that are idle and have queued work (deduplicated worklist).
    startable: std::collections::VecDeque<usize>,
    startable_flag: Vec<bool>,
    /// Banks holding a completed response, in completion order.
    ready: std::collections::VecDeque<usize>,
}

impl VaultCtrl {
    /// Creates an idle vault controller with `banks` banks.
    pub fn new(banks: usize, timing: DramTiming, tuning: &VaultTuning) -> VaultCtrl {
        VaultCtrl {
            ingress: FlitQueue::new(tuning.ingress_capacity_flits),
            bank_queues: (0..banks)
                .map(|_| BoundedQueue::new(tuning.bank_queue_capacity))
                .collect(),
            engines: vec![BankEngine::Idle; banks],
            memory: VaultMemory::new(banks, timing),
            stats: VaultStats::default(),
            startable: std::collections::VecDeque::new(),
            startable_flag: vec![false; banks],
            ready: std::collections::VecDeque::new(),
        }
    }

    /// `true` if the ingress buffer can take `flits` more flits.
    pub fn can_accept(&self, flits: u32) -> bool {
        self.ingress.can_accept(flits)
    }

    /// Pushes an arriving request into the ingress buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — callers must hold NoC credits for the
    /// space, so overflow is a flow-control protocol bug.
    pub fn push_ingress(&mut self, req: DeviceRequest) {
        let flits = req.pkt.flits();
        self.ingress
            .push(flits, req)
            .unwrap_or_else(|_| panic!("vault ingress overflow: credit protocol violated"));
        self.note_outstanding();
    }

    /// Moves ingress requests into their bank queues until the head blocks
    /// (head-of-line) or the ingress empties. Returns the flits freed from
    /// the ingress buffer, which the caller must return as NoC credits.
    pub fn pump_ingress(&mut self) -> u32 {
        let mut freed = 0;
        while let Some((flits, head)) = self.ingress.peek() {
            let bank = head.bank.index();
            if self.bank_queues[bank].is_full() {
                break;
            }
            let (_, req) = self.ingress.pop().expect("peeked head exists");
            self.bank_queues[bank].push(req).expect("checked not full");
            freed += flits;
            self.mark_startable(bank);
        }
        freed
    }

    /// Starts service on every idle bank with queued work. Returns
    /// `(bank, completion_time)` for each started request; the caller
    /// schedules the completions.
    pub fn start_services(&mut self, now: Time) -> Vec<(usize, Time)> {
        let mut started = Vec::new();
        while let Some(bank) = self.startable.pop_front() {
            self.startable_flag[bank] = false;
            if self.engines[bank] != BankEngine::Idle {
                continue;
            }
            let Some(req) = self.bank_queues[bank].pop() else {
                continue;
            };
            let completion = match req.pkt.kind {
                RequestKind::Read { .. } => self.memory.read(now, bank, req.bursts),
                RequestKind::Write { .. } => self.memory.write(now, bank, req.bursts),
                // An atomic performs a read and an internal modify/write;
                // model as a read followed by a write burst on the bank.
                RequestKind::ReadModifyWrite => {
                    let read_done = self.memory.read(now, bank, req.bursts);
                    self.memory.write(read_done, bank, req.bursts)
                }
            };
            self.engines[bank] = BankEngine::InService(req);
            started.push((bank, completion));
        }
        started
    }

    /// Marks `bank`'s in-service request as completed (its scheduled
    /// completion time arrived).
    ///
    /// # Panics
    ///
    /// Panics if the bank has no request in service.
    pub fn complete(&mut self, bank: usize) {
        match self.engines[bank] {
            BankEngine::InService(req) => {
                self.engines[bank] = BankEngine::Completed(req);
                self.ready.push_back(bank);
            }
            _ => panic!("completion for a bank with nothing in service"),
        }
    }

    /// The completed request waiting at `bank`, if any.
    pub fn completed(&self, bank: usize) -> Option<&DeviceRequest> {
        match &self.engines[bank] {
            BankEngine::Completed(req) => Some(req),
            _ => None,
        }
    }

    /// The oldest bank holding a response that still needs NoC egress,
    /// with its request. Responses egress in completion order.
    pub fn ready_response(&self) -> Option<(usize, &DeviceRequest)> {
        let bank = *self.ready.front()?;
        match &self.engines[bank] {
            BankEngine::Completed(req) => Some((bank, req)),
            _ => unreachable!("ready list out of sync with engines"),
        }
    }

    /// Removes the completed request at `bank` (the NoC accepted its
    /// response).
    ///
    /// # Panics
    ///
    /// Panics if the bank has no completed request or is not the oldest
    /// ready response.
    pub fn take_completed(&mut self, bank: usize) -> DeviceRequest {
        assert_eq!(
            self.ready.front(),
            Some(&bank),
            "responses egress in completion order"
        );
        self.ready.pop_front();
        match std::mem::replace(&mut self.engines[bank], BankEngine::Idle) {
            BankEngine::Completed(req) => {
                self.stats.serviced += 1;
                self.mark_startable(bank);
                req
            }
            other => {
                self.engines[bank] = other;
                panic!("no completed request at bank {bank}")
            }
        }
    }

    fn mark_startable(&mut self, bank: usize) {
        if self.engines[bank] == BankEngine::Idle
            && !self.bank_queues[bank].is_empty()
            && !self.startable_flag[bank]
        {
            self.startable_flag[bank] = true;
            self.startable.push_back(bank);
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.engines.len()
    }

    /// Requests currently resident in this vault (ingress + bank queues +
    /// in service or blocked).
    pub fn outstanding(&self) -> usize {
        let queued: usize = self.bank_queues.iter().map(|q| q.len()).sum();
        let busy = self
            .engines
            .iter()
            .filter(|e| **e != BankEngine::Idle)
            .count();
        self.ingress.len() + queued + busy
    }

    /// Counters for this vault.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// The DRAM model behind this controller (for utilization statistics).
    pub fn memory(&self) -> &VaultMemory {
        &self.memory
    }

    fn note_outstanding(&mut self) {
        let now = self.outstanding();
        if now > self.stats.peak_outstanding {
            self.stats.peak_outstanding = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mapping::{BankId, VaultId};
    use hmc_packet::{Address, LinkId, PayloadSize, PortId, RequestPacket, Tag};

    fn req(bank: u8, tag: u16) -> DeviceRequest {
        DeviceRequest {
            pkt: RequestPacket {
                port: PortId(0),
                tag: Tag(tag),
                cube: hmc_packet::CubeId::HOST,
                addr: Address::new(0),
                kind: RequestKind::Read {
                    size: PayloadSize::B32,
                },
            },
            link: LinkId(0),
            vault: VaultId(0),
            bank: BankId(bank),
            bursts: 1,
        }
    }

    fn vault() -> VaultCtrl {
        VaultCtrl::new(16, DramTiming::hmc_gen2(), &VaultTuning::default())
    }

    #[test]
    fn request_flows_through_to_completion() {
        let mut v = vault();
        v.push_ingress(req(3, 1));
        assert_eq!(v.pump_ingress(), 1, "a read request is one flit");
        let started = v.start_services(Time::ZERO);
        assert_eq!(started.len(), 1);
        let (bank, completion) = started[0];
        assert_eq!(bank, 3);
        assert!(completion > Time::ZERO);
        v.complete(bank);
        assert!(v.completed(bank).is_some());
        let done = v.take_completed(bank);
        assert_eq!(done.pkt.tag, Tag(1));
        assert_eq!(v.stats().serviced, 1);
        assert_eq!(v.outstanding(), 0);
    }

    #[test]
    fn one_request_in_service_per_bank() {
        let mut v = vault();
        v.push_ingress(req(0, 1));
        v.push_ingress(req(0, 2));
        v.pump_ingress();
        let started = v.start_services(Time::ZERO);
        assert_eq!(started.len(), 1, "second request queues behind the first");
        assert_eq!(v.outstanding(), 2);
    }

    #[test]
    fn hol_blocking_at_ingress() {
        let tuning = VaultTuning {
            bank_queue_capacity: 1,
            ..VaultTuning::default()
        };
        let mut v = VaultCtrl::new(2, DramTiming::hmc_gen2(), &tuning);
        // Fill bank 0's queue, then put a bank-0 request in front of a
        // bank-1 request in the ingress.
        v.push_ingress(req(0, 1));
        assert_eq!(v.pump_ingress(), 1);
        v.push_ingress(req(0, 2));
        v.push_ingress(req(1, 3));
        // Head (bank 0) blocks: bank-1 request cannot bypass it.
        assert_eq!(v.pump_ingress(), 0);
        assert_eq!(v.outstanding(), 3);
    }

    #[test]
    fn completed_response_blocks_bank_reuse() {
        let mut v = vault();
        v.push_ingress(req(0, 1));
        v.push_ingress(req(0, 2));
        v.pump_ingress();
        let (bank, _) = v.start_services(Time::ZERO)[0];
        v.complete(bank);
        // While the response waits, the next request must not start.
        assert!(v.start_services(Time::from_us(1)).is_empty());
        v.take_completed(bank);
        assert_eq!(v.start_services(Time::from_us(1)).len(), 1);
    }

    #[test]
    fn ingress_capacity_respected() {
        let tuning = VaultTuning {
            ingress_capacity_flits: 9,
            ..VaultTuning::default()
        };
        let v = VaultCtrl::new(16, DramTiming::hmc_gen2(), &tuning);
        assert!(v.can_accept(9));
        assert!(!v.can_accept(10));
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn ingress_overflow_panics() {
        let tuning = VaultTuning {
            ingress_capacity_flits: 9,
            ..VaultTuning::default()
        };
        let mut v = VaultCtrl::new(16, DramTiming::hmc_gen2(), &tuning);
        for t in 0..10 {
            v.push_ingress(req(0, t));
        }
    }

    #[test]
    #[should_panic(expected = "nothing in service")]
    fn spurious_completion_panics() {
        let mut v = vault();
        v.complete(0);
    }

    #[test]
    fn rmw_takes_longer_than_read() {
        let mut v = vault();
        let mut r = req(0, 1);
        v.push_ingress(r);
        v.pump_ingress();
        let (_, read_done) = v.start_services(Time::ZERO)[0];
        let mut v2 = vault();
        r.pkt.kind = RequestKind::ReadModifyWrite;
        v2.push_ingress(r);
        v2.pump_ingress();
        let (_, rmw_done) = v2.start_services(Time::ZERO)[0];
        assert!(rmw_done > read_done);
    }
}
