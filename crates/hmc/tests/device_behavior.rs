//! Behavioural tests of the assembled cube model: end-to-end timing,
//! flow-control conservation, and the structural bandwidth ceilings the
//! paper measures.

use hmc_des::Time;
use hmc_device::{DeviceConfig, DeviceOutput, HmcDevice};
use hmc_mapping::{BankId, VaultId};
use hmc_packet::{Address, LinkId, PayloadSize, PortId, RequestKind, RequestPacket, Tag};

fn read_packet(
    map: &hmc_mapping::AddressMap,
    vault: u8,
    bank: u8,
    tag: u16,
    size: PayloadSize,
) -> RequestPacket {
    RequestPacket {
        port: PortId(0),
        tag: Tag(tag),
        cube: hmc_packet::CubeId::HOST,
        addr: map.encode(VaultId(vault), BankId(bank), u64::from(tag), 0),
        kind: RequestKind::Read { size },
    }
}

/// A minimal well-behaved host: respects request tokens per link, returns
/// response tokens on delivery, drives the device to quiescence.
struct Driver {
    hmc: HmcDevice,
    budget: Vec<u32>,
    to_send: Vec<Vec<RequestPacket>>,
    responses: Vec<(Time, LinkId, hmc_packet::ResponsePacket)>,
    request_tokens_returned: u64,
}

impl Driver {
    fn new(hmc: HmcDevice, per_link: Vec<Vec<RequestPacket>>) -> Driver {
        let links = per_link.len();
        let budget = vec![hmc.request_tokens_per_link(); links];
        let to_send = per_link
            .into_iter()
            .map(|mut v| {
                v.reverse();
                v
            })
            .collect();
        Driver {
            hmc,
            budget,
            to_send,
            responses: Vec::new(),
            request_tokens_returned: 0,
        }
    }

    fn run(&mut self) {
        let mut now = Time::ZERO;
        loop {
            // Send whatever the token budget allows.
            for l in 0..self.to_send.len() {
                while let Some(pkt) = self.to_send[l].last().copied() {
                    if self.budget[l] < pkt.flits() {
                        break;
                    }
                    self.budget[l] -= pkt.flits();
                    self.to_send[l].pop();
                    self.hmc.on_request(now, LinkId(l as u8), pkt);
                }
            }
            // `advance` returns a view of its reused buffer; copy it out
            // so responses can return tokens while iterating.
            let outs: Vec<DeviceOutput> = self.hmc.advance(now).iter().copied().collect();
            for out in outs {
                match out {
                    DeviceOutput::Response { link, pkt, at } => {
                        self.responses.push((at, link, pkt));
                        self.hmc.return_response_tokens(link, pkt.flits());
                    }
                    DeviceOutput::RequestTokens { link, flits } => {
                        self.budget[link.index()] += flits;
                        self.request_tokens_returned += u64::from(flits);
                    }
                }
            }
            match self.hmc.next_wake() {
                Some(t) => {
                    assert!(t >= now, "device wake went backwards");
                    now = t;
                }
                None => {
                    let unsent: usize = self.to_send.iter().map(Vec::len).sum();
                    if unsent == 0 {
                        break;
                    }
                    panic!("deadlock with {unsent} requests unsent");
                }
            }
        }
    }

    fn last_response_at(&self) -> Time {
        self.responses
            .iter()
            .map(|&(at, _, _)| at)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

#[test]
fn single_read_round_trip_latency_is_in_paper_band() {
    // Section IV-B: "the contributing latency of HMC under low load is
    // 100 to 180 ns", including DRAM (~41 ns core), TSV, vault controller
    // and NoC. Our device-internal latency (link RX to response fully
    // serialized, before SerDes flight) should land in that band.
    let cfg = DeviceConfig::ac510_hmc();
    let map = cfg.map;
    let serdes = cfg.link.serdes_latency;
    let hmc = HmcDevice::new(cfg);
    let pkt = read_packet(&map, 0, 0, 1, PayloadSize::B64);
    let mut driver = Driver::new(hmc, vec![vec![pkt], vec![]]);
    driver.run();
    let response_at = driver.last_response_at();
    let internal_ns = (response_at - Time::ZERO - serdes).as_ns_f64();
    assert!(
        (60.0..=200.0).contains(&internal_ns),
        "device-internal no-load latency {internal_ns} ns outside the plausible band"
    );
}

#[test]
fn cross_quadrant_requests_take_longer() {
    let cfg = DeviceConfig::ac510_hmc();
    let map = cfg.map;
    let latency_to_vault = |vault: u8| {
        let hmc = HmcDevice::new(DeviceConfig::ac510_hmc());
        let pkt = read_packet(&map, vault, 0, 1, PayloadSize::B64);
        let mut driver = Driver::new(hmc, vec![vec![pkt], vec![]]);
        driver.run();
        driver.last_response_at()
    };
    // Vault 0 shares the link's quadrant; vault 15 is one switch hop away
    // in each direction.
    let near = latency_to_vault(0);
    let far = latency_to_vault(15);
    assert!(
        far > near,
        "cross-quadrant path must be slower: {near} !< {far}"
    );
    let delta_ns = (far - near).as_ns_f64();
    assert!(
        delta_ns < 41.0,
        "hop penalty {delta_ns} ns should be small vs DRAM"
    );
}

#[test]
fn every_request_gets_exactly_one_response_and_all_tokens_return() {
    let cfg = DeviceConfig::ac510_hmc();
    let map = cfg.map;
    let hmc = HmcDevice::new(cfg);
    let mut per_link: Vec<Vec<RequestPacket>> = vec![Vec::new(), Vec::new()];
    let mut sent = 0u64;
    for tag in 0..64u16 {
        for link in 0..2u8 {
            per_link[usize::from(link)].push(read_packet(
                &map,
                (tag % 16) as u8,
                (tag % 8) as u8,
                tag * 2 + u16::from(link),
                PayloadSize::B32,
            ));
            sent += 1;
        }
    }
    let mut driver = Driver::new(hmc, per_link);
    driver.run();
    assert_eq!(
        driver.responses.len() as u64,
        sent,
        "every request answered exactly once"
    );
    // Every request flit that entered a link buffer must be credited back.
    assert_eq!(
        driver.request_tokens_returned, sent,
        "all request tokens returned"
    );
    let stats = driver.hmc.stats();
    assert_eq!(stats.requests_received, sent);
    assert_eq!(stats.responses_sent, sent);
    assert_eq!(driver.hmc.outstanding(), 0, "nothing left resident");
    // Tag uniqueness: no response duplicated.
    let mut tags: Vec<u16> = driver.responses.iter().map(|&(_, _, p)| p.tag.0).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len() as u64, sent);
}

#[test]
fn single_vault_data_bandwidth_caps_near_10_gbs() {
    // Figure 6 / Section IV-A: accesses within one vault are limited by
    // the vault's ~10 GB/s internal bandwidth.
    let cfg = DeviceConfig::ac510_hmc();
    let map = cfg.map;
    let hmc = HmcDevice::new(cfg);
    let reads = 512u16;
    let pkts: Vec<RequestPacket> = (0..reads)
        .map(|i| read_packet(&map, 0, (i % 16) as u8, i, PayloadSize::B128))
        .collect();
    let mut driver = Driver::new(hmc, vec![pkts, Vec::new()]);
    driver.run();
    let data_bytes = f64::from(reads) * 128.0;
    let gbs = data_bytes * 1e3 / driver.last_response_at().as_ps() as f64;
    assert!(
        (6.0..=10.5).contains(&gbs),
        "single-vault data bandwidth {gbs} GB/s should cap near 10 GB/s"
    );
}

#[test]
fn spread_requests_outrun_single_bank_requests() {
    // Core Figure 6 ordering: the same request count completes much faster
    // spread over 16 vaults than pounding one bank.
    let run = |spread: bool| {
        let cfg = DeviceConfig::ac510_hmc();
        let map = cfg.map;
        let hmc = HmcDevice::new(cfg);
        let pkts: Vec<RequestPacket> = (0..128u16)
            .map(|i| {
                let (vault, bank) = if spread {
                    ((i % 16) as u8, (i / 16 % 16) as u8)
                } else {
                    (0, 0)
                };
                read_packet(&map, vault, bank, i, PayloadSize::B64)
            })
            .collect();
        let mut driver = Driver::new(hmc, vec![pkts, Vec::new()]);
        driver.run();
        driver.last_response_at()
    };
    let spread = run(true);
    let single = run(false);
    assert!(
        single.as_ps() > 3 * spread.as_ps(),
        "single-bank stream should be far slower: spread={spread} single={single}"
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let cfg = DeviceConfig::ac510_hmc();
        let map = cfg.map;
        let hmc = HmcDevice::new(cfg);
        let mut per_link: Vec<Vec<RequestPacket>> = vec![Vec::new(), Vec::new()];
        for i in 0..96u16 {
            per_link[usize::from(i % 2)].push(read_packet(
                &map,
                (i % 16) as u8,
                (i % 4) as u8,
                i,
                PayloadSize::B32,
            ));
        }
        let mut driver = Driver::new(hmc, per_link);
        driver.run();
        driver
            .responses
            .iter()
            .map(|&(at, link, pkt)| (at.as_ps(), link.0, pkt.tag.0))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn flat_crossbar_topology_also_works() {
    // The quadrant count is a geometry knob; a single-quadrant geometry is
    // the flat-crossbar ablation of DESIGN.md.
    let mut cfg = DeviceConfig::ac510_hmc();
    let mut geometry = *cfg.map.geometry();
    geometry.quadrants = 1;
    cfg.map = hmc_mapping::AddressMap::new(geometry, hmc_mapping::BlockSize::B128);
    cfg.link_quadrants = vec![hmc_mapping::QuadrantId(0)];
    let map = cfg.map;
    let hmc = HmcDevice::new(cfg);
    let pkts: Vec<RequestPacket> = (0..32u16)
        .map(|i| read_packet(&map, (i % 16) as u8, 0, i, PayloadSize::B64))
        .collect();
    let mut driver = Driver::new(hmc, vec![pkts]);
    driver.run();
    assert_eq!(driver.responses.len(), 32);
}

#[test]
fn writes_complete_and_ack_with_one_flit() {
    let cfg = DeviceConfig::ac510_hmc();
    let map = cfg.map;
    let hmc = HmcDevice::new(cfg);
    let pkts: Vec<RequestPacket> = (0..16u16)
        .map(|i| RequestPacket {
            port: PortId(0),
            tag: Tag(i),
            cube: hmc_packet::CubeId::HOST,
            addr: map.encode(VaultId((i % 16) as u8), BankId(0), 0, 0),
            kind: RequestKind::Write {
                size: PayloadSize::B64,
            },
        })
        .collect();
    let mut driver = Driver::new(hmc, vec![pkts, Vec::new()]);
    driver.run();
    assert_eq!(driver.responses.len(), 16);
    for &(_, _, pkt) in &driver.responses {
        assert_eq!(pkt.flits(), 1, "write acks are header/tail only");
    }
}

#[test]
fn ignored_high_address_bits_do_not_crash() {
    let cfg = DeviceConfig::ac510_hmc();
    let hmc = HmcDevice::new(cfg);
    let pkt = RequestPacket {
        port: PortId(0),
        tag: Tag(0),
        cube: hmc_packet::CubeId::HOST,
        addr: Address::new((1 << 33) | 0x80),
        kind: RequestKind::Read {
            size: PayloadSize::B16,
        },
    };
    let mut driver = Driver::new(hmc, vec![vec![pkt], Vec::new()]);
    driver.run();
    assert_eq!(driver.responses.len(), 1);
}
