//! Property tests for the link-retry protocol: under any fault spec the
//! delivered stream equals the error-free oracle's stream — no loss, no
//! duplication, no reorder — failures only push delivery times later,
//! and the retry counters account for every corrupted flit exactly.

use hmc_des::Time;
use hmc_faults::{LinkFaultSpec, LinkFaults, LinkKey};
use hmc_link::{LinkConfig, LinkTx, RetryTuning};
use proptest::prelude::*;

/// A token pool deep enough that flow control never interferes: the
/// properties under test are about the retry protocol, not credits.
fn deep_cfg() -> LinkConfig {
    LinkConfig {
        input_buffer_flits: 1 << 20,
        ..LinkConfig::ac510_default()
    }
}

fn armed(seed: u64, spec: LinkFaultSpec, degrade: Option<u64>) -> LinkTx<u32> {
    let cfg = deep_cfg();
    let mut tx: LinkTx<u32> = LinkTx::new(&cfg);
    let inj = LinkFaults::new(seed, LinkKey::edge(0, 1), spec);
    tx.set_faults(inj, RetryTuning::derive(&cfg).with_degrade_after(degrade));
    tx
}

/// Drains `mix` through `tx` in one service call (the eager wire
/// schedule serializes everything sendable) and returns the deliveries.
fn drain(tx: &mut LinkTx<u32>, mix: &[u32]) -> Vec<(Time, u32, u32)> {
    for (i, &flits) in mix.iter().enumerate() {
        tx.enqueue(i as u32, flits);
    }
    tx.service(Time::ZERO)
        .iter()
        .map(|d| (d.at, d.flits, d.payload))
        .collect()
}

proptest! {
    /// Any BER/burst/degrade mix: the faulty link delivers exactly the
    /// oracle's payload stream, never earlier, and the counters balance.
    #[test]
    fn delivered_stream_equals_the_error_free_oracle(
        seed in any::<u64>(),
        ber_milli in 0u64..400,
        burst in 0u32..4,
        degrade_raw in 0u64..16,
        mix in prop::collection::vec(1u32..10, 1..120),
    ) {
        // The shim draws integers; derive the float/Option knobs here.
        let ber = ber_milli as f64 / 1000.0;
        let degrade = (degrade_raw > 0).then_some(degrade_raw);
        let spec = LinkFaultSpec::ber(ber).with_burst(burst);
        let mut oracle: LinkTx<u32> = LinkTx::new(&deep_cfg());
        let mut faulty = armed(seed, spec, degrade);
        let clean = drain(&mut oracle, &mix);
        let noisy = drain(&mut faulty, &mix);

        // No loss, duplication or reorder: payloads and lengths match
        // the oracle's stream one for one.
        prop_assert_eq!(clean.len(), noisy.len());
        for (c, n) in clean.iter().zip(noisy.iter()) {
            prop_assert_eq!((c.1, c.2), (n.1, n.2), "stream diverged");
            prop_assert!(n.0 >= c.0, "a failure must never deliver early");
        }

        let s = faulty.stats();
        prop_assert_eq!(s.packets_sent, mix.len() as u64);
        prop_assert_eq!(s.retries, s.crc_errors + s.down_drops);
        prop_assert_eq!(s.down_drops, 0, "no down windows in this spec");
        if ber_milli == 0 {
            prop_assert_eq!(s.retries, 0);
        }
    }

    /// Exact accounting: an independent replay of the injector — one
    /// `corrupt_packet` draw per attempt until it clears, exactly as the
    /// transmitter loops — predicts `crc_errors` and
    /// `retransmitted_flits` to the flit.
    #[test]
    fn retransmitted_flits_match_an_independent_injector_replay(
        seed in any::<u64>(),
        ber_milli in 0u64..400,
        burst in 0u32..4,
        mix in prop::collection::vec(1u32..10, 1..120),
    ) {
        let spec = LinkFaultSpec::ber(ber_milli as f64 / 1000.0).with_burst(burst);
        let mut faulty = armed(seed, spec.clone(), None);
        drain(&mut faulty, &mix);

        let mut replay = LinkFaults::new(seed, LinkKey::edge(0, 1), spec);
        let (mut crc, mut retx) = (0u64, 0u64);
        for &flits in &mix {
            while replay.corrupt_packet(flits) {
                crc += 1;
                retx += u64::from(flits);
            }
        }
        let s = faulty.stats();
        prop_assert_eq!(s.crc_errors, crc);
        prop_assert_eq!(s.retransmitted_flits, retx);
        prop_assert_eq!(replay.flit_seq(), faulty.stats().flits_sent + retx,
            "every wire flit consumed exactly one draw");
    }

    /// Down windows stall the wire but still lose nothing, and every
    /// cut transmission is retried after the window closes.
    #[test]
    fn down_windows_stall_but_never_lose(
        seed in any::<u64>(),
        ber_milli in 0u64..100,
        open_ns in 0u64..2_000,
        len_ns in 1u64..5_000,
        mix in prop::collection::vec(1u32..10, 1..80),
    ) {
        let open = Time::from_ns(open_ns);
        let spec = LinkFaultSpec::ber(ber_milli as f64 / 1000.0)
            .with_down(open, open + hmc_des::Delay::from_ns(len_ns));
        let mut oracle: LinkTx<u32> = LinkTx::new(&deep_cfg());
        let mut faulty = armed(seed, spec, None);
        let clean = drain(&mut oracle, &mix);
        let noisy = drain(&mut faulty, &mix);
        prop_assert_eq!(clean.len(), noisy.len());
        for (c, n) in clean.iter().zip(noisy.iter()) {
            prop_assert_eq!((c.1, c.2), (n.1, n.2));
            prop_assert!(n.0 >= c.0);
        }
        let s = faulty.stats();
        prop_assert_eq!(s.retries, s.crc_errors + s.down_drops);
        prop_assert_eq!(s.packets_sent, mix.len() as u64);
    }
}
