//! # hmc-link
//!
//! The external serialized links between host controller and cube:
//! configuration ([`LinkConfig`]) and the transmit-side model ([`LinkTx`])
//! with HMC-style token flow control.
//!
//! Calibration anchors from the reproduced paper:
//!
//! - two half-width links × 8 lanes × 15 Gbps × 2 directions = 60 GB/s peak
//!   (Equation 1);
//! - effective throughput tops out near 23 GB/s of counted bidirectional
//!   traffic for 128 B reads (Figures 6/13) — captured by the
//!   `protocol_overhead` serialization stretch;
//! - packet-based memories pay serialization/deserialization and flow
//!   control on every access (Section II-B) — the fixed `serdes_latency`.
//!
//! ```
//! use hmc_des::Time;
//! use hmc_link::{LinkConfig, LinkTx};
//!
//! let mut tx: LinkTx<u32> = LinkTx::new(&LinkConfig::ac510_default());
//! tx.enqueue(7, 9); // a 128 B read response
//! let deliveries = tx.service(Time::ZERO);
//! assert_eq!(deliveries.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod retry;

pub use crate::core::{Deliveries, LinkDelivery, LinkStats, LinkTx};
pub use config::{LinkConfig, LinkWidth};
pub use retry::RetryTuning;
