//! External link configuration.

use hmc_des::Delay;

use hmc_packet::FLIT_BYTES;

/// Width of one external link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkWidth {
    /// 8 lanes per direction ("half-width", as on the AC-510).
    Half,
    /// 16 lanes per direction ("full-width").
    Full,
}

impl LinkWidth {
    /// Lanes per direction.
    #[inline]
    pub const fn lanes(self) -> u32 {
        match self {
            LinkWidth::Half => 8,
            LinkWidth::Full => 16,
        }
    }
}

/// Configuration of one full-duplex serialized link between host and cube.
///
/// The defaults describe the AC-510: a half-width (8-lane) link at 15 Gbps
/// per lane, i.e. 15 GB/s of raw bandwidth per direction, two of which give
/// the board its 60 GB/s peak (Equation 1 of the paper).
///
/// `protocol_overhead` folds everything the transaction layer does not see
/// — token-return flow packets, CRC/retry, lane run-length coding, packet
/// gaps — into a per-packet serialization stretch. The default of 0.40
/// (≈71% efficiency) reproduces the ≈23 GB/s effective ceiling the paper
/// measures for 128 B reads (Figures 6 and 13) against the 30 GB/s raw
/// response-direction bandwidth.
///
/// # Examples
///
/// ```
/// use hmc_link::LinkConfig;
///
/// let link = LinkConfig::ac510_default();
/// assert_eq!(link.raw_gb_per_s_per_direction(), 15.0);
/// // One flit = 16 B at 15 GB/s ≈ 1.067 ns before overhead.
/// assert_eq!(link.flit_time().as_ps(), 1_067);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Link width (lanes per direction).
    pub width: LinkWidth,
    /// Signalling rate per lane in Gbps (10, 12.5 or 15 for HMC 1.1).
    pub lane_gbps: f64,
    /// Fixed one-way latency: SerDes TX + flight + SerDes RX.
    pub serdes_latency: Delay,
    /// Fractional serialization stretch per packet for protocol overhead.
    pub protocol_overhead: f64,
    /// Receiver input-buffer size in flits — the token pool of the HMC
    /// flow-control protocol.
    pub input_buffer_flits: u32,
    /// Minimum wire occupancy per packet, regardless of length: models the
    /// controller's per-packet processing rate (the Pico controller hands
    /// off roughly one packet per FPGA cycle pair per link, which is what
    /// keeps small-packet bandwidth below large-packet bandwidth in
    /// Figures 6 and 13 even though small packets serialize faster).
    pub min_packet_time: Delay,
}

impl LinkConfig {
    /// The AC-510 link: half-width, 15 Gbps lanes.
    pub fn ac510_default() -> LinkConfig {
        LinkConfig {
            width: LinkWidth::Half,
            lane_gbps: 15.0,
            serdes_latency: Delay::from_ps(55_000),
            protocol_overhead: 0.40,
            input_buffer_flits: 256,
            min_packet_time: Delay::from_ps(10_667),
        }
    }

    /// Raw bandwidth per direction in GB/s (10⁹ B/s).
    pub fn raw_gb_per_s_per_direction(&self) -> f64 {
        f64::from(self.width.lanes()) * self.lane_gbps / 8.0
    }

    /// Time to serialize one flit at the raw lane rate.
    pub fn flit_time(&self) -> Delay {
        let ns = FLIT_BYTES as f64 / self.raw_gb_per_s_per_direction();
        Delay::from_ns_f64(ns)
    }

    /// Wire occupancy of a packet of `flits` flits: serialization at the
    /// effective rate, floored by the per-packet processing time.
    pub fn packet_time(&self, flits: u32) -> Delay {
        (self.effective_flit_time() * flits).max(self.min_packet_time)
    }

    /// Time to serialize one flit including protocol overhead — the
    /// effective per-flit cost the transaction layer experiences.
    pub fn effective_flit_time(&self) -> Delay {
        let ns =
            FLIT_BYTES as f64 / self.raw_gb_per_s_per_direction() * (1.0 + self.protocol_overhead);
        Delay::from_ns_f64(ns)
    }

    /// Effective bandwidth per direction after protocol overhead, GB/s.
    pub fn effective_gb_per_s_per_direction(&self) -> f64 {
        self.raw_gb_per_s_per_direction() / (1.0 + self.protocol_overhead)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.lane_gbps > 0.0 && self.lane_gbps.is_finite()) {
            return Err("lane rate must be positive".to_owned());
        }
        if !(self.protocol_overhead >= 0.0 && self.protocol_overhead.is_finite()) {
            return Err("protocol overhead must be non-negative".to_owned());
        }
        if self.input_buffer_flits == 0 {
            return Err("receiver input buffer must hold at least one flit".to_owned());
        }
        Ok(())
    }
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig::ac510_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_peak_bandwidth() {
        // 2 links × 8 lanes × 15 Gbps × 2 (duplex) = 60 GB/s.
        let link = LinkConfig::ac510_default();
        let peak = 2.0 * link.raw_gb_per_s_per_direction() * 2.0;
        assert_eq!(peak, 60.0);
    }

    #[test]
    fn full_width_doubles_rate() {
        let mut link = LinkConfig::ac510_default();
        link.width = LinkWidth::Full;
        assert_eq!(link.raw_gb_per_s_per_direction(), 30.0);
        assert_eq!(LinkWidth::Full.lanes(), 16);
    }

    #[test]
    fn effective_rate_reflects_overhead() {
        let link = LinkConfig::ac510_default();
        let eff = link.effective_gb_per_s_per_direction();
        assert!((eff - 15.0 / 1.4).abs() < 1e-9);
        assert!(link.effective_flit_time() > link.flit_time());
        // Two links of effective response bandwidth land near the paper's
        // ≈21 GB/s response ceiling (⇒ ≈23 GB/s counted bidirectionally).
        assert!((2.0 * eff - 21.4).abs() < 0.1);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut link = LinkConfig::ac510_default();
        link.lane_gbps = 0.0;
        assert!(link.validate().is_err());
        let mut link = LinkConfig::ac510_default();
        link.protocol_overhead = -0.5;
        assert!(link.validate().is_err());
        let mut link = LinkConfig::ac510_default();
        link.input_buffer_flits = 0;
        assert!(link.validate().is_err());
        assert!(LinkConfig::ac510_default().validate().is_ok());
    }

    #[test]
    fn slower_lane_rates_supported() {
        let mut link = LinkConfig::ac510_default();
        link.lane_gbps = 10.0;
        assert_eq!(link.raw_gb_per_s_per_direction(), 10.0);
        assert_eq!(link.flit_time().as_ps(), 1_600);
    }
}
