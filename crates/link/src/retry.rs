//! The HMC link-retry protocol: retry-buffer retention, CRC-failure
//! retransmission timing, and half-width degradation state.
//!
//! Real HMC links stamp every packet with a CRC and a 3-bit SEQ, keep
//! transmitted packets in a retry buffer until the peer's return retry
//! pointer (RRP) acks them, and on a CRC failure run the
//! ErrorAbort/StartRetry (IRTRY) exchange before retransmitting from the
//! buffer. The transmit model folds all of that into its eager wire
//! schedule: the deterministic injector (`hmc-faults`) tells the
//! transmitter which attempts fail, each failed attempt occupies real
//! wire time and is followed by the retry turnaround, and the bounded
//! retry buffer stalls the wire when it is full of unacked packets.
//! Because failures only push the schedule *later*, cross-domain
//! lookahead envelopes are preserved and the delivered packet stream is
//! loss-, duplication- and reorder-free by construction.

use std::collections::VecDeque;

use hmc_des::{Delay, Time};
use hmc_faults::LinkFaults;
use hmc_packet::{FlowType, LinkSeq};

use crate::config::LinkConfig;

/// Timing and sizing of the retry protocol on one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryTuning {
    /// Retry-buffer capacity in flits: transmitted-but-unacked packets
    /// the transmitter can retain. A full buffer stalls the wire until
    /// the oldest retained packet's ack arrives.
    pub buffer_flits: u32,
    /// Time from the end of a good transmission until the peer's return
    /// retry pointer frees the retained copy: a SerDes round trip plus
    /// one retry-pointer-return flit.
    pub ack_delay: Delay,
    /// Wire time lost to one CRC failure beyond the wasted transmission:
    /// the ErrorAbort/StartRetry (IRTRY) exchange — a SerDes round trip
    /// plus one IRTRY flit — before retransmission may begin.
    pub turnaround: Delay,
    /// Graceful degradation: after this many CRC errors the lanes fall
    /// to half width (flit serialization time doubles) for the rest of
    /// the run. `None` disables the fallback.
    pub degrade_after: Option<u64>,
}

impl RetryTuning {
    /// Derives the protocol timing from a link configuration: the retry
    /// buffer mirrors the receiver's input buffer (every in-flight flit
    /// has a retained copy), and both ack and turnaround ride the link's
    /// own SerDes and flit rate.
    pub fn derive(cfg: &LinkConfig) -> RetryTuning {
        let round_trip = cfg.serdes_latency * 2u32;
        RetryTuning {
            // Never smaller than one max-size packet, or the buffer
            // could not retain what the wire just sent.
            buffer_flits: cfg.input_buffer_flits.max(9),
            ack_delay: round_trip + cfg.packet_time(FlowType::RetryPointerReturn.flits()),
            turnaround: round_trip + cfg.packet_time(FlowType::InitRetry.flits()),
            degrade_after: None,
        }
    }

    /// Sets the half-width fallback threshold.
    pub fn with_degrade_after(mut self, crc_errors: Option<u64>) -> RetryTuning {
        self.degrade_after = crc_errors;
        self
    }
}

/// One retained (transmitted but not yet acked) packet.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Retained {
    /// When the return retry pointer frees this slot.
    pub free_at: Time,
    /// Flits retained.
    pub flits: u32,
    /// The SEQ stamped on the transmission (kept for protocol fidelity;
    /// the deterministic model never observes a SEQ gap the transmitter
    /// did not already know about).
    #[allow(dead_code)]
    pub seq: LinkSeq,
}

/// Fault-path state of one transmitter: the injector plus the retry
/// buffer and degradation latch. Boxed inside `LinkTx` so the fault-free
/// path pays one pointer-null test and nothing else.
#[derive(Debug, Clone)]
pub(crate) struct FaultLane {
    /// Which transmissions fail, and when the wire is down.
    pub inj: LinkFaults,
    /// Protocol timing and the degradation policy.
    pub tuning: RetryTuning,
    /// Transmitted packets awaiting their retry-pointer ack, in wire
    /// order (the RRP acks in order, so the front is always the oldest).
    pub retained: VecDeque<Retained>,
    /// Flits currently retained.
    pub retained_flits: u32,
    /// Latched half-width state (permanent lane failure, or the degrade
    /// threshold crossed).
    pub degraded: bool,
    /// SEQ for the next fresh transmission.
    pub next_seq: LinkSeq,
}

impl FaultLane {
    pub(crate) fn new(inj: LinkFaults, tuning: RetryTuning) -> FaultLane {
        let degraded = inj.half_width();
        FaultLane {
            inj,
            tuning,
            retained: VecDeque::new(),
            retained_flits: 0,
            degraded,
            next_seq: LinkSeq::default(),
        }
    }

    /// Serialization time of one attempt at the current lane width.
    #[inline]
    pub(crate) fn attempt_time(&self, cfg: &LinkConfig, flits: u32) -> Delay {
        let t = cfg.packet_time(flits);
        if self.degraded {
            t * 2u32
        } else {
            t
        }
    }

    /// Frees acked slots at `cursor`, and while the buffer cannot also
    /// hold `flits` more, advances `cursor` to the oldest outstanding
    /// ack. Returns the (possibly stalled) cursor.
    pub(crate) fn admit(&mut self, mut cursor: Time, flits: u32) -> Time {
        while let Some(head) = self.retained.front().copied() {
            if head.free_at > cursor {
                if self.retained_flits + flits <= self.tuning.buffer_flits {
                    break;
                }
                // Retry buffer full: the wire stalls for the ack.
                cursor = head.free_at;
            }
            self.retained.pop_front();
            self.retained_flits -= head.flits;
        }
        cursor
    }

    /// Retains a just-delivered packet until its ack returns.
    pub(crate) fn retain(&mut self, end: Time, flits: u32) {
        self.retained.push_back(Retained {
            free_at: end + self.tuning.ack_delay,
            flits,
            seq: self.next_seq,
        });
        self.retained_flits += flits;
        self.next_seq = self.next_seq.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_derives_from_link_timing() {
        let cfg = LinkConfig::ac510_default();
        let t = RetryTuning::derive(&cfg);
        assert_eq!(t.buffer_flits, cfg.input_buffer_flits.max(9));
        let round_trip = cfg.serdes_latency * 2u32;
        assert_eq!(t.ack_delay, round_trip + cfg.packet_time(1));
        assert_eq!(t.turnaround, round_trip + cfg.packet_time(1));
        assert_eq!(t.degrade_after, None);
        assert_eq!(t.with_degrade_after(Some(5)).degrade_after, Some(5));
    }

    #[test]
    fn admit_stalls_only_when_full() {
        use hmc_faults::{LinkFaultSpec, LinkKey};
        let tuning = RetryTuning {
            buffer_flits: 10,
            ack_delay: Delay::from_ns(100),
            turnaround: Delay::from_ns(50),
            degrade_after: None,
        };
        let inj = LinkFaults::new(0, LinkKey::edge(0, 1), LinkFaultSpec::ber(0.0));
        let mut lane = FaultLane::new(inj, tuning);
        // Two 4-flit packets retained; a 2-flit packet still fits.
        lane.retain(Time::from_ns(10), 4);
        lane.retain(Time::from_ns(20), 4);
        assert_eq!(lane.admit(Time::from_ns(30), 2), Time::from_ns(30));
        assert_eq!(lane.retained_flits, 8);
        // A 9-flit packet does not fit beside either slot (4+9 > 10):
        // the wire stalls through both acks (the later lands at 20+100).
        let mut lane2 = lane.clone();
        assert_eq!(lane2.admit(Time::from_ns(30), 9), Time::from_ns(120));
        assert_eq!(lane2.retained_flits, 0, "both slots freed by their acks");
        // Once acks have passed, slots free without stalling.
        assert_eq!(lane.admit(Time::from_ns(500), 9), Time::from_ns(500));
        assert_eq!(lane.retained_flits, 0);
    }

    #[test]
    fn seq_advances_per_retained_packet() {
        use hmc_faults::{LinkFaultSpec, LinkKey};
        let cfg = LinkConfig::ac510_default();
        let inj = LinkFaults::new(0, LinkKey::host(0), LinkFaultSpec::ber(0.0));
        let mut lane = FaultLane::new(inj, RetryTuning::derive(&cfg));
        for i in 0..20u8 {
            assert_eq!(lane.next_seq, LinkSeq(i % LinkSeq::MODULUS));
            lane.retain(Time::from_ns(u64::from(i)), 1);
        }
    }
}
