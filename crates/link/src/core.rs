//! One direction of a serialized link, with token flow control.

use std::collections::VecDeque;

use hmc_des::{Clocked, Delay, InlineVec, Time};
use hmc_noc::Credits;
use hmc_telemetry::{LinkDir, Probe};

use crate::config::LinkConfig;

/// The delivery scratch buffer [`LinkTx::service_into`] fills: four inline
/// slots cover the common drain; longer bursts spill once into the
/// caller's reused buffer.
pub type Deliveries<P> = InlineVec<LinkDelivery<P>, 4>;

/// A packet delivered at the far end of the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelivery<P> {
    /// When the packet has fully arrived at the receiver (serialization
    /// plus SerDes latency).
    pub at: Time,
    /// Packet length in flits.
    pub flits: u32,
    /// The carried payload.
    pub payload: P,
}

/// Counters describing one link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire.
    pub packets_sent: u64,
    /// Flits fully serialized onto the wire.
    pub flits_sent: u64,
    /// Service attempts that found a head-of-queue packet but no tokens —
    /// a direct measure of receiver-buffer backpressure.
    pub token_stalls: u64,
    /// Peak occupancy of the sender-side queue, in flits.
    pub peak_queue_flits: u32,
}

/// The transmit side of one link direction.
///
/// Packets wait in a sender queue, spend receiver tokens (one per flit) and
/// serialize at the effective flit rate; delivery lands after the SerDes
/// latency. Sans-event like [`hmc_noc::SwitchCore`]: call
/// [`LinkTx::service`] on changes, sleep until [`LinkTx::next_wake`].
///
/// # Examples
///
/// ```
/// use hmc_des::Time;
/// use hmc_link::{LinkConfig, LinkTx};
///
/// let cfg = LinkConfig::ac510_default();
/// let mut tx: LinkTx<&str> = LinkTx::new(&cfg);
/// tx.enqueue("read request", 1);
/// let out = tx.service(Time::ZERO);
/// assert_eq!(out.len(), 1);
/// // One-flit packets occupy the per-packet processing floor (10.667 ns),
/// // then fly for 55 ns of SerDes latency.
/// assert_eq!(out[0].at.as_ps(), 10_667 + 55_000);
/// ```
#[derive(Debug, Clone)]
pub struct LinkTx<P> {
    cfg: LinkConfig,
    serdes_latency: Delay,
    queue: VecDeque<(u32, P)>,
    queue_flits: u32,
    busy_until: Time,
    tokens: Credits,
    stats: LinkStats,
    probe: Probe,
    /// `(cube, link, direction)` identity stamped on emitted telemetry.
    site: (u8, u8, LinkDir),
}

impl<P> LinkTx<P> {
    /// Creates an idle transmitter for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &LinkConfig) -> LinkTx<P> {
        cfg.validate().expect("valid link config");
        LinkTx {
            cfg: *cfg,
            serdes_latency: cfg.serdes_latency,
            queue: VecDeque::new(),
            queue_flits: 0,
            busy_until: Time::ZERO,
            tokens: Credits::new(cfg.input_buffer_flits),
            stats: LinkStats::default(),
            probe: Probe::off(),
            site: (0, 0, LinkDir::Request),
        }
    }

    /// Attaches a telemetry probe; committed packets emit one
    /// link-flit event stamped `(cube, link, dir)` at their wire-commit
    /// time. Detached by default ([`Probe::off`]), which keeps
    /// [`LinkTx::service_into`] on its allocation-free fast path.
    pub fn set_probe(&mut self, probe: Probe, cube: u8, link: u8, dir: LinkDir) {
        self.probe = probe;
        self.site = (cube, link, dir);
    }

    /// Appends a packet of `flits` flits to the sender queue.
    ///
    /// The sender queue is unbounded here; the caller (host controller or
    /// device egress) applies its own admission policy before enqueueing.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn enqueue(&mut self, payload: P, flits: u32) {
        assert!(flits > 0, "packets have at least one flit");
        self.queue_flits += flits;
        self.stats.peak_queue_flits = self.stats.peak_queue_flits.max(self.queue_flits);
        self.queue.push_back((flits, payload));
    }

    /// Occupancy of the sender queue in flits.
    #[inline]
    pub fn queue_flits(&self) -> u32 {
        self.queue_flits
    }

    /// Total backlog at `now`, in flits: unserialized queue plus the
    /// serialization still outstanding on the wire. This is the load
    /// signal a controller uses to balance traffic across links — the
    /// plain queue empties the instant packets are committed to the wire
    /// schedule, so it under-reports load.
    pub fn backlog_flits(&self, now: Time) -> u32 {
        let wire_ps = self.busy_until.saturating_since(now).as_ps();
        let flit_ps = self.cfg.effective_flit_time().as_ps().max(1);
        self.queue_flits + u32::try_from(wire_ps.div_ceil(flit_ps)).unwrap_or(u32::MAX)
    }

    /// Number of queued packets.
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tokens currently available (receiver buffer space).
    #[inline]
    pub fn tokens_available(&self) -> u32 {
        self.tokens.available()
    }

    /// Returns tokens to the pool: the receiver drained `flits` flits from
    /// its input buffer. On silicon this rides back in the token-return
    /// fields of reverse-direction packets; the simulator delivers it as a
    /// zero-cost message.
    ///
    /// Returns `true` if a queued head was starving on tokens — the
    /// caller should run [`LinkTx::service`]; on `false` nothing was
    /// blocked and no service pass is needed. (After any service call, a
    /// non-empty queue implies a token-starved head, so this notification
    /// is the *only* wake-up a sleeping transmitter needs.)
    pub fn return_tokens(&mut self, flits: u32) -> bool {
        self.tokens.put(flits)
    }

    /// Serializes as many queued packets as tokens and wire availability
    /// allow at `now`. Returns deliveries stamped with their arrival time
    /// at the far end.
    ///
    /// Convenience form of [`LinkTx::service_into`]; hot paths pass a
    /// reused scratch buffer instead so steady-state service allocates
    /// nothing.
    pub fn service(&mut self, now: Time) -> Deliveries<P> {
        let mut out = Deliveries::new();
        self.service_into(now, &mut out);
        out
    }

    /// Serializes as many queued packets as tokens and wire availability
    /// allow at `now`, appending each delivery (stamped with its arrival
    /// time at the far end) to `out` in wire order.
    pub fn service_into(&mut self, now: Time, out: &mut Deliveries<P>) {
        // The wire is busy until `busy_until`; serialization is strictly
        // serial, so later packets start where earlier ones ended.
        let mut cursor = self.busy_until.max(now);
        while let Some(&(flits, _)) = self.queue.front() {
            if self.busy_until > now {
                // A packet is mid-flight on the wire; further starts are
                // still allowed to queue up behind it within this call,
                // but only if tokens exist.
            }
            if !self.tokens.try_take(flits) {
                self.stats.token_stalls += 1;
                break;
            }
            let (flits, payload) = self.queue.pop_front().expect("front exists");
            self.queue_flits -= flits;
            let end = cursor + self.cfg.packet_time(flits);
            cursor = end;
            self.stats.packets_sent += 1;
            self.stats.flits_sent += u64::from(flits);
            let (cube, link, dir) = self.site;
            self.probe.link_flits(cube, link, dir, flits, end);
            out.push(LinkDelivery {
                at: end + self.serdes_latency,
                flits,
                payload,
            });
        }
        self.busy_until = cursor;
    }

    /// The earliest future time service could progress on its own. Because
    /// [`LinkTx::service`] serializes everything sendable immediately
    /// (charging wire time forward), there is no self-wake; token-blocked
    /// heads wait for the [`LinkTx::return_tokens`] notification. Exposed
    /// for [`Clocked`] protocol symmetry.
    pub fn next_wake(&self, _now: Time) -> Option<Time> {
        None
    }

    /// When the wire finishes its current serialization backlog.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Counters for this direction.
    #[inline]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

impl<P> Clocked for LinkTx<P> {
    fn next_wake(&self, now: Time) -> Option<Time> {
        LinkTx::next_wake(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig::ac510_default()
    }

    #[test]
    fn serialization_is_serial_and_cumulative() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 9);
        tx.enqueue(1, 9);
        let out = tx.service(Time::ZERO);
        assert_eq!(out.len(), 2);
        let per_pkt = cfg().effective_flit_time() * 9u32;
        assert_eq!(out[0].at, Time::ZERO + per_pkt + cfg().serdes_latency);
        assert_eq!(
            out[1].at,
            Time::ZERO + per_pkt + per_pkt + cfg().serdes_latency
        );
    }

    #[test]
    fn effective_bandwidth_matches_config() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // A deep token pool so the wire, not flow control, is measured.
        let mut deep = cfg();
        deep.input_buffer_flits = 1024;
        let mut tx: LinkTx<u32> = LinkTx::new(&deep);
        let packets = 1_000u32;
        for i in 0..packets {
            tx.enqueue(i, 9);
        }
        // An ideal receiver: drains each delivery the moment it lands and
        // returns its tokens, re-servicing the link at that instant.
        let mut pending: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        for d in tx.service(Time::ZERO) {
            pending.push(Reverse((d.at, d.flits)));
        }
        let mut last = Time::ZERO;
        while let Some(Reverse((at, flits))) = pending.pop() {
            last = at;
            tx.return_tokens(flits);
            for d in tx.service(at) {
                pending.push(Reverse((d.at, d.flits)));
            }
        }
        assert_eq!(tx.queue_len(), 0);
        let bytes = f64::from(packets) * 9.0 * 16.0;
        let elapsed_ps = (last - Time::ZERO).as_ps() as f64 - cfg().serdes_latency.as_ps() as f64;
        let gbs = bytes * 1e3 / elapsed_ps;
        let expected = cfg().effective_gb_per_s_per_direction();
        assert!(
            (gbs - expected).abs() < 0.2,
            "measured {gbs}, expected {expected}"
        );
    }

    #[test]
    fn tokens_block_and_release() {
        let mut link_cfg = cfg();
        link_cfg.input_buffer_flits = 10;
        let mut tx: LinkTx<u32> = LinkTx::new(&link_cfg);
        tx.enqueue(0, 9);
        tx.enqueue(1, 9);
        let out = tx.service(Time::ZERO);
        assert_eq!(out.len(), 1, "second packet token-starved");
        assert_eq!(tx.tokens_available(), 1);
        assert_eq!(tx.stats().token_stalls, 1);
        assert!(tx.return_tokens(9), "starved head notifies on return");
        let out = tx.service(Time::from_ns(100));
        assert_eq!(out.len(), 1);
        assert_eq!(tx.stats().packets_sent, 2);
    }

    #[test]
    fn busy_wire_pushes_later_sends_out() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 9);
        tx.service(Time::ZERO);
        let t1 = tx.busy_until();
        // Enqueue a second packet before the wire is free.
        tx.enqueue(1, 1);
        let out = tx.service(Time::ZERO);
        assert_eq!(out[0].at, t1 + cfg().packet_time(1) + cfg().serdes_latency);
    }

    #[test]
    fn stats_track_peaks() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 9);
        tx.enqueue(1, 2);
        assert_eq!(tx.queue_flits(), 11);
        tx.service(Time::ZERO);
        assert_eq!(tx.stats().peak_queue_flits, 11);
        assert_eq!(tx.stats().flits_sent, 11);
        assert_eq!(tx.queue_flits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_rejected() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 0);
    }
}
