//! One direction of a serialized link, with token flow control.

use std::collections::VecDeque;

use hmc_des::{Clocked, Delay, InlineVec, Time};
use hmc_faults::LinkFaults;
use hmc_noc::Credits;
use hmc_telemetry::{LinkDir, Probe, Stage};

use crate::config::LinkConfig;
use crate::retry::{FaultLane, RetryTuning};

/// The delivery scratch buffer [`LinkTx::service_into`] fills: four inline
/// slots cover the common drain; longer bursts spill once into the
/// caller's reused buffer.
pub type Deliveries<P> = InlineVec<LinkDelivery<P>, 4>;

/// Payload identity extractor registered with
/// [`LinkTx::set_trace_identity`]: maps a payload to the `(port, tag)`
/// pair stamped on `Retry` lifecycle-trace marks.
pub type TraceIdFn<P> = fn(&P) -> (u16, u16);

/// A packet delivered at the far end of the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelivery<P> {
    /// When the packet has fully arrived at the receiver (serialization
    /// plus SerDes latency).
    pub at: Time,
    /// Packet length in flits.
    pub flits: u32,
    /// The carried payload.
    pub payload: P,
}

/// Counters describing one link direction.
///
/// The retry counters (`crc_errors`, `down_drops`, `retries`,
/// `retransmitted_flits`, `degraded`) stay exactly zero/false unless
/// fault injection is wired in ([`LinkTx::set_faults`]), so fault-free
/// runs report byte-identical stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire (delivered transmissions;
    /// failed attempts count under `retries` instead).
    pub packets_sent: u64,
    /// Flits fully serialized onto the wire (delivered transmissions).
    pub flits_sent: u64,
    /// Service attempts that found a head-of-queue packet but no tokens —
    /// a direct measure of receiver-buffer backpressure.
    pub token_stalls: u64,
    /// Peak occupancy of the sender-side queue, in flits.
    pub peak_queue_flits: u32,
    /// Transmissions the receiver rejected on CRC (injected bit errors).
    pub crc_errors: u64,
    /// Transmissions cut by a link-down window.
    pub down_drops: u64,
    /// Retransmissions from the retry buffer — one per failed attempt,
    /// so always `crc_errors + down_drops`.
    pub retries: u64,
    /// Flits of failed attempts that had to be re-serialized: exact
    /// accounting of every dropped flit.
    pub retransmitted_flits: u64,
    /// Lanes are running at half width (permanent lane failure, or the
    /// degrade threshold was crossed).
    pub degraded: bool,
}

/// The transmit side of one link direction.
///
/// Packets wait in a sender queue, spend receiver tokens (one per flit) and
/// serialize at the effective flit rate; delivery lands after the SerDes
/// latency. Sans-event like [`hmc_noc::SwitchCore`]: call
/// [`LinkTx::service`] on changes, sleep until [`LinkTx::next_wake`].
///
/// # Examples
///
/// ```
/// use hmc_des::Time;
/// use hmc_link::{LinkConfig, LinkTx};
///
/// let cfg = LinkConfig::ac510_default();
/// let mut tx: LinkTx<&str> = LinkTx::new(&cfg);
/// tx.enqueue("read request", 1);
/// let out = tx.service(Time::ZERO);
/// assert_eq!(out.len(), 1);
/// // One-flit packets occupy the per-packet processing floor (10.667 ns),
/// // then fly for 55 ns of SerDes latency.
/// assert_eq!(out[0].at.as_ps(), 10_667 + 55_000);
/// ```
#[derive(Debug, Clone)]
pub struct LinkTx<P> {
    cfg: LinkConfig,
    serdes_latency: Delay,
    queue: VecDeque<(u32, P)>,
    queue_flits: u32,
    busy_until: Time,
    tokens: Credits,
    stats: LinkStats,
    probe: Probe,
    /// `(cube, link, direction)` identity stamped on emitted telemetry.
    site: (u8, u8, LinkDir),
    /// Fault-injection + retry-protocol state; `None` (the default) is
    /// the fault-free fast path, bit-identical to a build without the
    /// faults subsystem.
    faults: Option<Box<FaultLane>>,
    /// Extracts the `(port, tag)` identity telemetry traces by, for the
    /// `Retry` lifecycle stage. `None` skips the stage marks.
    trace_id: Option<TraceIdFn<P>>,
}

impl<P> LinkTx<P> {
    /// Creates an idle transmitter for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &LinkConfig) -> LinkTx<P> {
        cfg.validate().expect("valid link config");
        LinkTx {
            cfg: *cfg,
            serdes_latency: cfg.serdes_latency,
            queue: VecDeque::new(),
            queue_flits: 0,
            busy_until: Time::ZERO,
            tokens: Credits::new(cfg.input_buffer_flits),
            stats: LinkStats::default(),
            probe: Probe::off(),
            site: (0, 0, LinkDir::Request),
            faults: None,
            trace_id: None,
        }
    }

    /// Arms fault injection and the retry protocol on this direction:
    /// `inj` decides which transmissions fail, `tuning` prices the
    /// retry-buffer retention, ack and turnaround. A permanent lane
    /// failure in the injector starts the link at half width.
    pub fn set_faults(&mut self, inj: LinkFaults, tuning: RetryTuning) {
        let lane = FaultLane::new(inj, tuning);
        self.stats.degraded = lane.degraded;
        self.faults = Some(Box::new(lane));
    }

    /// Registers the payload identity extractor used to stamp `Retry`
    /// lifecycle-trace marks on retransmitted packets.
    pub fn set_trace_identity(&mut self, f: TraceIdFn<P>) {
        self.trace_id = Some(f);
    }

    /// Packets currently retained in the retry buffer (transmitted but
    /// not yet acked by the return retry pointer). Zero without faults.
    pub fn retained_packets(&self) -> usize {
        self.faults.as_ref().map_or(0, |l| l.retained.len())
    }

    /// Attaches a telemetry probe; committed packets emit one
    /// link-flit event stamped `(cube, link, dir)` at their wire-commit
    /// time. Detached by default ([`Probe::off`]), which keeps
    /// [`LinkTx::service_into`] on its allocation-free fast path.
    pub fn set_probe(&mut self, probe: Probe, cube: u8, link: u8, dir: LinkDir) {
        self.probe = probe;
        self.site = (cube, link, dir);
    }

    /// Appends a packet of `flits` flits to the sender queue.
    ///
    /// The sender queue is unbounded here; the caller (host controller or
    /// device egress) applies its own admission policy before enqueueing.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn enqueue(&mut self, payload: P, flits: u32) {
        assert!(flits > 0, "packets have at least one flit");
        self.queue_flits += flits;
        self.stats.peak_queue_flits = self.stats.peak_queue_flits.max(self.queue_flits);
        self.queue.push_back((flits, payload));
    }

    /// Occupancy of the sender queue in flits.
    #[inline]
    pub fn queue_flits(&self) -> u32 {
        self.queue_flits
    }

    /// Total backlog at `now`, in flits: unserialized queue plus the
    /// serialization still outstanding on the wire. This is the load
    /// signal a controller uses to balance traffic across links — the
    /// plain queue empties the instant packets are committed to the wire
    /// schedule, so it under-reports load.
    pub fn backlog_flits(&self, now: Time) -> u32 {
        let wire_ps = self.busy_until.saturating_since(now).as_ps();
        let flit_ps = self.cfg.effective_flit_time().as_ps().max(1);
        self.queue_flits + u32::try_from(wire_ps.div_ceil(flit_ps)).unwrap_or(u32::MAX)
    }

    /// Number of queued packets.
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tokens currently available (receiver buffer space).
    #[inline]
    pub fn tokens_available(&self) -> u32 {
        self.tokens.available()
    }

    /// Returns tokens to the pool: the receiver drained `flits` flits from
    /// its input buffer. On silicon this rides back in the token-return
    /// fields of reverse-direction packets; the simulator delivers it as a
    /// zero-cost message.
    ///
    /// Returns `true` if a queued head was starving on tokens — the
    /// caller should run [`LinkTx::service`]; on `false` nothing was
    /// blocked and no service pass is needed. (After any service call, a
    /// non-empty queue implies a token-starved head, so this notification
    /// is the *only* wake-up a sleeping transmitter needs.)
    pub fn return_tokens(&mut self, flits: u32) -> bool {
        self.tokens.put(flits)
    }

    /// Serializes as many queued packets as tokens and wire availability
    /// allow at `now`. Returns deliveries stamped with their arrival time
    /// at the far end.
    ///
    /// Convenience form of [`LinkTx::service_into`]; hot paths pass a
    /// reused scratch buffer instead so steady-state service allocates
    /// nothing.
    pub fn service(&mut self, now: Time) -> Deliveries<P> {
        let mut out = Deliveries::new();
        self.service_into(now, &mut out);
        out
    }

    /// Serializes as many queued packets as tokens and wire availability
    /// allow at `now`, appending each delivery (stamped with its arrival
    /// time at the far end) to `out` in wire order.
    ///
    /// With faults armed ([`LinkTx::set_faults`]) each packet may take
    /// several transmission attempts: failed attempts occupy real wire
    /// time plus the retry turnaround, the bounded retry buffer stalls
    /// the wire when full of unacked packets, and down windows park the
    /// wire entirely. Failures only push the schedule *later* than the
    /// fault-free schedule, and tokens are spent once per packet no
    /// matter how many attempts it takes — so the delivered stream is
    /// exactly the fault-free stream, merely delayed.
    pub fn service_into(&mut self, now: Time, out: &mut Deliveries<P>) {
        // The wire is busy until `busy_until`; serialization is strictly
        // serial, so later packets start where earlier ones ended.
        let mut cursor = self.busy_until.max(now);
        while let Some(&(flits, _)) = self.queue.front() {
            if !self.tokens.try_take(flits) {
                self.stats.token_stalls += 1;
                break;
            }
            let (flits, payload) = self.queue.pop_front().expect("front exists");
            self.queue_flits -= flits;
            let end = match self.faults.as_deref_mut() {
                None => cursor + self.cfg.packet_time(flits),
                Some(lane) => {
                    let identity = self.trace_id.map(|f| f(&payload));
                    cursor = lane.admit(cursor, flits);
                    let (cube, link, dir) = self.site;
                    let end = loop {
                        // The wire transmits nothing inside a down window.
                        cursor = lane.inj.wire_up_at(cursor);
                        let end = cursor + lane.attempt_time(&self.cfg, flits);
                        if let Some(resume) = lane.inj.down_cut(cursor, end) {
                            // The window's opening edge cut the packet:
                            // it is lost and retransmitted after the
                            // outage.
                            self.stats.down_drops += 1;
                            self.stats.retries += 1;
                            self.stats.retransmitted_flits += u64::from(flits);
                            self.probe.link_retry(cube, link, dir, flits, resume);
                            cursor = resume;
                            continue;
                        }
                        if lane.inj.corrupt_packet(flits) {
                            // CRC failure at the receiver: ErrorAbort +
                            // StartRetry (IRTRY) exchange, then
                            // retransmission from the retry buffer.
                            self.stats.crc_errors += 1;
                            self.stats.retries += 1;
                            self.stats.retransmitted_flits += u64::from(flits);
                            self.probe.link_retry(cube, link, dir, flits, end);
                            if let Some((port, tag)) = identity {
                                self.probe.trace_mark(port, tag, Stage::Retry, end);
                            }
                            if let Some(threshold) = lane.tuning.degrade_after {
                                if !lane.degraded && self.stats.crc_errors >= threshold {
                                    // Error rate over threshold: drop to
                                    // half width for the rest of the run.
                                    lane.degraded = true;
                                    self.stats.degraded = true;
                                }
                            }
                            cursor = end + lane.tuning.turnaround;
                            continue;
                        }
                        break end;
                    };
                    lane.retain(end, flits);
                    end
                }
            };
            cursor = end;
            self.stats.packets_sent += 1;
            self.stats.flits_sent += u64::from(flits);
            let (cube, link, dir) = self.site;
            self.probe.link_flits(cube, link, dir, flits, end);
            out.push(LinkDelivery {
                at: end + self.serdes_latency,
                flits,
                payload,
            });
        }
        self.busy_until = cursor;
    }

    /// The earliest future time service could progress on its own. Because
    /// [`LinkTx::service`] serializes everything sendable immediately
    /// (charging wire time forward), there is no self-wake; token-blocked
    /// heads wait for the [`LinkTx::return_tokens`] notification. Exposed
    /// for [`Clocked`] protocol symmetry.
    pub fn next_wake(&self, _now: Time) -> Option<Time> {
        None
    }

    /// When the wire finishes its current serialization backlog.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Counters for this direction.
    #[inline]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

impl<P> Clocked for LinkTx<P> {
    fn next_wake(&self, now: Time) -> Option<Time> {
        LinkTx::next_wake(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig::ac510_default()
    }

    #[test]
    fn serialization_is_serial_and_cumulative() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 9);
        tx.enqueue(1, 9);
        let out = tx.service(Time::ZERO);
        assert_eq!(out.len(), 2);
        let per_pkt = cfg().effective_flit_time() * 9u32;
        assert_eq!(out[0].at, Time::ZERO + per_pkt + cfg().serdes_latency);
        assert_eq!(
            out[1].at,
            Time::ZERO + per_pkt + per_pkt + cfg().serdes_latency
        );
    }

    #[test]
    fn effective_bandwidth_matches_config() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // A deep token pool so the wire, not flow control, is measured.
        let mut deep = cfg();
        deep.input_buffer_flits = 1024;
        let mut tx: LinkTx<u32> = LinkTx::new(&deep);
        let packets = 1_000u32;
        for i in 0..packets {
            tx.enqueue(i, 9);
        }
        // An ideal receiver: drains each delivery the moment it lands and
        // returns its tokens, re-servicing the link at that instant.
        let mut pending: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        for d in tx.service(Time::ZERO) {
            pending.push(Reverse((d.at, d.flits)));
        }
        let mut last = Time::ZERO;
        while let Some(Reverse((at, flits))) = pending.pop() {
            last = at;
            tx.return_tokens(flits);
            for d in tx.service(at) {
                pending.push(Reverse((d.at, d.flits)));
            }
        }
        assert_eq!(tx.queue_len(), 0);
        let bytes = f64::from(packets) * 9.0 * 16.0;
        let elapsed_ps = (last - Time::ZERO).as_ps() as f64 - cfg().serdes_latency.as_ps() as f64;
        let gbs = bytes * 1e3 / elapsed_ps;
        let expected = cfg().effective_gb_per_s_per_direction();
        assert!(
            (gbs - expected).abs() < 0.2,
            "measured {gbs}, expected {expected}"
        );
    }

    #[test]
    fn tokens_block_and_release() {
        let mut link_cfg = cfg();
        link_cfg.input_buffer_flits = 10;
        let mut tx: LinkTx<u32> = LinkTx::new(&link_cfg);
        tx.enqueue(0, 9);
        tx.enqueue(1, 9);
        let out = tx.service(Time::ZERO);
        assert_eq!(out.len(), 1, "second packet token-starved");
        assert_eq!(tx.tokens_available(), 1);
        assert_eq!(tx.stats().token_stalls, 1);
        assert!(tx.return_tokens(9), "starved head notifies on return");
        let out = tx.service(Time::from_ns(100));
        assert_eq!(out.len(), 1);
        assert_eq!(tx.stats().packets_sent, 2);
    }

    #[test]
    fn busy_wire_pushes_later_sends_out() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 9);
        tx.service(Time::ZERO);
        let t1 = tx.busy_until();
        // Enqueue a second packet before the wire is free.
        tx.enqueue(1, 1);
        let out = tx.service(Time::ZERO);
        assert_eq!(out[0].at, t1 + cfg().packet_time(1) + cfg().serdes_latency);
    }

    #[test]
    fn stats_track_peaks() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 9);
        tx.enqueue(1, 2);
        assert_eq!(tx.queue_flits(), 11);
        tx.service(Time::ZERO);
        assert_eq!(tx.stats().peak_queue_flits, 11);
        assert_eq!(tx.stats().flits_sent, 11);
        assert_eq!(tx.queue_flits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_rejected() {
        let mut tx: LinkTx<u32> = LinkTx::new(&cfg());
        tx.enqueue(0, 0);
    }

    mod faults {
        use super::*;
        use hmc_faults::{LinkFaultSpec, LinkKey};

        fn deep_cfg() -> LinkConfig {
            LinkConfig {
                input_buffer_flits: 4096,
                ..cfg()
            }
        }

        /// A transmitter armed with `spec` and a deep token pool.
        fn armed(spec: LinkFaultSpec, degrade: Option<u64>) -> LinkTx<u32> {
            let link_cfg = deep_cfg();
            let mut tx: LinkTx<u32> = LinkTx::new(&link_cfg);
            let inj = LinkFaults::new(11, LinkKey::edge(0, 1), spec);
            tx.set_faults(
                inj,
                RetryTuning::derive(&link_cfg).with_degrade_after(degrade),
            );
            tx
        }

        #[test]
        fn noop_injector_leaves_schedule_and_stats_identical() {
            let mut clean: LinkTx<u32> = LinkTx::new(&deep_cfg());
            let mut faulty = armed(LinkFaultSpec::ber(0.0), None);
            for i in 0..50 {
                clean.enqueue(i, 1 + (i % 9));
                faulty.enqueue(i, 1 + (i % 9));
            }
            let a = clean.service(Time::ZERO);
            let b = faulty.service(Time::ZERO);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x, y, "a never-firing injector must be time-invisible");
            }
            let s = faulty.stats();
            assert_eq!((s.crc_errors, s.retries, s.retransmitted_flits), (0, 0, 0));
            assert_eq!(clean.stats(), faulty.stats());
        }

        #[test]
        fn retries_delay_but_never_drop_duplicate_or_reorder() {
            let mut clean: LinkTx<u32> = LinkTx::new(&deep_cfg());
            let mut faulty = armed(LinkFaultSpec::ber(0.2).with_burst(3), None);
            for i in 0..200 {
                clean.enqueue(i, 1 + (i % 9));
                faulty.enqueue(i, 1 + (i % 9));
            }
            let a = clean.service(Time::ZERO);
            let b = faulty.service(Time::ZERO);
            let ids = |d: &Deliveries<u32>| d.iter().map(|x| x.payload).collect::<Vec<_>>();
            assert_eq!(ids(&a), ids(&b), "delivered stream equals the oracle's");
            let s = faulty.stats();
            assert!(s.crc_errors > 0, "BER 0.2 over ~1000 flits must fire");
            assert_eq!(s.retries, s.crc_errors + s.down_drops);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(y.at >= x.at, "failures only push deliveries later");
            }
            assert_eq!(s.packets_sent, 200, "every packet still delivered once");
        }

        #[test]
        fn each_failed_attempt_costs_wire_time_and_turnaround() {
            // Corrupt exactly the first attempt: with BER ~1 every flit
            // draw fires, so use a one-shot spec via burst accounting
            // instead — a 0-ber injector can't fire, so drive the cost
            // check arithmetically with a high-rate injector.
            let link_cfg = deep_cfg();
            let mut faulty = armed(LinkFaultSpec::ber(0.4), None);
            faulty.enqueue(7, 9);
            let out = faulty.service(Time::ZERO);
            assert_eq!(out.len(), 1);
            let s = faulty.stats();
            let tuning = RetryTuning::derive(&link_cfg);
            let per_attempt = link_cfg.packet_time(9);
            let expected_end = Time::ZERO
                + per_attempt * u32::try_from(s.retries + 1).unwrap()
                + tuning.turnaround * u32::try_from(s.retries).unwrap();
            assert_eq!(
                out[0].at,
                expected_end + link_cfg.serdes_latency,
                "attempts = retries + 1, each failure adds one turnaround"
            );
        }

        #[test]
        fn down_window_parks_the_wire_and_cuts_midflight_packets() {
            let link_cfg = deep_cfg();
            let pkt = link_cfg.packet_time(9);
            // Window opens mid-first-packet and lasts 1 us.
            let open = Time::ZERO + Delay::from_ps(pkt.as_ps() / 2);
            let close = open + Delay::from_us(1);
            let spec = LinkFaultSpec::default().with_down(open, close);
            let mut faulty = armed(spec, None);
            faulty.enqueue(1, 9);
            let out = faulty.service(Time::ZERO);
            assert_eq!(out.len(), 1);
            let s = faulty.stats();
            assert_eq!(s.down_drops, 1, "opening edge cut the transmission");
            assert_eq!(s.retransmitted_flits, 9);
            assert_eq!(out[0].at, close + pkt + link_cfg.serdes_latency);
        }

        #[test]
        fn degrade_threshold_halves_width_permanently() {
            let link_cfg = deep_cfg();
            let mut faulty = armed(LinkFaultSpec::ber(0.05), Some(1));
            for i in 0..300 {
                faulty.enqueue(i, 9);
            }
            let out = faulty.service(Time::ZERO);
            let s = faulty.stats();
            assert!(s.degraded, "threshold 1 must trip under BER 0.05");
            assert_eq!(out.len(), 300);
            // After degradation a first-try success follows its
            // predecessor by exactly the doubled serialization time, and
            // no delivery can follow faster; retried packets add retry
            // time on top. The minimum gap over the tail is therefore
            // the degraded wire time.
            let times: Vec<Time> = out.iter().map(|d| d.at).collect();
            let min_gap = times[200..]
                .windows(2)
                .map(|w| w[1] - w[0])
                .min()
                .expect("tail has pairs");
            assert_eq!(min_gap, link_cfg.packet_time(9) * 2u32);
        }

        #[test]
        fn permanent_lane_failure_starts_at_half_width() {
            let link_cfg = deep_cfg();
            let mut faulty = armed(LinkFaultSpec::default().with_half_width(), None);
            faulty.enqueue(0, 9);
            let out = faulty.service(Time::ZERO);
            assert!(faulty.stats().degraded);
            assert_eq!(
                out[0].at,
                Time::ZERO + link_cfg.packet_time(9) * 2u32 + link_cfg.serdes_latency
            );
        }

        #[test]
        fn full_retry_buffer_stalls_the_wire_for_the_ack() {
            // A retry buffer of exactly one max packet: the second
            // packet must wait for the first packet's ack.
            let link_cfg = deep_cfg();
            let mut tx: LinkTx<u32> = LinkTx::new(&link_cfg);
            let inj = LinkFaults::new(3, LinkKey::edge(0, 1), LinkFaultSpec::ber(0.0));
            let mut tuning = RetryTuning::derive(&link_cfg);
            tuning.buffer_flits = 9;
            tx.set_faults(inj, tuning);
            tx.enqueue(0, 9);
            tx.enqueue(1, 9);
            let out = tx.service(Time::ZERO);
            assert_eq!(out.len(), 2);
            assert_eq!(tx.retained_packets(), 1, "first slot freed by its ack");
            let pkt = link_cfg.packet_time(9);
            let first_end = Time::ZERO + pkt;
            assert_eq!(out[0].at, first_end + link_cfg.serdes_latency);
            assert_eq!(
                out[1].at,
                first_end + tuning.ack_delay + pkt + link_cfg.serdes_latency,
                "second transmission starts at the first packet's ack"
            );
        }
    }
}
