//! Integration tests of the assembled fabric: the configured per-hop
//! delay is exactly what a packet pays, traffic is conserved across
//! cubes, and transit contention is observable where the paper's model
//! says it must be — in the pass-through NoC.

use hmc_des::Delay;
use hmc_fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim};
use hmc_mapping::{AccessPattern, VaultId};
use hmc_packet::{PayloadSize, RequestKind};
use hmc_workloads::random_reads_in_banks;

/// Unloaded mean read latency to `cube` on a fresh copy of `cfg`.
fn unloaded_ns(cfg: &FabricConfig, cube: CubeId, size: PayloadSize, seed: u64) -> f64 {
    let trace = random_reads_in_banks(&cfg.cube.map, VaultId(0), 16, size, 1, seed);
    FabricSim::new(cfg.clone(), vec![FabricPortSpec::stream(trace, cube)])
        .run_streams()
        .mean_latency_ns()
}

#[test]
fn two_cube_chain_far_latency_exceeds_near_by_the_hop_delay() {
    let cfg = FabricConfig::chain(23, 2);
    for size in [PayloadSize::B16, PayloadSize::B64, PayloadSize::B128] {
        let near = unloaded_ns(&cfg, CubeId(0), size, 23);
        let far = unloaded_ns(&cfg, CubeId(1), size, 23);
        let hop = cfg
            .unloaded_hop_delay(RequestKind::Read { size })
            .as_ns_f64();
        let delta = far - near;
        // Same trace, same port, same cube-internal path: the only
        // difference is one fabric hop in each direction. The host issues
        // on its FPGA clock grid, so allow one cycle (5.3 ns) of slack.
        assert!(
            (delta - hop).abs() < 6.0,
            "{size}: far-near delta {delta:.1} ns != configured hop delay {hop:.1} ns"
        );
    }
}

#[test]
fn unloaded_latency_is_monotone_in_hop_count_up_to_eight_cubes() {
    let mut prev = 0.0;
    for n in 1..=8u8 {
        let cfg = FabricConfig::chain(29, n);
        let ns = unloaded_ns(&cfg, CubeId(n - 1), PayloadSize::B64, 29);
        assert!(
            ns > prev,
            "chain of {n}: unloaded latency {ns:.1} ns not above {prev:.1} ns"
        );
        prev = ns;
    }
}

#[test]
fn fabric_conserves_requests_across_cubes() {
    // Four ports, one per cube of a 4-cube ring, each replaying a
    // bounded trace: every request must be serviced by exactly its
    // target cube and every response must come home.
    let cfg = FabricConfig::ring(31, 4);
    let reads = 200;
    let specs: Vec<FabricPortSpec> = (0..4u8)
        .map(|c| {
            let trace = random_reads_in_banks(
                &cfg.cube.map,
                VaultId(c),
                8,
                PayloadSize::B32,
                reads,
                31 + u64::from(c),
            );
            FabricPortSpec::stream(trace, CubeId(c))
        })
        .collect();
    let report = FabricSim::new(cfg, specs).run_streams();
    for (c, port) in report.ports.iter().enumerate() {
        assert_eq!(port.issued, reads as u64, "port {c} issued");
        assert_eq!(port.completed, reads as u64, "port {c} completed");
        assert_eq!(
            report.cubes[c].device.requests_received, reads as u64,
            "cube {c} serviced exactly its port's requests"
        );
        assert_eq!(report.cubes[c].device.responses_sent, reads as u64);
    }
    // Something actually transited the fabric.
    assert!(report.transit_forwarded() > 0);
}

#[test]
fn transit_traffic_contends_in_the_hub_crossbar() {
    // A star hub forwards every leaf's traffic; with all leaves loaded,
    // the hub's pass-through crossbar must observe arbitration conflicts
    // — the fabric-level version of the paper's NoC contention claim.
    let cfg = FabricConfig::star(37, 4);
    let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
    let specs: Vec<FabricPortSpec> = (1..4u8)
        .flat_map(|c| {
            vec![
                FabricPortSpec::gups(filter, hmc_host::GupsOp::Read(PayloadSize::B128), CubeId(c),);
                3
            ]
        })
        .collect();
    let report = FabricSim::new(cfg, specs).run_gups(Delay::from_us(5), Delay::from_us(20));
    let hub = report.cubes[0]
        .transit
        .as_ref()
        .expect("hub has a pass-through stage");
    assert!(hub.forwarded > 0);
    assert!(
        hub.arbitration_conflicts > 0,
        "nine saturating leaf-bound ports must collide in the hub crossbar"
    );
    // The hub's own device serviced nothing; the leaves split the load.
    assert_eq!(report.cubes[0].device.requests_received, 0);
    for c in 1..4 {
        assert!(
            report.cubes[c].device.requests_received > 0,
            "leaf {c} idle"
        );
    }
}

#[test]
fn chain_bandwidth_survives_chaining() {
    // Saturating far-cube traffic on a 3-cube chain still reaches most
    // of the single-cube link ceiling: the fabric pipeline adds latency,
    // not a throughput cliff (companion-study behaviour).
    let run = |n: u8| {
        let cfg = FabricConfig::chain(41, n);
        let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
        let specs = vec![
            FabricPortSpec::gups(
                filter,
                hmc_host::GupsOp::Read(PayloadSize::B128),
                CubeId(n - 1),
            );
            9
        ];
        FabricSim::new(cfg, specs)
            .run_gups(Delay::from_us(10), Delay::from_us(40))
            .total_bandwidth_gbs()
    };
    let single = run(1);
    let chained = run(3);
    assert!(
        chained > single * 0.9,
        "3-cube chain bandwidth {chained:.1} GB/s collapsed vs single-cube {single:.1} GB/s"
    );
}
