//! Property tests for fabric source routing: route tables are total,
//! loop-free, adjacency-respecting and deterministic.

use hmc_fabric::{CubeId, FabricConfig, RouteTable, Topology};
use proptest::prelude::*;

fn topologies() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Chain),
        Just(Topology::Star),
        Just(Topology::Ring),
        Just(Topology::Mesh2D),
        Just(Topology::Torus2D)
    ]
}
proptest! {
    /// Totality: every (src, dst) pair has a route that terminates at the
    /// destination within n−1 hops.
    #[test]
    fn routes_are_total(topology in topologies(), n in 1u8..65) {
        let table = RouteTable::for_topology(topology, n);
        for src in 0..n {
            for dst in 0..n {
                let path = table.path(CubeId(src), CubeId(dst));
                prop_assert_eq!(*path.first().unwrap(), CubeId(src));
                prop_assert_eq!(*path.last().unwrap(), CubeId(dst));
                prop_assert!(
                    path.len() <= usize::from(n),
                    "{}-cube {}: {}->{} takes {} hops",
                    n, topology.label(), src, dst, path.len() - 1
                );
            }
        }
    }

    /// Loop-freedom and adjacency: validate() accepts every generated
    /// table, i.e. no route revisits a cube and every hop follows a
    /// physical fabric link.
    #[test]
    fn routes_are_loop_free_and_adjacent(topology in topologies(), n in 1u8..65) {
        let table = RouteTable::for_topology(topology, n);
        prop_assert!(table.validate(topology).is_ok());
    }

    /// Determinism: building the table twice yields identical tables, and
    /// the seed plays no role in routing (routes are a pure function of
    /// topology and cube count — two fabrics with different seeds route
    /// identically).
    #[test]
    fn routes_are_deterministic(topology in topologies(), n in 1u8..65, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let x = RouteTable::for_topology(topology, n);
        let y = RouteTable::for_topology(topology, n);
        prop_assert_eq!(&x, &y);
        let mut fa = FabricConfig::ac510(topology, n, seed_a);
        fa.seed = seed_a;
        let mut fb = FabricConfig::ac510(topology, n, seed_b);
        fb.seed = seed_b;
        prop_assert_eq!(fa.routes(), fb.routes());
    }

    /// Routes are symmetric in length: the hop count from a to b equals
    /// the hop count from b to a in every supported topology (responses
    /// pay exactly what requests paid).
    #[test]
    fn hop_counts_are_symmetric(topology in topologies(), n in 1u8..65) {
        let table = RouteTable::for_topology(topology, n);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    table.hops(CubeId(a), CubeId(b)),
                    table.hops(CubeId(b), CubeId(a))
                );
            }
        }
    }

    /// The documented even-ring antipodal tie-break: when the two ring
    /// directions to the antipodal cube are equally long, the *clockwise*
    /// (ascending-id, modulo n) direction is chosen — the promise
    /// `RouteTable::for_topology` documents. Locked for every even ring
    /// the 6-bit CUB field allows (n ∈ {2, 4, …, 64}) and every source
    /// cube: the first hop out of `src` toward `src + n/2` is
    /// `(src + 1) % n`, and so is every subsequent hop (the whole route
    /// runs clockwise).
    #[test]
    fn even_ring_antipodal_ties_break_clockwise(half in 1u8..33) {
        let n = half * 2;
        let table = RouteTable::for_topology(Topology::Ring, n);
        for src in 0..n {
            let dst = CubeId((src + half) % n);
            prop_assert_eq!(
                table.next_hop(CubeId(src), dst),
                CubeId((src + 1) % n),
                "{}-ring: antipodal tie from {} must go clockwise", n, src
            );
            let path = table.path(CubeId(src), dst);
            for pair in path.windows(2) {
                prop_assert_eq!(
                    pair[1],
                    CubeId((pair[0].0 + 1) % n),
                    "{}-ring: tie route from {} left the clockwise direction", n, src
                );
            }
            prop_assert_eq!(path.len() as u8, half + 1, "tie route is shortest");
        }
    }

    /// Every hop strictly shrinks the remaining distance (the routes are
    /// shortest-path greedy, so they cannot stall or detour). The
    /// distance matrix is precomputed so the 64-cube cases stay cheap.
    #[test]
    fn hops_strictly_approach_the_destination(topology in topologies(), n in 2u8..65) {
        let table = RouteTable::for_topology(topology, n);
        let nn = usize::from(n);
        let mut dist = vec![vec![0u32; nn]; nn];
        for a in 0..n {
            for b in 0..n {
                dist[usize::from(a)][usize::from(b)] = table.hops(CubeId(a), CubeId(b));
            }
        }
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut at = CubeId(src);
                while at != CubeId(dst) {
                    let next = table.next_hop(at, CubeId(dst));
                    prop_assert!(
                        dist[next.index()][usize::from(dst)] < dist[at.index()][usize::from(dst)],
                        "{}: hop {}->{} does not approach {}",
                        topology.label(), at, next, dst
                    );
                    at = next;
                }
            }
        }
    }

    /// Mesh routes pay exactly the Manhattan distance of the grid, and
    /// torus routes exactly the sum of per-dimension ring distances —
    /// dimension-ordered routing is shortest-path on both grids.
    #[test]
    fn grid_hop_counts_match_the_geometry(torus in any::<bool>(), n in 1u8..65) {
        let topology = if torus { Topology::Torus2D } else { Topology::Mesh2D };
        let (w, h) = Topology::grid_dims(n);
        let table = RouteTable::for_topology(topology, n);
        let ring_dist = |a: u8, b: u8, dim: u8| -> u32 {
            let line = u32::from(a.abs_diff(b));
            if torus { line.min(u32::from(dim) - line) } else { line }
        };
        for a in 0..n {
            for b in 0..n {
                let expected =
                    ring_dist(a % w, b % w, w) + ring_dist(a / w, b / w, h);
                prop_assert_eq!(
                    table.hops(CubeId(a), CubeId(b)),
                    expected,
                    "{}: {}->{} (grid {}x{})", topology.label(), a, b, w, h
                );
            }
        }
    }

    /// The torus inherits the ring's clockwise antipodal tie-break in
    /// each even-extent dimension: from any cube, the first hop toward
    /// the X-antipodal destination moves clockwise in X.
    #[test]
    fn torus_antipodal_ties_break_clockwise(n in 1u8..65) {
        let (w, _) = Topology::grid_dims(n);
        if w % 2 == 0 {
            let table = RouteTable::for_topology(Topology::Torus2D, n);
            for src in 0..n {
                let (x, y) = (src % w, src / w);
                let dst = CubeId(y * w + (x + w / 2) % w);
                prop_assert_eq!(
                    table.next_hop(CubeId(src), dst),
                    CubeId(y * w + (x + 1) % w),
                    "{}-torus (w={}): X-antipodal tie from {} must go clockwise", n, w, src
                );
            }
        }
    }
}
